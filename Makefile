# Convenience targets for the TCB reproduction.

.PHONY: install test bench bench-micro examples figures lint report trace-smoke overload-smoke recovery-smoke tail-smoke tenancy-smoke clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast-path microbenchmarks (docs/performance.md): emits BENCH_8.json
# and gates machine-normalized steps/sec against the committed
# baseline (>10% regression fails).
bench-micro:
	PYTHONPATH=src python -m repro bench --quick --out BENCH_8.json --check benchmarks/results/BENCH_baseline.json

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

figures:
	python -m repro figure all --out figures_report.txt

# tcblint (the repo's own AST invariant checker) always runs; ruff and
# mypy run when installed (pip install -e .[dev]) and are skipped with
# a notice otherwise, so `make lint` works in the bare container.
lint:
	PYTHONPATH=src python -m repro lint
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed — skipped (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed — skipped (pip install -e .[dev])"; fi

# Trace one small fig13 config end-to-end and validate the exported
# Chrome trace_event JSON (schema + metrics reconciliation).
trace-smoke:
	PYTHONPATH=src python -m repro trace fig13 --fast --format chrome --out trace_fig13.json
	PYTHONPATH=src python -c "import json; from repro.obs.export import validate_chrome_trace; validate_chrome_trace(json.load(open('trace_fig13.json'))); print('trace_fig13.json: valid chrome trace')"

# Quick overload-plane sanity: run the unit/property suite for
# repro.overload and one small off/on goodput comparison.
overload-smoke:
	PYTHONPATH=src pytest tests/test_overload.py -q
	PYTHONPATH=src python -c "from repro.experiments.overload import overload_point; \
off = overload_point(450.0, shedding=False, horizon=6.0, seed=0); \
on = overload_point(450.0, shedding=True, horizon=6.0, seed=0); \
assert on.goodput_utility > off.goodput_utility, (on.goodput_utility, off.goodput_utility); \
print(f'overload smoke: goodput {off.goodput_utility:.1f} (off) -> {on.goodput_utility:.1f} (on), {on.shed} shed')"

# Crash/restore differential on all three serving loops: kill the
# scheduler mid-run, restore from the journal, and require the finished
# ledger to be bit-identical to the uninterrupted run's.  On a mismatch
# the failing cell's journal (JSONL) and digest diff land in
# recovery_smoke_artifacts/ for offline replay (CI uploads them).
recovery-smoke:
	PYTHONPATH=src pytest tests/test_durability.py -q
	PYTHONPATH=src python -c "from repro.experiments.recovery import recovery_smoke; recovery_smoke()"

# Straggler chaos sweep for the tail-tolerance plane: a gray-failing
# replica inflates latencies, and hedged dispatch must beat the
# no-hedging baseline's p99 by a fixed margin at equal load with the
# ledger conservation-exact.  The sweep JSON always lands in
# benchmarks/results/tail_smoke/ (CI uploads it).
tail-smoke:
	PYTHONPATH=src pytest tests/test_cluster_health.py -q
	PYTHONPATH=src python -c "from repro.experiments.tail_tolerance import tail_smoke; tail_smoke()"

# Multi-tenant QoS plane sanity: the unit/property suite for
# repro.tenancy plus the noisy-neighbor smoke — a batch tenant ramped
# past its token-bucket quota must not drag the premium tenant's
# on-time rate or the cluster's aggregate throughput below the gates.
# The sweep JSON always lands in benchmarks/results/tenancy_smoke/
# (CI uploads it).
tenancy-smoke:
	PYTHONPATH=src pytest tests/test_tenancy.py -q
	PYTHONPATH=src python -c "from repro.experiments.tenancy import tenancy_smoke; tenancy_smoke()"

report: lint test bench bench-micro overload-smoke recovery-smoke tail-smoke tenancy-smoke
	python -m repro lint --format json --out lint_report.json
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache */__pycache__ src/repro/__pycache__ src/repro/*/__pycache__
