# Convenience targets for the TCB reproduction.

.PHONY: install test bench examples figures lint report clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

figures:
	python -m repro figure all --out figures_report.txt

# tcblint (the repo's own AST invariant checker) always runs; ruff and
# mypy run when installed (pip install -e .[dev]) and are skipped with
# a notice otherwise, so `make lint` works in the bare container.
lint:
	python -m repro lint
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed — skipped (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed — skipped (pip install -e .[dev])"; fi

report: lint test bench
	python -m repro lint --format json --out lint_report.json
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache */__pycache__ src/repro/__pycache__ src/repro/*/__pycache__
