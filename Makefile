# Convenience targets for the TCB reproduction.

.PHONY: install test bench examples figures report clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

figures:
	python -m repro figure all --out figures_report.txt

report: test bench
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache */__pycache__ src/repro/__pycache__ src/repro/*/__pycache__
