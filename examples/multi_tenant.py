"""Multi-tenant serving: priority weights in the DAS objective.

An extension beyond the paper: each request carries a priority weight
and its utility becomes w/l, so DAS serves premium tenants
preferentially with zero scheduler changes.  This demo runs two tenants
(premium ×5 weight, standard ×1) through one overloaded TCB instance
and reports per-tenant service rates.

Run:  python examples/multi_tenant.py
"""

import numpy as np

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.types import Request
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution


def make_two_tenant_workload(
    rate_per_tenant: float = 300.0,
    horizon: float = 8.0,
    seed: int = 0,
) -> list[Request]:
    rng = np.random.default_rng(seed)
    lengths = LengthDistribution(family="normal", mean=20, spread=20, low=3, high=100)
    deadlines = DeadlineModel(base_slack=2.0, jitter=1.0)
    out: list[Request] = []
    rid = 0
    for weight in (5.0, 1.0):  # premium, standard
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_tenant))
            if t >= horizon:
                break
            l = int(lengths.sample(1, rng)[0])
            out.append(
                Request(
                    request_id=rid,
                    length=l,
                    arrival=t,
                    deadline=deadlines.deadline(t, l, rng),
                    weight=weight,
                )
            )
            rid += 1
    return sorted(out, key=lambda r: (r.arrival, r.request_id))


def main() -> None:
    batch = BatchConfig(num_rows=16, row_length=100)
    workload = make_two_tenant_workload()
    sim = ServingSimulator(DASScheduler(batch, SchedulerConfig()), ConcatEngine(batch))
    m = sim.run(list(workload), horizon=8.0).metrics

    served_ids = {r.request_id for r in m.served}
    rows = {"tenant": [], "offered": [], "served": [], "service_rate": []}
    for name, weight in (("premium (w=5)", 5.0), ("standard (w=1)", 1.0)):
        offered = [r for r in workload if r.weight == weight]
        served = [r for r in offered if r.request_id in served_ids]
        rows["tenant"].append(name)
        rows["offered"].append(len(offered))
        rows["served"].append(len(served))
        rows["service_rate"].append(len(served) / len(offered))

    print(format_series_table(rows, "per-tenant service under one overloaded TCB"))
    assert rows["service_rate"][0] > rows["service_rate"][1], (
        "premium tenant should be served preferentially"
    )
    print(
        "\nDAS needs no changes: the weight flows through utility = w/l, so\n"
        "premium requests outrank standard ones of the same length while\n"
        "short standard requests can still beat long premium ones."
    )


if __name__ == "__main__":
    main()
