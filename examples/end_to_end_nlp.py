"""End-to-end NLP pipeline: corpus → BPE → ConcatBatching → beam search.

Chains every substrate layer on real text:

1. synthesise a corpus and train a BPE tokenizer on it,
2. derive a request workload whose lengths come from the tokenised
   sentences (the ParaCrawl/GLUE stand-in mechanism),
3. pack a batch with ConcatBatching and show it (ASCII, Fig. 1c style),
4. decode every request three ways — greedy, KV-cached greedy and
   beam-4 — verifying the first two agree exactly and that beam scores
   dominate.

Run:  python examples/end_to_end_nlp.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.core.packing import pack_first_fit
from repro.core.render import render_layout, render_positions
from repro.model.beam import beam_decode
from repro.model.incremental import greedy_decode_incremental
from repro.model.seq2seq import Seq2SeqModel
from repro.workload.corpus import CorpusWorkload, synthetic_corpus


def main() -> None:
    # 1. Corpus + tokenizer.
    corpus = synthetic_corpus(200, seed=11, max_words=10)
    workload = CorpusWorkload(
        corpus, rate=60.0, horizon=1.0, seed=3, num_merges=80
    )
    stats = workload.length_stats()
    print(
        f"trained BPE: vocab {workload.tokenizer.vocab_size}, "
        f"{len(workload.tokenizer.merges)} merges; corpus token lengths "
        f"mean {stats['mean']:.1f} (min {stats['min']:.0f}, max {stats['max']:.0f})"
    )

    # 2. Requests with real token ids, remapped into the model's vocab.
    cfg = ModelConfig.tiny(vocab_size=max(64, workload.tokenizer.vocab_size))
    model = Seq2SeqModel(cfg, seed=8)
    requests = [r for r in workload.generate() if r.length <= 20][:6]
    print(f"\nserving {len(requests)} tokenised requests, lengths "
          f"{[r.length for r in requests]}")

    # 3. One concatenated batch.
    layout = pack_first_fit(requests, num_rows=2, row_length=40).layout
    print("\nbatch layout (each letter = one request, '.' = padding):")
    print(render_layout(layout))
    print("separate positional encoding (restarts per request):")
    print(render_positions(layout))

    # 4. Three decoders over the same batch.
    greedy = model.greedy_decode(layout, max_new_tokens=6)
    cached = greedy_decode_incremental(model, layout, max_new_tokens=6)
    assert greedy.outputs == cached.outputs, "KV cache must be exact"
    beams = beam_decode(model, layout, max_new_tokens=6, beam_width=4)

    print("\nper-request decodes (greedy == KV-cached; beam-4 score ≥ greedy):")
    for r in requests:
        g = greedy.outputs[r.request_id]
        b = beams.outputs[r.request_id]
        marker = "=" if g == b else "≠"
        print(
            f"  req {r.request_id}: greedy {g} {marker} beam {b} "
            f"(beam score {beams.scores[r.request_id]:.2f})"
        )


if __name__ == "__main__":
    main()
