"""Observability: slot traces, queue-depth timelines, trace replay.

Shows the operational tooling around the serving loop:

1. run a serving simulation with slot recording on,
2. inspect per-slot records (utilisation, scheduler runtime) and export
   them as JSONL,
3. chart the queue depth / served / expired timeline in the terminal,
4. persist the workload trace and replay it bit-exactly.

Run:  python examples/observability.py
"""

from repro.analysis.ascii_plot import ascii_chart
from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_workload
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import slot_records, timeline, to_jsonl
from repro.workload.replay import trace_from_jsonl, trace_to_jsonl


def main() -> None:
    batch = BatchConfig(num_rows=16, row_length=100)
    workload = make_workload(300.0, horizon=6.0, seed=5)
    requests = workload.generate()

    sim = ServingSimulator(
        DASScheduler(batch, SchedulerConfig()),
        ConcatEngine(batch),
        record_slots=True,
    )
    result = sim.run(list(requests), horizon=6.0)
    m = result.metrics

    print(
        f"served {m.num_served}/{m.num_served + m.num_expired} requests in "
        f"{m.num_batches} slots; utility {m.total_utility:.1f}, "
        f"mean latency {m.mean_latency:.2f}s, p99 {m.latency_percentile(99):.2f}s"
    )

    # 1. Per-slot records.
    recs = slot_records(result)
    print("\nfirst three slots:")
    for rec in recs[:3]:
        print(
            f"  t={rec['t_start']:.2f}s served={rec['num_served']:3d} "
            f"lat={rec['latency']:.2f}s util={rec['utilisation']:.0%} "
            f"sched={rec['scheduler_runtime'] * 1e3:.2f}ms"
        )
    jsonl = to_jsonl(result)
    print(f"  ... {len(jsonl.splitlines())} slot records exportable as JSONL")

    # 2. Timeline chart.
    tl = timeline(result, requests, num_points=40)
    print("\nqueue/served/expired over time:")
    print(ascii_chart(tl, x_key="t", shared_scale=False))

    # 3. Trace replay.
    replayed = trace_from_jsonl(trace_to_jsonl(requests))
    m2 = (
        ServingSimulator(DASScheduler(batch, SchedulerConfig()), ConcatEngine(batch))
        .run(replayed, horizon=6.0)
        .metrics
    )
    print(
        f"\nreplayed persisted trace: served {m2.num_served} "
        f"(identical: {m2.num_served == m.num_served})"
    )


if __name__ == "__main__":
    main()
