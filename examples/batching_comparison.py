"""Compare the three batching schemes across workload shapes.

Reproduces the paper's motivation (§1): NaiveBatching wastes compute on
padding, TurboBatching recovers some of it when lengths cluster, and
ConcatBatching wins regardless of the length distribution — including
the high-variance ParaCrawl-like and bimodal GLUE-like profiles the
paper cites as TurboBatching's weakness.

Run:  python examples/batching_comparison.py
"""

from repro.config import BatchConfig
from repro.engine import ConcatEngine, NaiveEngine, SlottedConcatEngine, TurboEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.baselines import FCFSScheduler
from repro.serving.simulator import ServingSimulator
from repro.workload import glue_dia_like, paper_default, paracrawl_like


def _make_engine(name: str, batch: BatchConfig):
    if name == "TNB":
        return NaiveEngine(batch)
    if name == "TTB":
        return TurboEngine(batch)
    if name == "TCB":
        return ConcatEngine(batch)
    # Slotted TCB: ~100-token slots tame the quadratic attention of wide
    # rows (this is exactly why the paper adds slotting, §4.2).
    return SlottedConcatEngine(batch, num_slots=max(1, batch.row_length // 100))


def main() -> None:
    workloads = {
        "paper (normal 3-100)": paper_default(1000.0, horizon=8.0, seed=0),
        "paracrawl-like": paracrawl_like(1000.0, horizon=8.0, seed=0),
        "glue/dia-like": glue_dia_like(1000.0, horizon=8.0, seed=0),
    }

    series: dict[str, list] = {"workload": list(workloads)}
    padding: dict[str, list] = {"workload": list(workloads)}
    for name in ("TNB", "TTB", "TCB", "TCB-slotted"):
        thr, pad = [], []
        for wl in workloads.values():
            # ParaCrawl-like lengths reach 400 tokens; widen the rows.
            rows_len = 100 if wl.lengths.high <= 100 else 400
            b = BatchConfig(num_rows=64, row_length=rows_len)
            sim = ServingSimulator(FCFSScheduler(b), _make_engine(name, b))
            m = sim.run(wl).metrics
            thr.append(m.throughput)
            pad.append(100 * m.padding_ratio)
        series[f"{name} resp/s"] = thr
        padding[f"{name} pad%"] = pad

    print(format_series_table(series, "FCFS serving throughput by workload"))
    print()
    print(format_series_table(padding, "Computed-token padding share"))
    print(
        "\nConcatBatching wins on every profile once wide rows are slotted\n"
        "(pure TCB pays quadratic attention on 400-token rows — the very\n"
        "redundancy §4.2's slotted scheme removes)."
    )


if __name__ == "__main__":
    main()
