"""Tuning DAS: the η/q trade-off and the Theorem 5.1 guarantee.

Algorithm 1 mixes a utility-dominant prefix (fraction η of what fits)
with a deadline-aware set (threshold q·v̄).  This example:

1. sweeps η (with q = 1 − η, as the proof assumes) on a deadline-tight
   workload and reports utility and miss rate,
2. replays DAS on small random instances against the *exact* offline
   optimum, confirming the ηq/(ηq+1) competitive ratio empirically.

Run:  python examples/scheduler_tuning.py
"""

import numpy as np

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.das import DASScheduler
from repro.scheduling.offline import exact_opt
from repro.serving.simulator import ServingSimulator
from repro.types import Request
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


def eta_sweep() -> None:
    batch = BatchConfig(num_rows=16, row_length=100)
    wl = WorkloadGenerator(
        rate=600.0,
        lengths=LengthDistribution(family="normal", mean=20, spread=20, low=3, high=100),
        deadlines=DeadlineModel(base_slack=1.0, jitter=2.0),
        horizon=8.0,
        seed=1,
    )
    etas = [0.2, 0.35, 0.5, 0.65, 0.8]
    series = {"eta": etas, "utility": [], "miss_rate": [], "bound": []}
    for eta in etas:
        cfg = SchedulerConfig(eta=eta, q=round(1.0 - eta, 2))
        sim = ServingSimulator(DASScheduler(batch, cfg), ConcatEngine(batch))
        m = sim.run(wl).metrics
        series["utility"].append(m.total_utility)
        series["miss_rate"].append(m.miss_rate)
        series["bound"].append(cfg.competitive_ratio)
    print(format_series_table(series, "DAS η sweep (q = 1 − η)"))


def ratio_check(instances: int = 40) -> None:
    cfg = SchedulerConfig(eta=0.5, q=0.5)
    batch = BatchConfig(num_rows=2, row_length=10)
    rng = np.random.default_rng(0)
    ratios = []
    for _ in range(instances):
        n = int(rng.integers(3, 10))
        reqs = []
        for i in range(n):
            a = float(rng.uniform(0, 2.5))
            reqs.append(
                Request(
                    request_id=i,
                    length=int(rng.integers(1, 9)),
                    arrival=a,
                    deadline=a + float(rng.uniform(0.5, 3.0)),
                )
            )
        slots = [0.25, 1.25, 2.25]
        sched = DASScheduler(batch, cfg)
        served: set[int] = set()
        alg = 0.0
        for t in slots:
            waiting = [
                r for r in reqs if r.request_id not in served and r.is_available(t)
            ]
            for r in sched.select(waiting, t).selected():
                served.add(r.request_id)
                alg += r.utility
        opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
        if opt > 0:
            ratios.append(alg / opt)

    print(
        f"\nTheorem 5.1 check over {len(ratios)} random instances "
        f"(η=q=½ → bound = {cfg.competitive_ratio:.2f}):"
    )
    print(f"  min ALG/OPT  = {min(ratios):.3f}")
    print(f"  mean ALG/OPT = {float(np.mean(ratios)):.3f}")
    assert min(ratios) >= cfg.competitive_ratio, "competitive bound violated!"
    print("  bound holds on every instance — and DAS does far better in practice.")


def main() -> None:
    eta_sweep()
    ratio_check()


if __name__ == "__main__":
    main()
