"""Capacity planning: clusters, admission control and saturation curves.

Answers the deployment questions a TCB operator would ask:

1. where does one TCB engine saturate on my workload? (saturation
   detection on a rate sweep),
2. how many engines do I need for a target load? (shared-queue cluster
   scaling),
3. what does admission control buy at overload? (feasibility shedding
   keeps the queue clean).

Run:  python examples/capacity_planning.py
"""

from repro.analysis import saturation_point
from repro.analysis.ascii_plot import ascii_chart
from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_workload
from repro.experiments.tables import format_series_table
from repro.scheduling.das import DASScheduler
from repro.serving.admission import AdmissionController
from repro.serving.cluster import ClusterSimulator
from repro.serving.simulator import ServingSimulator


BATCH = BatchConfig(num_rows=16, row_length=100)


def saturation_sweep() -> None:
    rates = [50, 100, 150, 200, 300, 500, 800]
    thr, tok = [], []
    for rate in rates:
        sim = ServingSimulator(
            DASScheduler(BATCH, SchedulerConfig()), ConcatEngine(BATCH)
        )
        m = sim.run(make_workload(rate, horizon=6.0, seed=0)).metrics
        thr.append(m.throughput)
        tok.append(sum(r.length for r in m.served) / m.horizon)
    series = {"rate": rates, "resp_per_s": thr, "tokens_per_s": tok}
    print(format_series_table(series, "1) single-engine saturation sweep"))
    # Token throughput is the real capacity metric: request throughput
    # keeps creeping up under overload because DAS cherry-picks shorter
    # requests.
    sat = saturation_point(rates, tok, tolerance=0.15)
    print(f"   -> token capacity saturates around {sat} req/s offered\n")
    print(ascii_chart(series, x_key="rate", shared_scale=False))
    print()


def cluster_sizing(target_rate: float = 1200.0) -> None:
    print(f"2) engines needed for ~{target_rate:.0f} req/s offered load:")
    for engines in (1, 2, 4, 8):
        sim = ClusterSimulator(
            DASScheduler(BATCH, SchedulerConfig()),
            [ConcatEngine(BATCH) for _ in range(engines)],
        )
        m = sim.run(make_workload(target_rate, horizon=6.0, seed=0)).metrics
        tokens = sum(r.length for r in m.served) / m.horizon
        print(
            f"   {engines} engine(s): {m.throughput:7.1f} resp/s, "
            f"{tokens:8.0f} tok/s, miss rate {m.miss_rate:.0%}"
        )
    print()


def admission_demo() -> None:
    print("3) admission control at the door (overload, tight deadlines):")
    ctrl = AdmissionController(batch=BATCH, max_queued_tokens=4000)
    wl = make_workload(600.0, horizon=4.0, seed=1, base_slack=0.4, jitter=0.2)
    admitted = 0
    reasons: dict[str, int] = {}
    for req in wl.generate():
        decision = ctrl.check(req, now=req.arrival)
        if decision.admitted:
            ctrl.admit(req, now=req.arrival)
            admitted += 1
            # Pretend service keeps pace with ~half the queue each "tick".
            if ctrl.queued_tokens > 2000:
                ctrl.release([req])
        else:
            reasons[decision.reason] = reasons.get(decision.reason, 0) + 1
    print(f"   admitted {admitted}, shed: {reasons or 'none'}")


def main() -> None:
    saturation_sweep()
    cluster_sizing()
    admission_demo()


if __name__ == "__main__":
    main()
