"""Redraw the paper's explanatory figures as terminal art.

Regenerates, from live library objects (not hardcoded strings):

- Fig. 1 — the three batching schemes on the same request set,
- Fig. 4 — pure vs slotted ConcatBatching,
- Fig. 5 — traditional vs separate positional encoding,
- Eq. 6 — the block-diagonal attention mask,
- and the evaluation curves (Figs. 10/14) as sparkline panels.

Run:  python examples/paper_figures_ascii.py
"""

import numpy as np

from repro.analysis.ascii_plot import ascii_chart
from repro.core.layout import BatchLayout
from repro.core.masks import block_diagonal_mask
from repro.core.packing import pack_first_fit
from repro.core.render import render_layout, render_mask, render_positions
from repro.core.slotting import pack_into_slots
from repro.experiments import run_fig13_fig14_slot_speedup
from repro.types import make_requests


def fig1_batching_schemes() -> None:
    reqs = make_requests([7, 3, 5, 2, 4, 3], start_id=0)
    print("=== Fig. 1 — batching schemes (letters = requests, '.' = padding)\n")
    naive = BatchLayout.naive(reqs)
    print(f"(a) NaiveBatching — padding {naive.padding_ratio:.0%}")
    print(render_layout(naive), "\n")

    by_len = sorted(reqs, key=lambda r: r.length)
    turbo_short = BatchLayout.naive(by_len[:3])
    turbo_long = BatchLayout.naive(by_len[3:])
    pad = (turbo_short.padded_tokens + turbo_long.padded_tokens) / (
        turbo_short.num_rows * turbo_short.effective_width
        + turbo_long.num_rows * turbo_long.effective_width
    )
    print(f"(b) TurboBatching (length-sorted groups) — padding {pad:.0%}")
    print(render_layout(turbo_short))
    print(render_layout(turbo_long), "\n")

    concat = pack_first_fit(reqs, num_rows=2, row_length=12).layout
    print(f"(c) ConcatBatching — padding {concat.padding_ratio:.0%}")
    print(render_layout(concat), "\n")


def fig4_pure_vs_slotted() -> None:
    reqs = make_requests([4, 4, 4, 4, 4, 4], start_id=100)
    print("=== Fig. 4 — pure vs slotted ConcatBatching ('|' = slot edge)\n")
    pure = pack_first_fit(reqs, num_rows=2, row_length=12).layout
    print("pure:")
    print(render_layout(pure))
    slotted = pack_into_slots(reqs, num_rows=2, row_length=12, slot_size=4).layout
    print("slotted (slot size 4):")
    print(render_layout(slotted), "\n")


def fig5_positional_encoding() -> None:
    reqs = make_requests([5, 4, 3], start_id=200)
    layout = pack_first_fit(reqs, num_rows=1, row_length=12).layout
    print("=== Fig. 5 — positional encoding for a concatenated row\n")
    print("(a) traditional (wrong under concatenation):")
    print(render_positions(layout, separate=False))
    print("(b) TCB's separate encoding (restarts per request):")
    print(render_positions(layout, separate=True), "\n")


def eq6_mask() -> None:
    reqs = make_requests([3, 2, 3], start_id=300)
    layout = pack_first_fit(reqs, num_rows=1, row_length=8).layout
    print("=== Eq. 6 — block-diagonal mask ('#' attend, '.' = −inf)\n")
    print(render_mask(block_diagonal_mask(layout.segment_id_matrix())), "\n")


def evaluation_sparklines() -> None:
    print("=== Figs. 13/14 — slotted speedup curves\n")
    for b in (10, 32):
        out = run_fig13_fig14_slot_speedup(b)
        print(ascii_chart(
            {"slots": out["slots"], f"speedup(B={b})": out["speedup"]},
            x_key="slots",
        ))
    print()


def main() -> None:
    fig1_batching_schemes()
    fig4_pure_vs_slotted()
    fig5_positional_encoding()
    eq6_mask()
    evaluation_sparklines()


if __name__ == "__main__":
    main()
