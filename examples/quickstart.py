"""Quickstart: ConcatBatching in five minutes.

Walks the core public API:

1. build variable-length requests,
2. pack them into a concatenated batch layout,
3. run the NumPy Seq2Seq transformer over the layout with TCB's
   separate positional encoding + masked attention,
4. verify the results equal isolated per-request inference,
5. compare padding waste against NaiveBatching.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ModelConfig, Request
from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit
from repro.model.seq2seq import Seq2SeqModel


def main() -> None:
    rng = np.random.default_rng(0)
    cfg = ModelConfig.tiny()
    model = Seq2SeqModel(cfg, seed=42)

    # 1. Variable-length requests (token ids from the toy vocab range).
    lengths = [9, 3, 12, 5, 7, 4, 6, 2]
    requests = [
        Request(
            request_id=i,
            length=l,
            tokens=tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=l)),
        )
        for i, l in enumerate(lengths)
    ]

    # 2. ConcatBatching: pack all 8 requests into 2 rows of 25 tokens.
    packing = pack_first_fit(requests, num_rows=2, row_length=25)
    layout = packing.layout
    print(f"packed {packing.num_packed} requests into {layout.num_rows} rows")
    print(f"effective width {layout.effective_width}, "
          f"padding ratio {layout.padding_ratio:.1%}")

    # 3. Encode with separate PE + block-diagonal masked attention.
    encoded = model.encode_layout(layout)

    # 4. Correctness: every request's states equal isolated inference.
    worst = 0.0
    for row_idx, seg in layout.segments():
        alone = model.encode_single(seg.request.tokens)[0]
        batched = encoded[row_idx, seg.start : seg.end]
        worst = max(worst, float(np.abs(alone - batched).max()))
    print(f"max |concat - isolated| over all requests: {worst:.2e}")
    assert worst < 1e-9, "ConcatBatching must be numerically exact"

    # ... and the same holds through autoregressive decoding.
    generated = model.greedy_decode(layout, max_new_tokens=5)
    for req in requests:
        ref = model.greedy_decode_single(req.tokens, max_new_tokens=5)
        assert generated.outputs[req.request_id] == ref
    print("greedy decode matches isolated decoding for all 8 requests")

    # 5. Padding comparison vs NaiveBatching.
    naive = BatchLayout.naive(requests)
    print(
        f"\npadded zeros — naive: {naive.padded_tokens} "
        f"({naive.padding_ratio:.1%}), concat: {layout.padded_tokens} "
        f"({layout.padding_ratio:.1%})"
    )


if __name__ == "__main__":
    main()
