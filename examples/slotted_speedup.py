"""Slotted ConcatBatching: speedup and early memory cleaning (§4.2).

Regenerates the Figs. 13/14 speedup curves from the calibrated cost
model and then demonstrates §4.2.2's early memory cleaning: slots whose
requests finish decoding early release GPU memory before the batch
completes — something pure ConcatBatching structurally cannot do.

Run:  python examples/slotted_speedup.py
"""

import numpy as np

from repro.config import ModelConfig
from repro.core.slotting import pack_into_slots
from repro.engine.memory import GPUMemorySimulator
from repro.experiments import format_series_table, run_fig13_fig14_slot_speedup
from repro.model.seq2seq import Seq2SeqModel
from repro.types import Request


def speedup_curves() -> None:
    for b in (10, 32):
        out = run_fig13_fig14_slot_speedup(b)
        print(format_series_table(out, f"slotted speedup, batch size {b}"))
        print()


def early_cleaning_demo() -> None:
    rng = np.random.default_rng(5)
    cfg = ModelConfig.tiny()
    model = Seq2SeqModel(cfg, seed=2)

    reqs = [
        Request(
            request_id=i,
            length=6,
            tokens=tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=6)),
        )
        for i in range(8)
    ]
    res = pack_into_slots(reqs, num_rows=2, row_length=24, slot_size=6)
    gen = model.greedy_decode(res.layout, max_new_tokens=8)

    # The randomly initialised toy model rarely emits EOS, so all decodes
    # exhaust the budget together; in production, outputs end at very
    # different steps (the paper's §4.2.2 observation).  Overlay the
    # completion profile of an EOS-terminating workload: each request
    # finishes after ~its input length of generated tokens.
    completion = {
        r.request_id: int(min(8, max(1, rng.poisson(1 + i))))
        for i, r in enumerate(reqs)
    }
    completion.update(
        {rid: min(step, gen.steps_run) for rid, step in completion.items()}
    )

    mem = GPUMemorySimulator(d_model=cfg.d_model, num_layers=4)
    with_ec = mem.simulate(res.layout, completion, early_cleaning=True)
    without = mem.simulate(res.layout, completion, early_cleaning=False)

    print("early memory cleaning (slotted batch):")
    print(f"  decode steps            : {with_ec.final_step}")
    print(f"  completion steps        : {sorted(completion.values())}")
    print(f"  resident byte-steps     : {with_ec.byte_steps:,} "
          f"(vs {without.byte_steps:,} without cleaning)")
    print(f"  savings                 : {with_ec.savings_ratio:.1%}")
    print(f"  bytes freed early       : {with_ec.overlap_bytes:,} "
          "(available for next-batch loading overlap)")


def main() -> None:
    speedup_curves()
    early_cleaning_demo()


if __name__ == "__main__":
    main()
