"""Online serving demo: a translation-style service on TCBServer.

Emulates the paper's motivating scenario (Fig. 3): user applications
submit sentences of very different lengths; the server batches them with
ConcatBatching under the DAS scheduler and returns each request's
decoded output.  Everything runs through the real NumPy transformer.

Run:  python examples/online_translation_service.py
"""

import numpy as np

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.model.vocab import ToyVocab
from repro.scheduling.das import DASScheduler
from repro.serving.server import TCBServer


def main() -> None:
    rng = np.random.default_rng(7)
    vocab = ToyVocab()
    cfg = ModelConfig.tiny(vocab_size=vocab.size, max_len=64)
    batch = BatchConfig(num_rows=4, row_length=32)
    server = TCBServer(
        model_config=cfg,
        batch=batch,
        scheduler=DASScheduler(batch, SchedulerConfig(eta=0.5, q=0.5)),
        seed=3,
        max_new_tokens=6,
    )

    # A burst of variable-length "sentences" (3–14 words).
    sentences = [
        vocab.random_sentence(int(rng.integers(3, 15)), rng) for _ in range(12)
    ]
    ids = {}
    for s in sentences:
        ids[server.submit(vocab.encode(s))] = s
    print(f"submitted {len(sentences)} requests; pending = {server.pending}")

    # Serve until drained; each step is one ConcatBatching engine slot.
    step = 0
    while server.pending:
        step += 1
        done = server.step()
        print(f"slot {step}: served {len(done)} requests")

    print("\nsample responses:")
    for rid in list(ids)[:4]:
        resp = server.poll(rid)
        print(f"  in : {ids[rid]!r}")
        print(f"  out: {vocab.decode(resp.output_tokens)!r} "
              f"(latency {resp.latency * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
