"""Integration tests: every figure harness runs and matches paper shapes.

These are miniature versions of the benchmark sweeps (fewer seeds,
shorter horizons) asserting the *qualitative* results the paper reports
— who wins, in which direction the curves move — so that regressions in
any subsystem surface here.
"""

import pytest

from repro.experiments import (
    format_series_table,
    run_fig09_utility,
    run_fig10_throughput,
    run_fig11_fig12_fcfs,
    run_fig13_fig14_slot_speedup,
    run_fig15a_batch_size,
    run_fig15b_variance,
    run_fig15c_row_length,
    run_fig16_overhead,
)

FAST = dict(horizon=4.0, seeds=(0,))


@pytest.fixture(scope="module")
def fig10():
    return run_fig10_throughput(rates=(40, 250, 1000), **FAST)


class TestFig9And10:
    def test_utility_grows_with_rate(self):
        out = run_fig09_utility(rates=(40, 450), **FAST)
        for system in ("DAS-TNB", "DAS-TTB", "DAS-TCB"):
            assert out[system][1] > out[system][0]

    def test_tcb_wins_after_saturation(self, fig10):
        i = fig10["rate"].index(1000)
        assert fig10["DAS-TCB"][i] > fig10["DAS-TTB"][i]
        assert fig10["DAS-TCB"][i] > fig10["DAS-TNB"][i]

    def test_systems_comparable_under_light_load(self, fig10):
        i = fig10["rate"].index(40)
        tnb, tcb = fig10["DAS-TNB"][i], fig10["DAS-TCB"][i]
        assert abs(tnb - tcb) / max(tnb, tcb) < 0.25

    def test_saturated_gap_order_of_paper(self, fig10):
        """Paper: ~2.2× TCB/TNB after saturation; we accept 1.5–6×."""
        i = fig10["rate"].index(1000)
        ratio = fig10["DAS-TCB"][i] / fig10["DAS-TNB"][i]
        assert 1.5 < ratio < 6.0


class TestFig11And12:
    def test_fcfs_ordering_at_saturation(self):
        # Longer horizon: engine-latency differences need several slots
        # to accumulate into distinct served counts.
        lo = run_fig11_fig12_fcfs(spread=20, rates=(1000,), horizon=10.0, seeds=(0, 1))
        # TCB > TTB > TNB at saturation under FCFS (Fig. 11).
        assert lo["FCFS-TCB"][0] > lo["FCFS-TTB"][0] > lo["FCFS-TNB"][0]

    def test_variance_widens_tcb_lead_at_knee(self):
        """Fig. 11→12: TCB/TTB gap grows with length variance (paper:
        1.52×→1.72×).  The effect lives at the saturation knee — deep in
        overload TTB's sorter always finds similar lengths in the huge
        queue, so we measure at the knee rate (120 req/s)."""
        lo = run_fig11_fig12_fcfs(spread=20, rates=(120,), horizon=10.0, seeds=(0, 1))
        hi = run_fig11_fig12_fcfs(spread=100, rates=(120,), horizon=10.0, seeds=(0, 1))
        gap_lo = lo["FCFS-TCB"][0] / lo["FCFS-TTB"][0]
        gap_hi = hi["FCFS-TCB"][0] / hi["FCFS-TTB"][0]
        assert gap_hi > gap_lo


class TestFig13And14:
    def test_speedup_shapes(self):
        f13 = run_fig13_fig14_slot_speedup(10)
        f14 = run_fig13_fig14_slot_speedup(32)
        assert f13["speedup"][0] == pytest.approx(1.0)
        assert f14["speedup"][0] == pytest.approx(1.0)
        # Speedup grows with slots then plateaus; larger batch gains more.
        i7 = f14["slots"].index(7)
        assert f14["speedup"][i7] > 2.0
        assert f14["speedup"][i7] > f13["speedup"][i7]
        # Plateau: 20 slots is not much better than 7 (paper's finding).
        i20 = f14["slots"].index(20)
        assert f14["speedup"][i20] < f14["speedup"][i7] + 0.3

    def test_measured_mode_runs(self):
        out = run_fig13_fig14_slot_speedup(
            2, row_length=64, slot_counts=(1, 4), mode="measured"
        )
        assert len(out["speedup"]) == 2
        assert out["speedup"][0] == pytest.approx(1.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run_fig13_fig14_slot_speedup(2, mode="magic")


class TestFig15:
    def test_das_wins_every_batch_size(self):
        out = run_fig15a_batch_size(batch_sizes=(5, 16), **FAST)
        for i in range(2):
            das = out["DAS-TCB"][i]
            assert das > out["SJF-TCB"][i]
            assert das > out["FCFS-TCB"][i]
            assert das > out["DEF-TCB"][i]

    def test_utility_grows_with_batch_size(self):
        out = run_fig15a_batch_size(batch_sizes=(5, 16), **FAST)
        assert out["DAS-TCB"][1] > out["DAS-TCB"][0]

    def test_das_wins_across_variance(self):
        out = run_fig15b_variance(spreads=(10, 100), **FAST)
        for i in range(2):
            assert out["DAS-TCB"][i] > out["SJF-TCB"][i]

    def test_das_wins_across_row_length(self):
        out = run_fig15c_row_length(row_lengths=(100, 300), **FAST)
        for i in range(2):
            assert out["DAS-TCB"][i] > out["SJF-TCB"][i]


class TestFig16:
    def test_overhead_small_and_growing(self):
        out = run_fig16_overhead(rates=(100, 400), **FAST)
        a, b = out["overhead_percent"]
        assert b > a  # more requests → more scheduling work
        assert b < 10.0  # paper: ~2% at 400 req/s; ours must stay small


class TestTableFormatting:
    def test_format_series_table(self):
        txt = format_series_table({"x": [1, 2], "y": [0.5, 1.25]}, "t")
        lines = txt.splitlines()
        assert lines[0] == "t"
        assert "x" in lines[1] and "y" in lines[1]
        assert "1.25" in txt

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            format_series_table({"x": [1], "y": [1, 2]})

    def test_empty(self):
        assert format_series_table({}, "title") == "title"
