"""Direct tests for ToyVocab and the encoder/decoder stack modules."""

import numpy as np
import pytest

from repro.core.masks import block_diagonal_mask, padding_key_mask
from repro.model.decoder import decode_stack, decoder_layer
from repro.model.encoder import encode, encoder_layer, encoder_layer_slotted
from repro.model.params import DecoderLayerParams, EncoderLayerParams
from repro.model.vocab import ToyVocab


class TestToyVocab:
    def test_roundtrip(self):
        v = ToyVocab()
        text = "the water place"
        assert v.decode(v.encode(text)) == text

    def test_unknown_word_maps_to_unk(self):
        v = ToyVocab()
        ids = v.encode("xylophone")
        assert ids == [ToyVocab.UNK]
        assert v.decode(ids) == "<unk>"

    def test_specials(self):
        v = ToyVocab()
        assert v.decode([ToyVocab.BOS, *v.encode("the"), ToyVocab.EOS, *v.encode("of")]) == "the"

    def test_random_sentence_length(self, rng):
        v = ToyVocab()
        s = v.random_sentence(7, rng)
        assert len(s.split()) == 7
        assert all(w in v.words for w in s.split())

    def test_random_tokens_in_range(self, rng):
        v = ToyVocab()
        toks = v.random_tokens(20, rng)
        assert all(4 <= t < v.size for t in toks)

    def test_custom_words(self):
        v = ToyVocab(["alpha", "beta"])
        assert v.size == 6
        assert v.encode("beta alpha") == [5, 4]


class TestEncoderStack:
    @pytest.fixture()
    def layer(self):
        return EncoderLayerParams.init(np.random.default_rng(0), d_model=16, d_ff=32)

    def test_layer_preserves_shape(self, layer, rng):
        x = rng.normal(size=(2, 5, 16))
        assert encoder_layer(layer, 4, x).shape == x.shape

    def test_stack_applies_layers_in_order(self, layer, rng):
        x = rng.normal(size=(1, 4, 16))
        one = encoder_layer(layer, 4, x)
        two = encode([layer, layer], 4, x)
        assert np.allclose(two, encoder_layer(layer, 4, one))

    def test_slotted_layer_matches_masked(self, layer, rng):
        x = rng.normal(size=(1, 6, 16))
        seg = np.array([[0, 0, 0, 1, 1, 1]])
        masked = encoder_layer(layer, 4, x, mask=block_diagonal_mask(seg))
        slotted = encoder_layer_slotted(
            layer,
            4,
            x,
            [(0, 3), (3, 6)],
            [block_diagonal_mask(seg[:, :3]), block_diagonal_mask(seg[:, 3:])],
        )
        assert np.allclose(masked, slotted, atol=1e-12)

    def test_stack_slotted_path(self, layer, rng):
        x = rng.normal(size=(1, 6, 16))
        out = encode([layer], 4, x, slot_spans=[(0, 3), (3, 6)])
        assert out.shape == x.shape

    def test_padding_mask_blocks_influence(self, layer, rng):
        x = rng.normal(size=(1, 4, 16))
        seg = np.array([[0, 0, 0, -1]])
        mask = padding_key_mask(seg)
        out1 = encoder_layer(layer, 4, x, mask=mask)
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb the padded position
        out2 = encoder_layer(layer, 4, x2, mask=mask)
        assert np.allclose(out1[0, :3], out2[0, :3])


class TestDecoderStack:
    @pytest.fixture()
    def layer(self):
        return DecoderLayerParams.init(np.random.default_rng(1), d_model=16, d_ff=32)

    def test_layer_shapes(self, layer, rng):
        x = rng.normal(size=(2, 3, 16))
        mem = rng.normal(size=(2, 7, 16))
        assert decoder_layer(layer, 4, x, mem).shape == x.shape

    def test_stack_composition(self, layer, rng):
        x = rng.normal(size=(1, 3, 16))
        mem = rng.normal(size=(1, 5, 16))
        one = decoder_layer(layer, 4, x, mem)
        two = decode_stack([layer, layer], 4, x, mem)
        assert np.allclose(two, decoder_layer(layer, 4, one, mem))

    def test_cross_mask_blocks_memory(self, layer, rng):
        x = rng.normal(size=(1, 2, 16))
        mem = rng.normal(size=(1, 4, 16))
        from repro.core.masks import NEG_INF

        cross = np.zeros((1, 2, 4))
        cross[:, :, 2:] = NEG_INF  # hide second half of memory
        out1 = decoder_layer(layer, 4, x, mem, cross_mask=cross)
        mem2 = mem.copy()
        mem2[0, 2:] += 50.0
        out2 = decoder_layer(layer, 4, x, mem2, cross_mask=cross)
        assert np.allclose(out1, out2)
