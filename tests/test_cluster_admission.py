"""Tests for the cluster simulator and admission control."""

import pytest

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.scheduling.baselines import FCFSScheduler
from repro.serving.admission import AdmissionController
from repro.serving.cluster import ClusterSimulator
from repro.serving.simulator import ServingSimulator
from repro.types import Request, make_requests
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


def _batch(rows=4, L=20):
    return BatchConfig(num_rows=rows, row_length=L)


def _workload(rate=200.0, horizon=3.0, seed=0, base_slack=1.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=base_slack, jitter=0.5),
        horizon=horizon,
        seed=seed,
    )


class TestClusterSimulator:
    def test_single_engine_matches_plain_simulator(self):
        wl = _workload()
        single = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        cluster = ClusterSimulator(FCFSScheduler(_batch()), [ConcatEngine(_batch())])
        m1 = single.run(wl).metrics
        m2 = cluster.run(wl).metrics
        assert m1.num_served == m2.num_served
        assert m1.total_utility == pytest.approx(m2.total_utility)

    def test_more_engines_serve_more_under_overload(self):
        wl = _workload(rate=600.0, horizon=4.0)
        served = []
        for g in (1, 2, 4):
            sim = ClusterSimulator(
                FCFSScheduler(_batch()),
                [ConcatEngine(_batch()) for _ in range(g)],
            )
            served.append(sim.run(wl).metrics.num_served)
        assert served[1] > served[0]
        assert served[2] > served[1]

    def test_scaling_sublinear_near_capacity(self):
        """Once the cluster exceeds the offered load, extra engines idle."""
        wl = _workload(rate=50.0, horizon=4.0, base_slack=5.0)
        m4 = ClusterSimulator(
            FCFSScheduler(_batch()), [ConcatEngine(_batch()) for _ in range(4)]
        ).run(wl).metrics
        m8 = ClusterSimulator(
            FCFSScheduler(_batch()), [ConcatEngine(_batch()) for _ in range(8)]
        ).run(wl).metrics
        assert m8.num_served <= m4.num_served * 1.1

    def test_conservation(self):
        wl = _workload(rate=400.0)
        n = len(wl.generate())
        m = ClusterSimulator(
            FCFSScheduler(_batch()), [ConcatEngine(_batch()) for _ in range(3)]
        ).run(wl).metrics
        assert m.num_served + m.num_expired == n

    def test_requires_engines(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterSimulator(FCFSScheduler(_batch()), [])


class _FlakySelect(Scheduler):
    """Wrap a scheduler, returning an empty decision on scripted calls."""

    def __init__(self, inner: Scheduler, empty_on: set[int]):
        super().__init__(inner.batch)
        self.inner = inner
        self.empty_on = empty_on
        self.calls = 0

    def select(self, waiting, now=0.0):
        call = self.calls
        self.calls += 1
        if call in self.empty_on:
            return SchedulingDecision()
        return self.inner.select(waiting, now)


class TestClusterEngineRearming:
    """An engine that selects nothing must not leave the cluster forever."""

    def _scenario(self):
        batch = BatchConfig(num_rows=1, row_length=20)
        # Measured slot latencies for the deadline arithmetic below.
        f_a = ConcatEngine(batch).serve(
            make_requests([20], deadlines=[100.0])
        ).latency
        f_b = ConcatEngine(batch).serve(
            make_requests([12], deadlines=[100.0])
        ).latency
        # B and C can start at f_a but not at f_a + f_b: a cluster that
        # lost an engine can only serve one of them in time.
        ddl = f_a + 0.5 * f_b
        reqs = [
            Request(request_id=0, length=20, deadline=100.0),
            Request(request_id=1, length=12, deadline=ddl),
            Request(request_id=2, length=12, deadline=ddl),
        ]
        return batch, reqs

    def _run(self, empty_on):
        batch, reqs = self._scenario()
        sched = _FlakySelect(FCFSScheduler(batch), empty_on=empty_on)
        sim = ClusterSimulator(sched, [ConcatEngine(batch), ConcatEngine(batch)])
        return sim.run(reqs, horizon=100.0).metrics

    def test_engine_rearms_after_empty_selection(self):
        # Call 0: engine 0 takes A (fills the single row).  Call 1:
        # engine 1 gets an empty decision with no unservable requests
        # and no arrivals left — the case that used to drop it from the
        # idle heap for good.  It must re-arm at engine 0's finish and
        # pick up C there.
        m = self._run(empty_on={1})
        assert m.num_served == 3
        assert m.conservation_ok

    def test_baseline_without_flake_serves_all(self):
        m = self._run(empty_on=set())
        assert m.num_served == 3


class TestAdmissionController:
    def _ctrl(self, **kw):
        return AdmissionController(batch=_batch(), **kw)

    def test_oversize_rejected(self):
        ctrl = self._ctrl()
        r = Request(request_id=0, length=50, deadline=100.0)
        d = ctrl.check(r, now=0.0)
        assert not d.admitted
        assert "row" in d.reason

    def test_unreachable_deadline_rejected(self):
        ctrl = self._ctrl()
        r = Request(request_id=0, length=10, arrival=0.0, deadline=1e-6)
        d = ctrl.check(r, now=0.0)
        assert not d.admitted
        assert "deadline" in d.reason

    def test_feasible_admitted(self):
        ctrl = self._ctrl()
        r = Request(request_id=0, length=10, deadline=100.0)
        assert ctrl.check(r, now=0.0).admitted

    def test_queue_pressure(self):
        ctrl = self._ctrl(max_queued_tokens=15)
        a = Request(request_id=0, length=10, deadline=100.0)
        b = Request(request_id=1, length=10, deadline=100.0)
        assert ctrl.admit(a, now=0.0)
        assert not ctrl.admit(b, now=0.0)
        assert ctrl.check(b, now=0.0).reason == "queue pressure"
        # Releasing frees budget again.
        ctrl.release([a])
        assert ctrl.admit(b, now=0.0)

    def test_rejected_recorded(self):
        ctrl = self._ctrl()
        bad = Request(request_id=0, length=50, deadline=100.0)
        assert not ctrl.admit(bad, now=0.0)
        assert ctrl.rejected == [bad]

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            self._ctrl(max_queued_tokens=0)

    def test_release_never_negative(self):
        ctrl = self._ctrl(max_queued_tokens=100)
        r = Request(request_id=0, length=10, deadline=100.0)
        ctrl.release([r])
        assert ctrl.queued_tokens == 0

    def test_admission_filters_improve_wasted_work(self):
        """With admission control, the queue never holds unschedulable
        requests — the scheduler's waiting set shrinks."""
        ctrl = self._ctrl()
        reqs = make_requests(
            [10, 30, 10], deadlines=[5.0, 5.0, 1e-9], start_id=0
        )
        admitted = [r for r in reqs if ctrl.admit(r, now=0.0)]
        assert [r.request_id for r in admitted] == [0]


class TestAdmissionWiring:
    """Admission controllers plugged into the serving loops."""

    def _reqs(self):
        # One oversized (rejected at arrival), two feasible.
        return [
            Request(request_id=0, length=50, deadline=100.0),
            Request(request_id=1, length=10, deadline=100.0),
            Request(request_id=2, length=10, deadline=100.0),
        ]

    def test_simulator_folds_rejections_into_metrics(self):
        sim = ServingSimulator(
            FCFSScheduler(_batch()),
            ConcatEngine(_batch()),
            admission=AdmissionController(batch=_batch()),
        )
        m = sim.run(self._reqs(), horizon=10.0).metrics
        assert m.num_rejected == 1
        assert m.rejected[0].request_id == 0
        assert m.num_served == 2
        assert m.conservation_ok

    def test_cluster_folds_rejections_into_metrics(self):
        sim = ClusterSimulator(
            FCFSScheduler(_batch()),
            [ConcatEngine(_batch()) for _ in range(2)],
            admission=AdmissionController(batch=_batch()),
        )
        m = sim.run(self._reqs(), horizon=10.0).metrics
        assert m.num_rejected == 1
        assert m.num_served == 2
        assert m.conservation_ok

    def test_shared_controller_does_not_leak_across_runs(self):
        ctrl = AdmissionController(batch=_batch())
        sim = ServingSimulator(
            FCFSScheduler(_batch()), ConcatEngine(_batch()), admission=ctrl
        )
        m1 = sim.run(self._reqs(), horizon=10.0).metrics
        m2 = sim.run(
            [
                Request(request_id=10, length=50, deadline=100.0),
                Request(request_id=11, length=5, deadline=100.0),
            ],
            horizon=10.0,
        ).metrics
        assert m1.num_rejected == 1
        # Second run sees only its own rejection, not the first run's.
        assert m2.num_rejected == 1
        assert m2.rejected[0].request_id == 10
        assert m2.conservation_ok

    def test_admission_sheds_load_under_pressure(self):
        wl = _workload(rate=600.0, horizon=3.0)
        ctrl = AdmissionController(batch=_batch(), max_queued_tokens=200)
        m = ServingSimulator(
            FCFSScheduler(_batch()), ConcatEngine(_batch()), admission=ctrl
        ).run(wl).metrics
        assert m.num_rejected > 0
        assert m.conservation_ok
