"""Tests for the fairness analysis helpers."""

import dataclasses

import pytest

from repro.analysis.fairness import (
    jain_index,
    service_rate_by_length,
    service_rate_by_tenant,
    tenant_jain_index,
)
from repro.serving.metrics import ServingMetrics
from repro.types import make_requests


def _metrics(served_lengths, expired_lengths):
    m = ServingMetrics(horizon=1.0)
    m.served = make_requests(served_lengths, start_id=0)
    m.expired = make_requests(expired_lengths, start_id=1000)
    return m


class TestServiceRateByLength:
    def test_partition_covers_all_offered(self):
        m = _metrics([3, 5, 8, 20, 40], [10, 60, 90])
        out = service_rate_by_length(m, num_buckets=4)
        assert sum(out["offered"]) == 8
        assert sum(out["served"]) == 5

    def test_rates_bounded(self):
        m = _metrics([3, 4, 5], [50, 60])
        out = service_rate_by_length(m, num_buckets=2)
        assert all(0.0 <= r <= 1.0 for r in out["service_rate"])

    def test_short_favoured_detected(self):
        # All short served, all long expired → first bucket 1.0, last 0.0.
        m = _metrics([3, 4, 5, 6], [80, 90, 95, 100])
        out = service_rate_by_length(m, num_buckets=2)
        assert out["service_rate"][0] == 1.0
        assert out["service_rate"][-1] == 0.0

    def test_empty(self):
        out = service_rate_by_length(ServingMetrics(), num_buckets=3)
        assert out["offered"] == []

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            service_rate_by_length(ServingMetrics(), num_buckets=0)


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_perfectly_unfair(self):
        # One bucket gets everything: index → 1/n.
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0.0, 0.0]) == 0.0

    def test_monotone_in_imbalance(self):
        assert jain_index([0.6, 0.4]) > jain_index([0.9, 0.1])


def _tag(requests, tenants):
    return [
        dataclasses.replace(r, tenant=t) for r, t in zip(requests, tenants)
    ]


def _tenant_metrics(served, expired):
    """served/expired: lists of (length, tenant) pairs."""
    m = ServingMetrics(horizon=1.0)
    m.served = _tag(
        make_requests([length for length, _ in served], start_id=0),
        [t for _, t in served],
    )
    m.expired = _tag(
        make_requests([length for length, _ in expired], start_id=1000),
        [t for _, t in expired],
    )
    return m


class TestServiceRateByTenant:
    def test_counts_and_rates(self):
        m = _tenant_metrics(
            served=[(5, "a"), (8, "a"), (5, "b")],
            expired=[(20, "b"), (30, "b")],
        )
        out = service_rate_by_tenant(m)
        assert out["a"]["offered"] == 2 and out["a"]["served"] == 2
        assert out["b"]["offered"] == 3 and out["b"]["served"] == 1
        assert out["a"]["service_rate"] == pytest.approx(1.0)
        assert out["b"]["service_rate"] == pytest.approx(1 / 3)

    def test_untagged_requests_fall_under_default(self):
        m = _metrics([3, 5], [10])
        out = service_rate_by_tenant(m)
        assert set(out) == {"default"}
        assert out["default"]["offered"] == 3

    def test_empty(self):
        assert service_rate_by_tenant(ServingMetrics()) == {}


class TestTenantJainIndex:
    def test_single_tenant_trivially_fair(self):
        m = _tenant_metrics(served=[(5, "a")], expired=[(9, "a")])
        assert tenant_jain_index(m) == pytest.approx(1.0)

    def test_zero_served_scores_zero(self):
        m = _tenant_metrics(
            served=[], expired=[(5, "a"), (9, "b")]
        )
        assert tenant_jain_index(m) == 0.0

    def test_equal_rates_fair_unequal_unfair(self):
        fair = _tenant_metrics(
            served=[(5, "a"), (5, "b")], expired=[(9, "a"), (9, "b")]
        )
        skewed = _tenant_metrics(
            served=[(5, "a"), (5, "a")],
            expired=[(9, "b"), (9, "b")],
        )
        assert tenant_jain_index(fair) == pytest.approx(1.0)
        assert tenant_jain_index(skewed) < tenant_jain_index(fair)
