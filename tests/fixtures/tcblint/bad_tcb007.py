"""Known-bad fixture: swallowed exceptions in serving code (TCB007).

Linted under a synthetic ``repro/serving/...`` path so the rule's
path scoping applies.
"""


def bare_except():
    try:
        risky()
    except:  # line 11: catches everything, including KeyboardInterrupt
        recover()


def silent_pass():
    try:
        risky()
    except ValueError:  # line 18: failure vanishes without a trace
        pass


def silent_docstring():
    try:
        risky()
    except (OSError, RuntimeError):  # line 25: comment-only body
        """Nothing to do here."""


def handled_is_fine():
    try:
        risky()
    except ValueError as exc:
        raise RuntimeError("wrapped") from exc


def risky():
    raise ValueError("boom")


def recover():
    return None
