"""Known-bad TCB012 fixture: typed faults swallowed or escaping.

Linted by tests with a ``repro/serving/`` path; the project rule builds
a call graph over whatever modules the run sees (here: just this file).
"""


class BatchFailure(Exception):
    def __init__(self, requests):
        super().__init__(len(requests))
        self.requests = requests


def unhandled_raise(batch):
    raise BatchFailure(batch)  # no ledgered handler on any caller chain


def swallowing_handler(engine, batch):
    try:
        return engine.serve(batch)
    except BatchFailure:  # payload silently dropped
        return None


def ledgered_handler(engine, batch, metrics):
    try:
        return engine.serve(batch)
    except BatchFailure as failure:
        metrics.rejected.extend(failure.requests)
        return []


def documented_escape(batch):
    """Validate a batch; raises BatchFailure on malformed requests."""
    if not batch:
        raise BatchFailure(batch)
    return batch
