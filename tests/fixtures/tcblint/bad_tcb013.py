"""TCB013 fixture: snapshot/restore field-parity violations.

The ``orphan`` field is captured but never read back (direction A),
and ``restore`` reads ``snap.missing`` which is not a declared field
(direction B).  Every other field round-trips cleanly.
"""

from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class Snapshot:
    seq: int
    step: int
    queue: Any
    orphan: Optional[dict]  # line 17: captured, never restored

    def describe(self) -> str:
        return f"snapshot #{self.seq}"


class Journal:
    @property
    def latest_snapshot(self) -> Optional[Snapshot]:
        return None


def restore(journal: Journal):
    snap = journal.latest_snapshot
    if snap is None:
        raise ValueError("no snapshot")
    label = snap.describe()  # method access: not a field read
    return {
        "seq": snap.seq,
        "step": snap.step,
        "queue": snap.queue,
        "label": label,
        "extra": snap.missing,  # line 38: undeclared field
    }


def inspect(snap: Snapshot) -> int:
    # Annotated parameter counts as a snapshot binding too.
    return snap.step
