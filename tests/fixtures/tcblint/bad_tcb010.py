"""Known-bad TCB010 fixture: wall-clock / simulated-time mixing.

Linted by tests with a ``repro/scheduling/`` path (where TCB003 is
policy-waived for the fig16 files — exactly the gap TCB010 closes).
"""

import time


def mixes_domains(now):
    start = time.perf_counter()
    return now - start  # BinOp across the two clock domains


def wall_into_sim_sink(queue, now):
    stamp = time.monotonic()
    queue.expire(stamp)  # wall reading advances the simulated clock


def sim_into_wall_sink(now):
    time.sleep(now)  # simulated timestamp used as a real duration


def compares_domains(queue, now, deadline):
    t0 = time.perf_counter()
    if t0 > deadline + now:  # comparison across domains
        queue.expire(now)


def clean_overhead_measurement(decision, plan):
    start = time.perf_counter()
    decision.runtime = time.perf_counter() - start  # wall - wall
    return decision


def clean_rebinding(queue, now):
    t = time.perf_counter()
    t = now + 1.0  # rebound into the sim domain before use
    queue.expire(t)
