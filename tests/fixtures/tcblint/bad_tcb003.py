"""Known-bad fixture: wall-clock reads in simulator code (TCB003).

Linted under a synthetic ``repro/serving/...`` path so the rule's
path scoping applies.
"""

import time
from datetime import datetime
from time import perf_counter as pc


def wall_clock_now():
    return time.time()  # line 13


def measures_itself():
    return pc()  # line 17: from-import alias


def stamps_events():
    return datetime.now()  # line 21
