"""Known-bad fixture: mutable default arguments (TCB005)."""


def list_default(x, acc=[]):  # line 4
    acc.append(x)
    return acc


def dict_default(k, v, table={}):  # line 9
    table[k] = v
    return table


def factory_default(xs=list()):  # line 14
    return xs


def fine_none_default(x, acc=None):
    acc = [] if acc is None else acc
    acc.append(x)
    return acc
