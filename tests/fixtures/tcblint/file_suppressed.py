"""Fixture: a file-wide directive silences one rule everywhere."""
# tcblint: disable-file=TCB005


def first(x, acc=[]):
    return acc


def second(k, table={}):
    return table
