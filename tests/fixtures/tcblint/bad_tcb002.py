"""Known-bad fixture: global / untracked RNG (TCB002)."""

import numpy as np
import numpy.random as npr
from numpy.random import default_rng


def seeds_the_world():
    np.random.seed(0)  # line 9: global seed


def module_level_draws():
    a = np.random.rand(4)  # line 13
    b = npr.normal(size=3)  # line 14: aliased module import
    return a, b


def mid_pipeline_rng():
    rng = default_rng(7)  # line 19: default_rng outside entry points
    return rng.integers(0, 10)


def fine_generator_threading(rng: np.random.Generator):
    # Annotations and Generator method calls must not fire.
    return rng.normal(size=2)
