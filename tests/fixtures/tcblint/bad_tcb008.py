"""Known-bad fixture: unledgered queue removals (TCB008).

Linted under a synthetic ``repro/serving/...`` path so the rule's
path scoping applies.
"""


def bare_drop(queue, unservable):
    queue.drop(unservable)  # line 9: removal with no ledger entry


def bare_take(queue, victims):
    return queue.take(victims)  # line 13: ledgerless shed


def waiting_splice(queue, rid):
    del queue._waiting[rid]  # line 17: bypasses all queue accounting


def reads_count_too(queue):
    return len(queue._waiting)  # line 21: even reads stay behind the API


class FakeQueue:
    def __init__(self):
        self._waiting = {}  # line 26: own attribute, fine

    def drop(self, requests):
        for r in requests:
            self._waiting.pop(r, None)  # self._waiting is fine

    def helper(self):
        return self.drop([])  # self.drop() is internal bookkeeping, fine


def ledgered_is_fine(queue, metrics, victims, now):
    from repro.overload.ledger import shed_requests

    return shed_requests(queue, metrics, victims, now)
