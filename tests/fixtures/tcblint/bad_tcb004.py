"""Known-bad fixture: reduced-precision dtypes in hot paths (TCB004).

Linted under a synthetic ``repro/core/...`` path so the rule's path
scoping applies.
"""

import numpy as np


def attr_dtype(x):
    return np.asarray(x, dtype=np.float32)  # line 11


def string_dtype(n):
    return np.zeros(n, dtype="float32")  # line 15


def string_astype(x):
    return x.astype("float16")  # line 19


def fine_float64(x):
    return np.asarray(x, dtype=np.float64)
