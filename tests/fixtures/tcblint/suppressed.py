"""Fixture: every violation here carries an inline suppression."""

import numpy as np

NEG_INF = -1.0e9


def waived_mask(allowed):
    return np.where(allowed, 0.0, NEG_INF)  # tcblint: disable=TCB001


def waived_two_rules(x, acc=[]):  # tcblint: disable=TCB005
    np.random.seed(0)  # tcblint: disable=TCB002
    return acc
