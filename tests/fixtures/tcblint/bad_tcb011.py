"""Known-bad TCB011 fixture: two consumers keying the same RNG stream.

Linted by tests with a ``repro/`` path; the project rule fingerprints
``SeedSequence`` tuple keys structurally.
"""

import numpy as np

_STREAM_DISTINCT = 0x2B


def plan_stream(seed, index):
    return np.random.SeedSequence((seed, index))


def shed_stream(seed, decision):
    # Same (*, *) fingerprint as plan_stream: the two call sites draw
    # correlated child streams whenever seed/index collide.
    return np.random.SeedSequence((seed, decision))


def tagged_stream(seed, index):
    return np.random.SeedSequence((seed, _STREAM_DISTINCT, index))
