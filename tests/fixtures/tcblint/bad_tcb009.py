"""Known-bad TCB009 fixture: queue removals that escape the ledger.

Linted by tests with a ``repro/serving/`` path; the rule is silent at
this file's real location.
"""


def leak_on_branch(queue, metrics, victims, verbose):
    taken = queue.take(victims)
    if verbose:
        metrics.rejected.extend(taken)
    return taken  # the false branch never ledgers the batch


def discarded_take(queue, victims):
    queue.take(victims)  # result not even bound: a sure leak
    return len(victims)


def leak_after_loop_break(queue, metrics, victims):
    batch = queue.take(victims)
    for _ in range(3):
        if metrics.full:
            break
    else:
        metrics.rejected.extend(batch)
    return batch  # break path skips the else-clause ledger


def clean_guarded(queue, metrics, victims):
    taken = queue.take(victims)
    if not taken:
        return []  # empty batch owes nothing (branch refinement)
    metrics.rejected.extend(taken)
    return taken


def clean_requeue(queue, served):
    queue.remove_served(served)
    queue.requeue(served)


def clean_element_handoff(queue, running, victims):
    admitted = queue.take(victims)
    for req in admitted:
        running.append(req)  # per-element ownership transfer
    return running
