"""Known-bad fixture: quadratic score-matrix allocations (TCB006)."""

import numpy as np


def score_matrix(b, w):
    return np.zeros((b, w, w))  # line 7


def kw_shape(L):
    return np.empty(shape=(L, L))  # line 11


def fine_rectangular(b, w, d):
    return np.zeros((b, w, d))


def fine_small_constant():
    return np.zeros((3, 3))  # constants are not the L-by-L pattern


def _reference_score_matrix(b, w):
    # Differential oracle kept verbatim (ISSUE 8): exempt by name.
    return np.zeros((b, w, w))


class _ReferenceThing:
    def dense(self, L):
        # Inside a _Reference* oracle class: exempt.
        return np.empty(shape=(L, L))
