"""Known-bad fixture: ad-hoc additive masks (TCB001)."""

import numpy as np

NEG_INF = -1.0e9


def ad_hoc_where(allowed):
    return np.where(allowed, 0.0, NEG_INF)  # line 9: named constant


def ad_hoc_literal(allowed):
    return np.where(allowed, 0.0, -1e9)  # line 13: raw literal


def ad_hoc_full(shape):
    return np.full(shape, NEG_INF)  # line 17: full-of-NEG_INF


def fine_top_k_filter(scores, kth):
    # Logit truncation with -inf is NOT a mask build; must not fire.
    return np.where(scores >= kth, scores, -np.inf)
