"""Tests for the ASCII layout/mask renderer."""

import numpy as np
import pytest

from repro.core.layout import BatchLayout
from repro.core.masks import block_diagonal_mask, causal_block_mask
from repro.core.render import (
    render_layout,
    render_mask,
    render_positions,
    request_letters,
)
from repro.core.slotting import pack_into_slots
from repro.types import Request, make_requests


def _layout():
    layout = BatchLayout(num_rows=2, row_length=8)
    layout.rows[0].add(Request(request_id=10, length=3))
    layout.rows[0].add(Request(request_id=11, length=2))
    layout.rows[1].add(Request(request_id=12, length=4))
    return layout


class TestRenderLayout:
    def test_letters_and_padding(self):
        art = render_layout(_layout())
        lines = art.splitlines()
        assert lines[0] == "row 0: aaabb"
        assert lines[1] == "row 1: cccc."

    def test_slot_boundaries_marked(self):
        reqs = make_requests([4, 4, 4, 4], start_id=0)
        res = pack_into_slots(reqs, num_rows=1, row_length=16, slot_size=4)
        art = render_layout(res.layout)
        assert "|" in art
        assert art.count("|") == 3  # boundaries at 4, 8, 12

    def test_fixed_width(self):
        art = render_layout(_layout(), width=8)
        assert art.splitlines()[0].endswith("aaabb...")

    def test_letter_mapping_stable(self):
        layout = _layout()
        assert request_letters(layout) == {10: "a", 11: "b", 12: "c"}


class TestRenderPositions:
    def test_separate_restarts(self):
        art = render_positions(_layout(), separate=True)
        assert art.splitlines()[0] == "row 0: 01201"

    def test_traditional_continues(self):
        art = render_positions(_layout(), separate=False)
        assert art.splitlines()[0] == "row 0: 01234"

    def test_padding_dot(self):
        art = render_positions(_layout(), separate=True)
        assert art.splitlines()[1] == "row 1: 0123."


class TestRenderMask:
    def test_block_diagonal_pattern(self):
        seg = np.array([[0, 0, 1]])
        art = render_mask(block_diagonal_mask(seg))
        assert art.splitlines() == ["##.", "##.", "..#"]

    def test_causal_pattern(self):
        seg = np.array([[0, 0, 0]])
        art = render_mask(causal_block_mask(seg))
        assert art.splitlines() == ["#..", "##.", "###"]

    def test_row_selection(self):
        seg = np.array([[0, 0], [1, 2]])
        art = render_mask(block_diagonal_mask(seg), row=1)
        assert art.splitlines() == ["#.", ".#"]

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            render_mask(np.zeros(4))
