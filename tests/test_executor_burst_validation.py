"""Tests for the parallel slot executor, bursty workloads and layout validation."""

import numpy as np
import pytest

from repro.core.concat_attention import att_cb_s
from repro.core.layout import BatchLayout
from repro.core.masks import block_diagonal_mask
from repro.core.packing import pack_first_fit
from repro.core.slotting import pack_into_slots
from repro.core.validation import validate_layout
from repro.engine.executor import parallel_slot_attention
from repro.types import Request, make_requests
from repro.workload.burst import BurstyWorkload


class TestParallelSlotAttention:
    def _qkv(self, rng, b=2, w=12, d=8):
        return (
            rng.normal(size=(b, w, d)),
            rng.normal(size=(b, w, d)),
            rng.normal(size=(b, w, d)),
        )

    def test_matches_sequential(self, rng):
        q, k, v = self._qkv(rng)
        seg = np.array([[0] * 4 + [1] * 4 + [2] * 4, [3] * 6 + [4] * 6])
        spans = [(0, 4), (4, 8), (8, 12)]
        masks = [block_diagonal_mask(seg[:, a:b]) for a, b in spans]
        seq = att_cb_s(q, k, v, spans, masks)
        par = parallel_slot_attention(q, k, v, spans, masks, max_workers=3)
        assert np.allclose(seq, par, atol=1e-12)

    def test_single_worker_path(self, rng):
        q, k, v = self._qkv(rng, w=8)
        spans = [(0, 4), (4, 8)]
        out = parallel_slot_attention(q, k, v, spans, max_workers=1)
        assert out.shape == q.shape

    def test_invalid_spans(self, rng):
        q, k, v = self._qkv(rng, w=8)
        with pytest.raises(ValueError, match="contiguous"):
            parallel_slot_attention(q, k, v, [(0, 3), (4, 8)])
        with pytest.raises(ValueError, match="cover"):
            parallel_slot_attention(q, k, v, [(0, 4)])
        with pytest.raises(ValueError, match="at least one"):
            parallel_slot_attention(q, k, v, [])
        with pytest.raises(ValueError, match="max_workers"):
            parallel_slot_attention(q, k, v, [(0, 8)], max_workers=0)
        with pytest.raises(ValueError, match="align"):
            parallel_slot_attention(q, k, v, [(0, 4), (4, 8)], [None])


class TestBurstyWorkload:
    def test_generates_within_horizon(self):
        wl = BurstyWorkload(rate=100.0, horizon=4.0, seed=1)
        reqs = wl.generate()
        assert reqs
        assert all(0 <= r.arrival < 4.0 for r in reqs)
        arr = [r.arrival for r in reqs]
        assert arr == sorted(arr)

    def test_long_run_rate_near_nominal(self):
        wl = BurstyWorkload(rate=200.0, horizon=60.0, seed=0)
        n = len(wl.generate())
        # Normalised on/off mixing keeps the long-run mean near `rate`;
        # state-sequence randomness still leaves sizable variance.
        assert 0.6 * 200 * 60 < n < 1.6 * 200 * 60

    def test_burstier_than_poisson(self):
        from repro.workload.generator import WorkloadGenerator

        bursty = BurstyWorkload(rate=300.0, burst_factor=6.0, horizon=10.0, seed=2)
        smooth = WorkloadGenerator(rate=300.0, horizon=10.0, seed=2)
        b_reqs = bursty.generate()
        s_reqs = smooth.generate()
        b_idx = bursty.burstiness_index(b_reqs)
        s_idx = bursty.burstiness_index(s_reqs)
        assert b_idx > s_idx * 1.5

    def test_deterministic(self):
        a = BurstyWorkload(rate=50.0, horizon=3.0, seed=7).generate()
        b = BurstyWorkload(rate=50.0, horizon=3.0, seed=7).generate()
        assert [(r.arrival, r.length) for r in a] == [
            (r.arrival, r.length) for r in b
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyWorkload(rate=0.0)
        with pytest.raises(ValueError):
            BurstyWorkload(burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyWorkload(mean_state_duration=0.0)

    def test_burstiness_index_empty(self):
        wl = BurstyWorkload()
        assert wl.burstiness_index([]) == 0.0


class TestValidateLayout:
    def test_good_concat_layout(self):
        reqs = make_requests([4, 3, 5, 2], start_id=0)
        layout = pack_first_fit(reqs, num_rows=2, row_length=10).layout
        report = validate_layout(layout)
        assert report.ok
        assert "att_cb ≡ per-request" in report.checks
        report.raise_if_failed()

    def test_good_slotted_layout(self):
        reqs = make_requests([3, 4, 2, 4], start_id=0)
        layout = pack_into_slots(reqs, 2, 8, 4).layout
        report = validate_layout(layout)
        assert report.ok
        assert "att_cb_s ≡ att_cb" in report.checks

    def test_structural_failure_detected(self):
        layout = BatchLayout(num_rows=1, row_length=10)
        layout.rows[0].add(Request(request_id=0, length=4))
        layout.rows[0].add(Request(request_id=0, length=4))  # duplicate id
        report = validate_layout(layout)
        assert not report.ok
        with pytest.raises(AssertionError, match="validation failed"):
            report.raise_if_failed()

    def test_empty_layout_flagged(self):
        layout = BatchLayout(num_rows=1, row_length=10)
        report = validate_layout(layout)
        assert not report.ok

    def test_model_check(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 6, 3])
        layout = pack_first_fit(reqs, num_rows=1, row_length=16).layout
        report = validate_layout(layout, model=tiny_model)
        assert report.ok
        assert "model concat ≡ isolated" in report.checks

    def test_model_check_requires_tokens(self, tiny_model):
        reqs = make_requests([4, 3], start_id=0)
        layout = pack_first_fit(reqs, num_rows=1, row_length=8).layout
        report = validate_layout(layout, model=tiny_model)
        assert not report.ok
