"""Tests for the discrete-event serving simulator and metrics."""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.engine import ConcatEngine, NaiveEngine, SlottedConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.scheduling import (
    DASScheduler,
    FCFSScheduler,
    SlottedDASScheduler,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator
from repro.types import Request, make_requests
from repro.workload.generator import LengthDistribution, WorkloadGenerator
from repro.workload.deadlines import DeadlineModel


def _batch(rows=4, L=20):
    return BatchConfig(num_rows=rows, row_length=L)


def _workload(rate=100.0, horizon=2.0, seed=0, base_slack=2.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=base_slack, jitter=0.5),
        horizon=horizon,
        seed=seed,
    )


class TestSimulatorBasics:
    def test_conservation_served_plus_expired(self):
        wl = _workload()
        n = len(wl.generate())
        sim = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        m = sim.run(wl).metrics
        assert m.num_served + m.num_expired == n
        served_ids = {r.request_id for r in m.served}
        expired_ids = {r.request_id for r in m.expired}
        assert not served_ids & expired_ids

    def test_deterministic_given_seed(self):
        wl = _workload(seed=7)
        m1 = ServingSimulator(DASScheduler(_batch()), ConcatEngine(_batch())).run(wl).metrics
        m2 = ServingSimulator(DASScheduler(_batch()), ConcatEngine(_batch())).run(wl).metrics
        assert m1.total_utility == m2.total_utility
        assert m1.num_served == m2.num_served

    def test_finish_after_arrival(self):
        sim = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        m = sim.run(_workload()).metrics
        for rid, (arrival, finish) in m.finish_times.items():
            assert finish > arrival

    def test_served_requests_met_deadline_at_selection(self):
        """No request may be *scheduled* past its deadline (Eq. 12)."""
        sim = ServingSimulator(
            FCFSScheduler(_batch()), ConcatEngine(_batch()), record_slots=True
        )
        res = sim.run(_workload(rate=300.0, base_slack=0.5))
        for t_start, decision, batch_result in res.slots:
            for r in batch_result.served:
                assert r.arrival <= t_start <= r.deadline

    def test_everything_served_under_light_load(self):
        wl = _workload(rate=5.0, horizon=2.0, base_slack=10.0)
        sim = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        m = sim.run(wl).metrics
        assert m.num_expired == 0
        assert m.num_served == len(wl.generate())

    def test_requests_list_input(self):
        reqs = make_requests([5, 5], arrivals=[0.0, 0.1], deadlines=[10.0, 10.0], start_id=0)
        sim = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        m = sim.run(reqs, horizon=5.0).metrics
        assert m.num_served == 2

    def test_oversize_requests_dropped_not_livelocked(self):
        reqs = [Request(request_id=0, length=50, arrival=0.0, deadline=100.0)]
        sim = ServingSimulator(FCFSScheduler(_batch(L=20)), ConcatEngine(_batch(L=20)))
        m = sim.run(reqs, horizon=5.0).metrics
        assert m.num_served == 0
        assert m.num_expired == 1

    def test_record_slots_off_by_default(self):
        sim = ServingSimulator(FCFSScheduler(_batch()), ConcatEngine(_batch()))
        res = sim.run(_workload())
        assert res.slots == []

    def test_slotted_pipeline_sets_engine_slot_size(self):
        batch = _batch()
        engine = SlottedConcatEngine(batch)
        sim = ServingSimulator(SlottedDASScheduler(batch, SchedulerConfig()), engine)
        m = sim.run(_workload()).metrics
        assert m.num_served > 0
        # Engine slot size was driven by the scheduler at least once.
        assert engine.slot_size <= batch.row_length


class TestSaturationBehaviour:
    def test_throughput_monotone_then_saturates(self):
        batch = _batch(rows=8, L=20)
        thr = []
        for rate in (20, 500):
            sim = ServingSimulator(DASScheduler(batch), ConcatEngine(batch))
            m = sim.run(_workload(rate=rate, horizon=4.0)).metrics
            thr.append(m.throughput)
        assert thr[1] > thr[0]

    def test_concat_outserves_naive_at_saturation(self):
        """Fig. 11's core claim at miniature scale."""
        batch = _batch(rows=8, L=20)
        wl = _workload(rate=800.0, horizon=4.0)
        m_naive = ServingSimulator(FCFSScheduler(batch), NaiveEngine(batch)).run(wl).metrics
        m_concat = ServingSimulator(FCFSScheduler(batch), ConcatEngine(batch)).run(wl).metrics
        assert m_concat.throughput > m_naive.throughput

    def test_das_scheduler_time_recorded(self):
        sim = ServingSimulator(DASScheduler(_batch()), ConcatEngine(_batch()))
        m = sim.run(_workload(rate=200.0)).metrics
        assert m.total_scheduler_time > 0
        assert m.scheduler_overhead_ratio > 0


class TestServingMetrics:
    def test_empty_metrics(self):
        m = ServingMetrics(horizon=10.0)
        assert m.total_utility == 0.0
        assert m.throughput == 0.0
        assert m.miss_rate == 0.0
        assert m.mean_latency == 0.0
        assert m.latency_percentile(99) == 0.0
        assert m.scheduler_overhead_ratio == 0.0
        assert m.mean_batch_time == 0.0

    def test_utility_and_miss_rate(self):
        m = ServingMetrics(horizon=10.0)
        m.served = make_requests([2, 4], start_id=0)
        m.expired = make_requests([10], start_id=10)
        assert m.total_utility == pytest.approx(0.75)
        assert m.miss_rate == pytest.approx(1 / 3)
        assert m.throughput == pytest.approx(0.2)

    def test_latency_stats(self):
        m = ServingMetrics(horizon=1.0)
        m.finish_times = {0: (0.0, 1.0), 1: (0.0, 3.0)}
        assert m.mean_latency == pytest.approx(2.0)
        assert m.latency_percentile(100) == pytest.approx(3.0)

    def test_padding_ratio(self):
        m = ServingMetrics()
        m.useful_tokens = 75
        m.padded_tokens = 25
        assert m.padding_ratio == pytest.approx(0.25)

    def test_summary_keys(self):
        m = ServingMetrics(horizon=1.0)
        s = m.summary()
        assert {
            "utility",
            "served",
            "expired",
            "throughput",
            "miss_rate",
            "mean_latency",
            "padding_ratio",
            "sched_overhead",
        } <= set(s)
