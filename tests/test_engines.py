"""Tests for the four inference engines."""

import numpy as np
import pytest

from repro.config import BatchConfig, ModelConfig
from repro.engine import (
    ConcatEngine,
    EngineMode,
    NaiveEngine,
    SlottedConcatEngine,
    TurboEngine,
)
from repro.types import make_requests


@pytest.fixture()
def batch():
    return BatchConfig(num_rows=4, row_length=20)


class TestNaiveEngine:
    def test_one_request_per_row(self, batch):
        eng = NaiveEngine(batch)
        reqs = make_requests([3, 7, 5], start_id=0)
        layouts, rejected = eng.plan(reqs)
        assert not rejected
        assert len(layouts) == 1
        assert all(row.num_requests == 1 for row in layouts[0].rows)
        assert layouts[0].effective_width == 7

    def test_chunks_by_batch_rows(self, batch):
        eng = NaiveEngine(batch)
        reqs = make_requests([2] * 10, start_id=0)
        layouts, _ = eng.plan(reqs)
        assert [l.num_rows for l in layouts] == [4, 4, 2]

    def test_arrival_order_not_length_order(self, batch):
        eng = NaiveEngine(batch)
        reqs = make_requests(
            [9, 2, 8, 3], arrivals=[0.0, 1.0, 2.0, 3.0], start_id=0
        )
        layouts, _ = eng.plan(list(reversed(reqs)))
        ids = [row.segments[0].request.request_id for row in layouts[0].rows]
        assert ids == [0, 1, 2, 3]

    def test_oversize_rejected(self, batch):
        eng = NaiveEngine(batch)
        reqs = make_requests([25, 5], start_id=0)
        layouts, rejected = eng.plan(reqs)
        assert [r.request_id for r in rejected] == [reqs[0].request_id]
        assert layouts[0].num_requests == 1

    def test_serve_accounts_padding(self, batch):
        eng = NaiveEngine(batch)
        result = eng.serve(make_requests([10, 2], start_id=0))
        assert result.num_served == 2
        assert result.stats.useful_tokens == 12
        assert result.stats.padded_tokens == 2 * 10 - 12
        assert result.latency > 0

    def test_serve_empty(self, batch):
        assert NaiveEngine(batch).serve([]).num_served == 0


class TestTurboEngine:
    def test_groups_are_length_sorted(self, batch):
        eng = TurboEngine(batch)
        reqs = make_requests([19, 2, 18, 3], start_id=0)
        layouts, _ = eng.plan(reqs)
        widths = [l.effective_width for l in layouts]
        assert widths == sorted(widths)
        for layout in layouts:
            assert all(row.num_requests == 1 for row in layout.rows)

    def test_splits_bimodal_lengths(self):
        from repro.engine.cost_model import GPUCostModel

        batch = BatchConfig(num_rows=64, row_length=100)
        # With small per-batch overheads (a fast GPU), the DP must split
        # the bimodal mix rather than pad the shorts to 95 tokens.
        cheap = GPUCostModel.calibrated().with_(
            fixed_per_batch=1e-3, attn_floor=1e-3
        )
        eng = TurboEngine(batch, cost_model=cheap)
        reqs = make_requests([3] * 30 + [95] * 30, start_id=0)
        layouts, _ = eng.plan(reqs)
        assert len(layouts) >= 2
        widths = [l.effective_width for l in layouts]
        assert widths[0] < widths[-1]

    def test_turbo_no_worse_than_naive_cost(self, batch):
        reqs = make_requests([2, 2, 2, 18], start_id=0)
        naive = NaiveEngine(batch).serve(list(reqs))
        turbo = TurboEngine(batch).serve(list(reqs))
        assert turbo.latency <= naive.latency + 1e-12
        assert turbo.num_served == naive.num_served == 4


class TestConcatEngine:
    def test_single_layout_with_concatenation(self, batch):
        eng = ConcatEngine(batch)
        reqs = make_requests([8, 8, 8, 4], start_id=0)
        layouts, rejected = eng.plan(reqs)
        assert len(layouts) == 1
        assert not rejected
        assert layouts[0].num_requests == 4
        assert any(row.num_requests > 1 for row in layouts[0].rows)

    def test_overflow_returned_not_dropped(self, batch):
        eng = ConcatEngine(batch)
        reqs = make_requests([20] * 5, start_id=0)  # capacity is 4 rows
        result = eng.serve(reqs)
        assert result.num_served == 4
        assert len(result.rejected) == 1

    def test_unknown_packing_rejected(self, batch):
        with pytest.raises(ValueError, match="packing"):
            ConcatEngine(batch, packing="magic")

    def test_concat_beats_naive_throughput_on_short_requests(self):
        batch = BatchConfig(num_rows=8, row_length=100)
        reqs = make_requests([5] * 100, start_id=0)
        naive = NaiveEngine(batch).serve(list(reqs))
        concat = ConcatEngine(batch).serve(list(reqs))
        assert concat.num_served == 100
        assert concat.throughput > naive.throughput


class TestSlottedEngine:
    def test_fixed_slot_count(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch, num_slots=4)
        assert eng.slot_size == 5
        layouts, _ = eng.plan(make_requests([5, 5, 5], start_id=0))
        assert layouts[0].scheme == "slotted"
        assert len(layouts[0].rows[0].slots) == 4

    def test_scheduler_slot_size_hook(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch)
        eng.set_slot_size(10)
        assert eng.slot_size == 10

    def test_hook_conflicts_with_fixed(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch, num_slots=2)
        with pytest.raises(ValueError, match="fixed"):
            eng.set_slot_size(5)

    def test_invalid_slot_size(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch)
        with pytest.raises(ValueError):
            eng.set_slot_size(0)
        with pytest.raises(ValueError):
            eng.set_slot_size(21)

    def test_default_degenerates_to_pure(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch)
        assert eng.slot_size == 20

    def test_requests_longer_than_slot_rejected(self):
        batch = BatchConfig(num_rows=2, row_length=20)
        eng = SlottedConcatEngine(batch, num_slots=4)  # slot size 5
        result = eng.serve(make_requests([6, 3], start_id=0))
        assert result.num_served == 1
        assert len(result.rejected) == 1

    def test_slotted_faster_than_pure_on_full_batch(self):
        # Compute-bound regime (cf. Fig. 14): batch 32, row length 400.
        batch = BatchConfig(num_rows=32, row_length=400)
        reqs = make_requests([100] * 128, start_id=0)
        pure = ConcatEngine(batch).serve(list(reqs))
        slotted = SlottedConcatEngine(batch, num_slots=4).serve(list(reqs))
        assert slotted.num_served == pure.num_served == 128
        assert slotted.latency < pure.latency


class TestMeasuredMode:
    def test_measured_mode_runs_real_model(self):
        batch = BatchConfig(num_rows=2, row_length=16)
        eng = ConcatEngine(
            batch, mode=EngineMode.MEASURED, model_config=ModelConfig.tiny()
        )
        reqs = eng.materialize_tokens(make_requests([4, 6, 3], start_id=0))
        result = eng.serve(reqs)
        assert result.num_served == 3
        assert result.latency > 0

    def test_materialize_preserves_existing_tokens(self):
        batch = BatchConfig(num_rows=2, row_length=16)
        eng = ConcatEngine(batch)
        req = make_requests([3], start_id=0)[0].with_tokens([5, 6, 7])
        out = eng.materialize_tokens([req])
        assert out[0].tokens == (5, 6, 7)
