"""Differential equivalence harness: fast serving core ≡ reference core.

The ISSUE 8 headline guarantee.  The fast path (indexed
``RequestQueue``, incremental ``DASScheduler.select``, memoized
``GPUCostModel``) must be **bit-identical** to the pre-ISSUE-8
implementations — kept verbatim as ``_ReferenceRequestQueue`` and
``DASScheduler(reference=True)`` — on every observable output.  The
proof obligation is discharged end to end: seeded randomized workloads
through all three serving loops × {DAS, Slotted DAS, FCFS} × seeds,
with and without faults + overload + durability, comparing
``ledger_digest`` and ``trace_digest`` (the same order-sensitive
digests the durability plane uses for its crash-consistency claim).
"""

import pytest

from repro.bench.serving import reference_serving_core
from repro.config import BatchConfig, SchedulerConfig
from repro.durability import (
    DurabilityConfig,
    DurabilityPlane,
    digest_diff,
    ledger_digest,
    trace_digest,
)
from repro.engine.concat import ConcatEngine
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.obs.recorder import Tracer
from repro.overload import OverloadConfig, OverloadController, QueueLimits
from repro.overload.controller import DegradationConfig
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=4, row_length=20)
HORIZON = 10.0
SEEDS = (0, 1, 2)


def _workload(seed, rate=40.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=8, spread=4, low=3, high=20
        ),
        deadlines=DeadlineModel(base_slack=4.0, jitter=0.5),
        horizon=HORIZON,
        seed=seed,
    ).generate()


def _engine(seed, faults):
    engine = ConcatEngine(BATCH)
    if not faults:
        return engine
    return FaultyEngine(
        engine,
        FaultPlan(
            FaultConfig(
                failure_rate=0.15,
                straggler_rate=0.1,
                oom_rate=0.05,
                crash_rate=0.03,
                downtime=0.2,
            ),
            seed=seed,
        ),
    )


def _overload():
    return OverloadController(
        OverloadConfig(limits=QueueLimits(max_requests=64))
    )


def _scheduler(kind, *, reference):
    cfg = SchedulerConfig()
    if kind == "das":
        return DASScheduler(BATCH, cfg, reference=reference)
    if kind == "slotted_das":
        return SlottedDASScheduler(BATCH, cfg, reference=reference)
    if kind == "fcfs":
        # FCFS has no fast/reference split of its own; its runs differ
        # only through the queue swap.
        return FCFSScheduler(BATCH)
    raise ValueError(kind)


def _run_simulator(kind, seed, *, reference, faults, overload, durability):
    tr = Tracer()
    sim = ServingSimulator(
        _scheduler(kind, reference=reference),
        _engine(seed, faults),
        trace=tr,
        overload=_overload() if overload else None,
        durability=DurabilityPlane(DurabilityConfig(checkpoint_every=3))
        if durability
        else None,
    )
    m = sim.run(_workload(seed), horizon=HORIZON).metrics
    return m, tr


def _run_cluster(kind, seed, *, reference, faults, overload, durability):
    tr = Tracer()
    sim = ClusterSimulator(
        _scheduler(kind, reference=reference),
        [_engine(seed * 10 + i, faults) for i in range(3)],
        trace=tr,
        overload=_overload() if overload else None,
        durability=DurabilityPlane(DurabilityConfig(checkpoint_every=3))
        if durability
        else None,
    )
    m = sim.run(_workload(seed), horizon=HORIZON).metrics
    return m, tr


def _run_continuous(kind, seed, *, reference, faults, overload, durability):
    # The continuous loop has no pluggable scheduler; its two admission
    # policies stand in for the scheduler axis (``fcfs`` exercises the
    # arrival view, ``utility`` the utility-sorted view).
    tr = Tracer()
    sim = ContinuousBatchingSimulator(
        BATCH,
        admission=kind,
        seed=seed,
        fault_plan=FaultPlan(
            FaultConfig(
                failure_rate=0.1, oom_rate=0.05, crash_rate=0.03, downtime=0.2
            ),
            seed=seed,
        )
        if faults
        else None,
        trace=tr,
        overload=_overload() if overload else None,
        durability=DurabilityPlane(DurabilityConfig(checkpoint_every=3))
        if durability
        else None,
    )
    m = sim.run(_workload(seed), horizon=HORIZON)
    return m, tr


def _digests(run, kind, seed, *, reference, faults, overload, durability):
    m, tr = run(
        kind,
        seed,
        reference=reference,
        faults=faults,
        overload=overload,
        durability=durability,
    )
    return ledger_digest(m), trace_digest(tr)


def _assert_equivalent(run, kind, seed, *, faults, overload, durability):
    fast = _digests(
        run,
        kind,
        seed,
        reference=False,
        faults=faults,
        overload=overload,
        durability=durability,
    )
    with reference_serving_core():
        ref = _digests(
            run,
            kind,
            seed,
            reference=True,
            faults=faults,
            overload=overload,
            durability=durability,
        )
    assert fast[0] == ref[0], (
        f"ledger digest diverged: {digest_diff(fast[0], ref[0])}"
    )
    assert fast[1] == ref[1], (
        f"trace digest diverged: {digest_diff(fast[1], ref[1])}"
    )


BATCH_LOOPS = {"simulator": _run_simulator, "cluster": _run_cluster}


class TestBatchLoops:
    """Both batch-level loops × all three schedulers × three seeds."""

    @pytest.mark.parametrize("loop", sorted(BATCH_LOOPS))
    @pytest.mark.parametrize("kind", ["das", "slotted_das", "fcfs"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain(self, loop, kind, seed):
        _assert_equivalent(
            BATCH_LOOPS[loop],
            kind,
            seed,
            faults=False,
            overload=False,
            durability=False,
        )

    @pytest.mark.parametrize("loop", sorted(BATCH_LOOPS))
    @pytest.mark.parametrize("kind", ["das", "slotted_das", "fcfs"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faults_overload_durability(self, loop, kind, seed):
        _assert_equivalent(
            BATCH_LOOPS[loop],
            kind,
            seed,
            faults=True,
            overload=True,
            durability=True,
        )


class TestContinuousLoop:
    """Iteration-level loop × both admission policies × three seeds."""

    @pytest.mark.parametrize("kind", ["fcfs", "utility"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain(self, kind, seed):
        _assert_equivalent(
            _run_continuous,
            kind,
            seed,
            faults=False,
            overload=False,
            durability=False,
        )

    @pytest.mark.parametrize("kind", ["fcfs", "utility"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faults_overload_durability(self, kind, seed):
        _assert_equivalent(
            _run_continuous,
            kind,
            seed,
            faults=True,
            overload=True,
            durability=True,
        )


class TestEtaQSettings:
    """The η/q knobs steer DAS's two mechanisms; sweep their corners."""

    @pytest.mark.parametrize("eta", [0.1, 0.9])
    @pytest.mark.parametrize("q", [0.1, 0.9])
    def test_eta_q_corners(self, eta, q):
        cfg = SchedulerConfig(eta=eta, q=q)

        def run(_kind, seed, *, reference, faults, overload, durability):
            tr = Tracer()
            sim = ServingSimulator(
                DASScheduler(BATCH, cfg, reference=reference),
                _engine(seed, faults),
                trace=tr,
                overload=_overload() if overload else None,
            )
            m = sim.run(_workload(seed), horizon=HORIZON).metrics
            return m, tr

        _assert_equivalent(
            run, "das", 0, faults=True, overload=True, durability=False
        )


class TestOverloadTransitions:
    """SHED/BROWNOUT hysteresis must fire identically on both cores.

    ``queue_delay`` is the degradation controller's primary signal, so
    the arrival-heap rewrite is exactly the kind of change that could
    perturb level transitions — pin them (satellite task)."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transition_log_identical(self, seed):
        def transitions(reference):
            ov = OverloadController(
                OverloadConfig(
                    limits=QueueLimits(max_requests=64),
                    degradation=DegradationConfig(),
                )
            )
            sim = ServingSimulator(
                DASScheduler(BATCH, reference=reference),
                ConcatEngine(BATCH),
                overload=ov,
            )
            sim.run(_workload(seed, rate=120.0), horizon=HORIZON)
            return list(ov.transitions)

        fast = transitions(False)
        with reference_serving_core():
            ref = transitions(True)
        assert fast == ref
        if seed == 0:
            # The overload workload must actually overload — otherwise
            # this test pins nothing.
            assert fast, "expected at least one SHED/BROWNOUT transition"
