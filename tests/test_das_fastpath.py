"""Differential tests for the incremental DAS fast path.

Three layers (ISSUE 8 satellites):

1. ``das_row_parts`` (prefix-sum + binary-search) must equal
   ``_reference_das_row_parts`` (the original loop) on adversarial
   inputs — all-too-long, exact fit, single request, and the η/q
   boundary values 0 and 1, which ``SchedulerConfig`` rejects but the
   raw function must still handle.
2. ``DASScheduler.select`` with the incremental sort must equal a
   from-scratch re-sort select (``reference=True``) across 200 seeded
   queue states, both on plain lists and through the queue's
   ``WaitingView`` (the maintained-index path).
3. A pinned multi-row regression: removing the redundant per-row sort
   must not shift a single request between rows.
"""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.rng import ensure_rng
from repro.scheduling.das import (
    DASScheduler,
    _reference_das_row_parts,
    das_row_parts,
)
from repro.scheduling.queue import RequestQueue
from repro.types import Request


def _ids(requests):
    return [r.request_id for r in requests]


def _by_utility(requests):
    return sorted(requests, key=lambda r: (-r.utility, r.request_id))


def _mk(i, length, *, deadline=100.0, arrival=0.0, weight=1.0):
    return Request(
        request_id=i,
        length=length,
        arrival=arrival,
        deadline=deadline,
        weight=weight,
    )


def _assert_parts_equal(candidates, row_length, eta, q):
    fast = das_row_parts(candidates, row_length, eta, q)
    ref = _reference_das_row_parts(candidates, row_length, eta, q)
    assert [_ids(part) for part in fast] == [_ids(part) for part in ref], (
        f"row_parts diverged at L={row_length} eta={eta} q={q}"
    )


ETA_Q_GRID = [0.0, 0.25, 0.5, 1.0]


class TestRowPartsAdversarial:
    @pytest.mark.parametrize("eta", ETA_Q_GRID)
    @pytest.mark.parametrize("q", ETA_Q_GRID)
    def test_all_too_long(self, eta, q):
        # Even the shortest candidate exceeds the row: s == 0 path.
        cand = _by_utility([_mk(i, 20 + i) for i in range(5)])
        _assert_parts_equal(cand, 10, eta, q)
        n_u, n_d, rest = das_row_parts(cand, 10, eta, q)
        assert n_u == [] and n_d == [] and _ids(rest) == _ids(cand)

    @pytest.mark.parametrize("eta", ETA_Q_GRID)
    @pytest.mark.parametrize("q", ETA_Q_GRID)
    def test_exact_fit(self, eta, q):
        # Prefix sums hit the row length exactly (bisect boundary).
        cand = _by_utility([_mk(0, 2), _mk(1, 3), _mk(2, 5), _mk(3, 6)])
        _assert_parts_equal(cand, 10, eta, q)
        _assert_parts_equal(cand, 5, eta, q)
        _assert_parts_equal(cand, 16, eta, q)

    @pytest.mark.parametrize("eta", ETA_Q_GRID)
    @pytest.mark.parametrize("q", ETA_Q_GRID)
    def test_single_request(self, eta, q):
        _assert_parts_equal([_mk(0, 4)], 10, eta, q)
        _assert_parts_equal([_mk(0, 10)], 10, eta, q)
        _assert_parts_equal([_mk(0, 11)], 10, eta, q)

    def test_empty(self):
        assert das_row_parts([], 10, 0.5, 0.5) == ([], [], [])
        assert _reference_das_row_parts([], 10, 0.5, 0.5) == ([], [], [])

    def test_eta_zero_keeps_one_dominant(self):
        # η=0 → p = max(1, 0): the dominant set is exactly one request.
        cand = _by_utility([_mk(i, 2 + i) for i in range(6)])
        n_u, _, _ = das_row_parts(cand, 12, 0.0, 0.5)
        assert _ids(n_u) == [_ids(cand)[0]]
        _assert_parts_equal(cand, 12, 0.0, 0.5)

    def test_q_zero_admits_all_to_deadline_set(self):
        # q=0 → threshold 0: every leftover utility qualifies for N^D.
        cand = _by_utility([_mk(i, 2 + i, deadline=10.0 - i) for i in range(6)])
        _, n_d, rest = das_row_parts(cand, 12, 0.5, 0.0)
        assert rest == []
        # And N^D comes back earliest-deadline-first.
        deadlines = [r.deadline for r in n_d]
        assert deadlines == sorted(deadlines)
        _assert_parts_equal(cand, 12, 0.5, 0.0)

    def test_q_one_threshold_ties(self):
        # q=1 → threshold = v̄ exactly; equal-utility candidates sit on
        # the boundary and must fall on the same side in both paths.
        cand = _by_utility([_mk(i, 4, deadline=5.0 + i) for i in range(8)])
        _assert_parts_equal(cand, 8, 1.0, 1.0)
        n_u, n_d, rest = das_row_parts(cand, 8, 1.0, 1.0)
        # All utilities equal v̄, so ≥ threshold admits everyone left.
        assert rest == []
        assert len(n_u) + len(n_d) == 8

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized(self, seed):
        rng = ensure_rng(seed)
        for _ in range(20):
            n = int(rng.integers(0, 40))
            cand = _by_utility(
                [
                    _mk(
                        i,
                        int(rng.integers(1, 30)),
                        deadline=float(rng.uniform(0.1, 20.0)),
                        weight=float(rng.choice([0.5, 1.0, 1.0, 2.0])),
                    )
                    for i in range(n)
                ]
            )
            L = int(rng.choice([4, 8, 16, 32]))
            eta = float(rng.choice([0.0, 0.1, 0.5, 0.9, 1.0]))
            q = float(rng.choice([0.0, 0.1, 0.5, 0.9, 1.0]))
            _assert_parts_equal(cand, L, eta, q)


def _random_state(rng, n):
    reqs = []
    for i in range(n):
        arrival = float(rng.uniform(0.0, 5.0))
        reqs.append(
            Request(
                request_id=i,
                length=int(rng.integers(1, 30)),
                arrival=arrival,
                deadline=arrival + float(rng.uniform(0.1, 20.0)),
                weight=float(rng.choice([0.5, 1.0, 1.0, 2.0])),
            )
        )
    return reqs


def _assert_select_equal(fast_sched, ref_sched, waiting, now=10.0):
    df = fast_sched.select(waiting, now)
    dr = ref_sched.select(waiting, now)
    assert [_ids(row) for row in df.rows] == [_ids(row) for row in dr.rows]
    assert df.info == dr.info
    fp = [(_ids(u), _ids(d)) for u, d in fast_sched.last_parts]
    rp = [(_ids(u), _ids(d)) for u, d in ref_sched.last_parts]
    assert fp == rp


class TestIncrementalSelect:
    """Fast select ≡ from-scratch re-sort select, 200 seeded states."""

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_states_plain_list(self, seed):
        rng = ensure_rng(seed)
        for _ in range(50):
            n = int(rng.integers(0, 80))
            batch = BatchConfig(
                num_rows=int(rng.integers(1, 8)),
                row_length=int(rng.choice([8, 16, 20, 32])),
            )
            cfg = SchedulerConfig(
                eta=float(rng.choice([0.1, 0.5, 0.9])),
                q=float(rng.choice([0.1, 0.5, 0.9])),
            )
            fast = DASScheduler(batch, cfg, record_parts=True)
            ref = DASScheduler(batch, cfg, record_parts=True, reference=True)
            _assert_select_equal(fast, ref, _random_state(rng, n))

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_states_waiting_view(self, seed):
        """Same differential through ``RequestQueue.waiting`` — the
        maintained ``by_utility`` index feeds the fast path here."""
        rng = ensure_rng(100 + seed)
        for _ in range(15):
            n = int(rng.integers(1, 60))
            queue = RequestQueue()
            for r in _random_state(rng, n):
                queue.add(r)
            now = float(rng.uniform(2.0, 8.0))
            batch = BatchConfig(num_rows=4, row_length=20)
            fast = DASScheduler(batch, record_parts=True)
            ref = DASScheduler(batch, record_parts=True, reference=True)
            _assert_select_equal(fast, ref, queue.waiting(now), now)


class TestMultiRowRegressionPin:
    """Satellite fix: the per-row re-sort was removed; pin the output.

    The values were produced by the pre-removal implementation (and are
    re-checked against ``reference=True`` here), so any future drift in
    either path fails loudly.
    """

    LENGTHS = [3, 7, 2, 9, 4, 6, 2, 8, 5, 3, 10, 4]
    EXPECTED_ROWS = [[2, 6, 0, 11, 4], [9, 5, 8], [1, 7]]
    EXPECTED_PARTS = [([2, 6], [0, 11, 4]), ([9], [5, 8]), ([1], [7])]

    def _requests(self):
        return [
            Request(
                request_id=i,
                length=length,
                arrival=0.0,
                deadline=2.0 + (i % 5),
            )
            for i, length in enumerate(self.LENGTHS)
        ]

    @pytest.mark.parametrize("reference", [False, True])
    def test_pinned_selection(self, reference):
        sched = DASScheduler(
            BatchConfig(num_rows=3, row_length=16),
            SchedulerConfig(),
            record_parts=True,
            reference=reference,
        )
        decision = sched.select(self._requests())
        assert [_ids(row) for row in decision.rows] == self.EXPECTED_ROWS
        assert [
            (_ids(u), _ids(d)) for u, d in sched.last_parts
        ] == self.EXPECTED_PARTS
        assert decision.info["num_utility_dominant"] == 4
        assert decision.info["num_deadline_aware"] == 6
