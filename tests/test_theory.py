"""Empirical check of Theorem 5.1: DAS is ηq/(ηq+1)-competitive.

We replay DAS online over fixed time slots on random small instances,
compute the exact offline optimum (same slot grid), and assert

    ALG ≥ (ηq / (ηq + 1)) · OPT.

With the paper's η = q = ½ the bound is ⅕ — deliberately loose, so the
test also records that DAS does far better in practice (≥ ~60% of OPT on
these instances), which we report in EXPERIMENTS.md.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.scheduling.offline import exact_opt, lp_upper_bound
from repro.types import Request


def run_das_online(requests, slot_times, batch: BatchConfig, cfg: SchedulerConfig):
    """Replay DAS over a fixed slot grid; returns total utility."""
    sched = DASScheduler(batch, cfg)
    served: set[int] = set()
    total = 0.0
    for t in slot_times:
        waiting = [
            r
            for r in requests
            if r.request_id not in served and r.is_available(t)
        ]
        decision = sched.select(waiting, t)
        decision.validate(batch)
        for r in decision.selected():
            served.add(r.request_id)
            total += r.utility
    return total


def random_instance(seed, n_max=10, t_slots=3):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, n_max + 1))
    reqs = []
    for i in range(n):
        arrival = float(rng.uniform(0, t_slots - 0.5))
        deadline = arrival + float(rng.uniform(0.5, t_slots))
        reqs.append(
            Request(
                request_id=i,
                length=int(rng.integers(1, 9)),
                arrival=arrival,
                deadline=deadline,
            )
        )
    slots = [float(t) + 0.25 for t in range(t_slots)]
    return reqs, slots


class TestCompetitiveRatio:
    @pytest.mark.parametrize("seed", range(25))
    def test_das_meets_theorem_bound(self, seed):
        cfg = SchedulerConfig(eta=0.5, q=0.5)
        batch = BatchConfig(num_rows=2, row_length=10)
        reqs, slots = random_instance(seed)
        alg = run_das_online(reqs, slots, batch, cfg)
        opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
        if opt == 0.0:
            assert alg == 0.0
        else:
            assert alg >= cfg.competitive_ratio * opt - 1e-9

    @pytest.mark.parametrize("eta,q", [(0.3, 0.7), (0.7, 0.3), (0.5, 0.5)])
    def test_bound_holds_across_eta_q(self, eta, q):
        cfg = SchedulerConfig(eta=eta, q=q)
        batch = BatchConfig(num_rows=2, row_length=12)
        for seed in range(10):
            reqs, slots = random_instance(seed + 1000)
            alg = run_das_online(reqs, slots, batch, cfg)
            opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
            assert alg >= cfg.competitive_ratio * opt - 1e-9

    def test_das_much_better_than_bound_in_practice(self):
        """Average empirical ratio should comfortably exceed the ⅕ bound."""
        cfg = SchedulerConfig()
        batch = BatchConfig(num_rows=2, row_length=10)
        ratios = []
        for seed in range(30):
            reqs, slots = random_instance(seed + 5000)
            alg = run_das_online(reqs, slots, batch, cfg)
            opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
            if opt > 0:
                ratios.append(alg / opt)
        assert np.mean(ratios) > 0.6

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_alg_never_exceeds_opt(self, seed):
        """Sanity: the online algorithm cannot beat the offline optimum."""
        cfg = SchedulerConfig()
        batch = BatchConfig(num_rows=2, row_length=10)
        reqs, slots = random_instance(seed, n_max=7)
        alg = run_das_online(reqs, slots, batch, cfg)
        opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
        assert alg <= opt + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_bound_via_lp(self, seed):
        """The chain ALG ≥ α·OPT with LP ≥ OPT: check ALG vs exact OPT and
        that the LP really upper-bounds it (Step 2 of the proof)."""
        cfg = SchedulerConfig()
        batch = BatchConfig(num_rows=2, row_length=10)
        reqs, slots = random_instance(seed, n_max=7)
        alg = run_das_online(reqs, slots, batch, cfg)
        opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
        lp = lp_upper_bound(reqs, slots, batch.num_rows, batch.row_length)
        assert lp >= opt - 1e-9
        assert alg >= cfg.competitive_ratio * opt - 1e-9
