"""Tests for checkpoint serialization and serving traces."""

import json

import numpy as np
import pytest

from repro.config import BatchConfig, ModelConfig
from repro.engine.concat import ConcatEngine
from repro.model.params import init_seq2seq
from repro.model.seq2seq import Seq2SeqModel
from repro.model.serialization import load_params, save_params
from repro.scheduling.baselines import FCFSScheduler
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import slot_records, timeline, to_jsonl
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


class TestSerialization:
    def test_roundtrip_bit_exact(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=9)
        path = tmp_path / "ckpt.npz"
        save_params(params, path)
        loaded = load_params(path)
        assert loaded.config == tiny_config
        np.testing.assert_array_equal(loaded.embedding, params.embedding)
        np.testing.assert_array_equal(
            loaded.encoder_layers[1].ffn.w1, params.encoder_layers[1].ffn.w1
        )
        np.testing.assert_array_equal(
            loaded.decoder_layers[0].cross_attn.w_k,
            params.decoder_layers[0].cross_attn.w_k,
        )

    def test_loaded_model_produces_identical_outputs(
        self, tmp_path, tiny_config, tokenized_requests
    ):
        from repro.core.packing import pack_first_fit

        original = Seq2SeqModel(tiny_config, seed=4)
        path = tmp_path / "model.npz"
        save_params(original.params, path)
        restored = Seq2SeqModel(tiny_config, params=load_params(path))

        reqs = tokenized_requests([5, 3, 6])
        layout = pack_first_fit(reqs, num_rows=1, row_length=16).layout
        a = original.greedy_decode(layout, max_new_tokens=4)
        b = restored.greedy_decode(layout, max_new_tokens=4)
        assert a.outputs == b.outputs

    def test_suffix_added_on_load(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=0)
        path = tmp_path / "weights.npz"
        save_params(params, path)
        loaded = load_params(tmp_path / "weights")  # no suffix
        assert loaded.config == tiny_config

    def test_num_parameters_preserved(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=1)
        save_params(params, tmp_path / "p.npz")
        assert load_params(tmp_path / "p.npz").num_parameters() == params.num_parameters()


def _run_recorded():
    batch = BatchConfig(num_rows=4, row_length=20)
    wl = WorkloadGenerator(
        rate=150.0,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=2.0),
        horizon=2.0,
        seed=0,
    )
    sim = ServingSimulator(
        FCFSScheduler(batch), ConcatEngine(batch), record_slots=True
    )
    return sim.run(wl), wl.generate()


class TestTrace:
    def test_slot_records_structure(self):
        result, _ = _run_recorded()
        recs = slot_records(result)
        assert recs, "expected recorded slots"
        for rec in recs:
            assert rec["latency"] > 0
            assert rec["num_served"] <= rec["num_selected"]
            assert 0.0 <= rec["utilisation"] <= 1.0
        starts = [r["t_start"] for r in recs]
        assert starts == sorted(starts)

    def test_timeline_conservation(self):
        result, requests = _run_recorded()
        tl = timeline(result, requests, num_points=20)
        assert len(tl["t"]) == 20
        m = result.metrics
        assert tl["served_cum"][-1] <= m.num_served + 1e-9
        # Queue depth is never negative and starts at zero.
        assert tl["queue_depth"][0] == 0.0
        assert all(q >= 0 for q in tl["queue_depth"])

    def test_timeline_validates_points(self):
        result, requests = _run_recorded()
        with pytest.raises(ValueError):
            timeline(result, requests, num_points=1)

    def test_jsonl_parses(self):
        result, _ = _run_recorded()
        lines = to_jsonl(result).splitlines()
        assert lines
        for line in lines:
            rec = json.loads(line)
            assert "t_start" in rec
