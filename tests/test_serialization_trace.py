"""Tests for checkpoint serialization and serving traces."""

import json

import numpy as np
import pytest

from repro.config import BatchConfig, ModelConfig
from repro.engine.concat import ConcatEngine
from repro.model.params import init_seq2seq
from repro.model.seq2seq import Seq2SeqModel
from repro.model.serialization import load_params, save_params
from repro.scheduling.baselines import FCFSScheduler
from repro.serving.simulator import ServingSimulator
from repro.serving.trace import slot_records, timeline, to_jsonl
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


class TestSerialization:
    def test_roundtrip_bit_exact(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=9)
        path = tmp_path / "ckpt.npz"
        save_params(params, path)
        loaded = load_params(path)
        assert loaded.config == tiny_config
        np.testing.assert_array_equal(loaded.embedding, params.embedding)
        np.testing.assert_array_equal(
            loaded.encoder_layers[1].ffn.w1, params.encoder_layers[1].ffn.w1
        )
        np.testing.assert_array_equal(
            loaded.decoder_layers[0].cross_attn.w_k,
            params.decoder_layers[0].cross_attn.w_k,
        )

    def test_loaded_model_produces_identical_outputs(
        self, tmp_path, tiny_config, tokenized_requests
    ):
        from repro.core.packing import pack_first_fit

        original = Seq2SeqModel(tiny_config, seed=4)
        path = tmp_path / "model.npz"
        save_params(original.params, path)
        restored = Seq2SeqModel(tiny_config, params=load_params(path))

        reqs = tokenized_requests([5, 3, 6])
        layout = pack_first_fit(reqs, num_rows=1, row_length=16).layout
        a = original.greedy_decode(layout, max_new_tokens=4)
        b = restored.greedy_decode(layout, max_new_tokens=4)
        assert a.outputs == b.outputs

    def test_suffix_added_on_load(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=0)
        path = tmp_path / "weights.npz"
        save_params(params, path)
        loaded = load_params(tmp_path / "weights")  # no suffix
        assert loaded.config == tiny_config

    def test_num_parameters_preserved(self, tmp_path, tiny_config):
        params = init_seq2seq(tiny_config, seed=1)
        save_params(params, tmp_path / "p.npz")
        assert load_params(tmp_path / "p.npz").num_parameters() == params.num_parameters()


def _run_recorded():
    batch = BatchConfig(num_rows=4, row_length=20)
    wl = WorkloadGenerator(
        rate=150.0,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=2.0),
        horizon=2.0,
        seed=0,
    )
    sim = ServingSimulator(
        FCFSScheduler(batch), ConcatEngine(batch), record_slots=True
    )
    return sim.run(wl), wl.generate()


class TestTrace:
    def test_slot_records_structure(self):
        result, _ = _run_recorded()
        recs = slot_records(result)
        assert recs, "expected recorded slots"
        for rec in recs:
            assert rec["latency"] > 0
            assert rec["num_served"] <= rec["num_selected"]
            assert 0.0 <= rec["utilisation"] <= 1.0
        starts = [r["t_start"] for r in recs]
        assert starts == sorted(starts)

    def test_timeline_conservation(self):
        result, requests = _run_recorded()
        tl = timeline(result, requests, num_points=20)
        assert len(tl["t"]) == 20
        m = result.metrics
        assert tl["served_cum"][-1] <= m.num_served + 1e-9
        # Queue depth is never negative and starts at zero.
        assert tl["queue_depth"][0] == 0.0
        assert all(q >= 0 for q in tl["queue_depth"])

    def test_timeline_validates_points(self):
        result, requests = _run_recorded()
        with pytest.raises(ValueError):
            timeline(result, requests, num_points=1)

    def test_jsonl_parses(self):
        result, _ = _run_recorded()
        lines = to_jsonl(result).splitlines()
        assert lines
        for line in lines:
            rec = json.loads(line)
            assert "t_start" in rec


def _run_recorded_with_retries(seed=0):
    """Overloaded + OOM-faulted run: requests get re-selected."""
    from repro.faults.engine import FaultyEngine
    from repro.faults.plan import FaultConfig, FaultPlan

    batch = BatchConfig(num_rows=2, row_length=20)
    wl = WorkloadGenerator(
        rate=300.0,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=4.0),
        horizon=2.0,
        seed=seed,
    )
    plan = FaultPlan(FaultConfig(oom_rate=0.5, oom_threshold=0.3), seed=seed)
    sim = ServingSimulator(
        FCFSScheduler(batch),
        FaultyEngine(ConcatEngine(batch), plan),
        record_slots=True,
    )
    return sim.run(wl), wl.generate()


class TestTraceRequeueDedupe:
    """Regression: requeued/re-selected requests must not double-count.

    A request the engine could not serve (planner rejection, OOM
    split-retry) stays in the wait queue and is selected again in a
    later slot; ``slot_records`` used to count it once per attempt.
    """

    def test_first_selected_counts_each_request_once(self):
        result, requests = _run_recorded_with_retries()
        recs = slot_records(result)
        assert recs
        # The overloaded + OOM-faulted run must actually exercise the
        # retry path, otherwise this test proves nothing.
        assert any(r["num_retry_selected"] > 0 for r in recs)
        assert all(
            r["num_first_selected"] + r["num_retry_selected"]
            == r["num_selected"]
            for r in recs
        )
        # Dedupe on request id: first-selections count every request at
        # most once, while raw selections overcount by the retries.
        first = sum(r["num_first_selected"] for r in recs)
        raw = sum(r["num_selected"] for r in recs)
        assert first <= len(requests)
        assert raw > first

    def test_timeline_dedupes_terminal_ledgers(self):
        result, requests = _run_recorded_with_retries()
        m = result.metrics
        # Simulate the cluster loop's optimistic failure detection
        # recording the same casualty twice.
        if m.expired:
            m.expired.append(m.expired[0])
        tl = timeline(result, requests, num_points=30)
        assert all(q >= 0 for q in tl["queue_depth"])
        unique_expired = len({r.request_id for r in m.expired})
        assert tl["expired_cum"][-1] <= unique_expired

    def test_timeline_accounts_for_abandoned(self):
        result, requests = _run_recorded_with_retries()
        m = result.metrics
        tl = timeline(result, requests, num_points=30)
        # Every request reached a terminal state — abandoned requests
        # included (the old arrived − served − expired formula left
        # them resident forever).  Requests whose final batch finishes
        # after the horizon are the only ones a sample at t=horizon may
        # still see as outstanding.
        late = sum(1 for _, f in m.finish_times.values() if f > m.horizon)
        total = (
            tl["served_cum"][-1]
            + tl["expired_cum"][-1]
            + len({r.request_id for r in m.abandoned})
        )
        assert total + late == len(requests)
        assert tl["queue_depth"][-1] <= late
