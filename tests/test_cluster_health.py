"""Tests for the tail-tolerance plane (ISSUE 9).

Covers, in order: the gray-failure scoreboard's hysteresis ladder
(HEALTHY → SUSPECT → QUARANTINED → probed recovery), health-scored
placement with drains and deterministic tie-breaking, hedged dispatch
with exactly-once terminal accounting, inertness of the default
configuration (bit-identical digests with the plane absent, inert, or
unconstructed), straggler coverage across all three serving loops, and
crash/warm-restart replay of hedge records to the same digests.
"""

import math

import pytest

from repro.cluster_health import (
    DrainWindow,
    EngineScoreboard,
    HealthConfig,
    HealthState,
    HedgeConfig,
    LatencyWindow,
    TailToleranceConfig,
    TailTolerancePlane,
)
from repro.config import BatchConfig
from repro.durability import (
    DurabilityConfig,
    DurabilityPlane,
    digest_diff,
    ledger_digest,
    trace_digest,
)
from repro.engine.concat import ConcatEngine
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.faults.plan import SchedulerCrash, SchedulerCrashed
from repro.obs.recorder import Tracer
from repro.scheduling.das import DASScheduler
from repro.scheduling.baselines import FCFSScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=4, row_length=20)
HORIZON = 12.0


def _workload(seed=0, rate=40.0, horizon=HORIZON):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=8, spread=4, low=3, high=20
        ),
        deadlines=DeadlineModel(base_slack=4.0, jitter=0.5),
        horizon=horizon,
        seed=seed,
    ).generate()


def _engines(seed=0, straggler_on=0, n=3, multiplier=(4.0, 8.0)):
    """``n`` engines; engine ``straggler_on`` gets a straggler-heavy
    plan, the rest run clean (None disables the straggler)."""
    out = []
    for i in range(n):
        if i == straggler_on:
            cfg = FaultConfig(
                straggler_rate=0.9, straggler_multiplier=multiplier
            )
        else:
            cfg = FaultConfig()
        out.append(
            FaultyEngine(ConcatEngine(BATCH), FaultPlan(cfg, seed=seed * 10 + i))
        )
    return out


def _plane():
    """The plane configuration the integration tests share: fast-warming
    scoreboard, aggressive hedging (any engine past 1.5x the healthy
    p90 gets a duplicate)."""
    return TailTolerancePlane(
        TailToleranceConfig(
            health=HealthConfig(window=8, min_window=2),
            hedge=HedgeConfig(
                quantile=0.9,
                multiplier=1.5,
                min_observations=6,
                only_suspect=False,
            ),
        )
    )


def _run_cluster(requests, *, seed=0, health=None, durability=None,
                 resume=None, scheduler=None, straggler_on=0):
    tr = Tracer()
    sim = ClusterSimulator(
        scheduler or DASScheduler(BATCH),
        _engines(seed, straggler_on=straggler_on),
        trace=tr,
        health=health,
        durability=durability,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume).metrics
    return m, tr


# --------------------------------------------------------------------- #
# Scoreboard units: hysteresis ladder and probed recovery.
# --------------------------------------------------------------------- #


class TestScoreboard:
    def test_healthy_until_warmed(self):
        b = EngineScoreboard(HealthConfig(min_window=4), 0)
        assert b.score == 1.0 and b.state is HealthState.HEALTHY
        for i in range(3):
            b.observe(float(i), 0.0)  # three failures, still warming
        assert b.state is HealthState.HEALTHY

    def test_demotion_and_quarantine(self):
        cfg = HealthConfig(window=8, min_window=2)
        b = EngineScoreboard(cfg, 0)
        b.observe(0.0, 1.0)
        assert not b.observe(0.1, 1.0)
        for t in range(2, 12):
            b.observe(float(t), 0.0)
        assert b.state is HealthState.QUARANTINED
        ladder = [tr.new for tr in b.transitions]
        assert ladder == ["suspect", "quarantined"]
        assert b.probe_at > 0.0

    def test_probed_recovery_clears_window(self):
        cfg = HealthConfig(window=8, min_window=2, probe_successes=2)
        b = EngineScoreboard(cfg, 0)
        for t in range(8):
            b.observe(float(t), 0.0)
        assert b.state is HealthState.QUARANTINED
        # One good probe is not enough; two consecutive are.
        b.observe(10.0, 1.0)
        assert b.state is HealthState.QUARANTINED
        b.observe(11.0, 1.0)
        assert b.state is HealthState.SUSPECT
        assert len(b.window) == 0  # fresh start, old failures forgotten
        # A failed probe resets the recovery ladder.
        b2 = EngineScoreboard(cfg, 1)
        for t in range(8):
            b2.observe(float(t), 0.0)
        b2.observe(10.0, 1.0)
        b2.observe(11.0, 0.0)  # relapse
        b2.observe(12.0, 1.0)
        assert b2.state is HealthState.QUARANTINED  # ladder restarted

    def test_promotion_back_to_healthy(self):
        cfg = HealthConfig(window=4, min_window=2)
        b = EngineScoreboard(cfg, 0)
        for t in range(4):
            b.observe(float(t), 0.5)  # slow: suspect, not quarantined
        assert b.state is HealthState.SUSPECT
        for t in range(4, 10):
            b.observe(float(t), 1.0)
        assert b.state is HealthState.HEALTHY

    def test_credit_shape(self):
        cfg = HealthConfig(slow_ratio=2.0)
        assert cfg.credit(ok=True, ratio=1.0) == 1.0
        assert cfg.credit(ok=True, ratio=4.0) == pytest.approx(0.5)
        assert cfg.credit(ok=False) == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(suspect_score=0.9, healthy_score=0.8)
        with pytest.raises(ValueError):
            HealthConfig(quarantine_score=0.7, suspect_score=0.6)
        with pytest.raises(ValueError):
            HealthConfig(slow_ratio=1.0)
        with pytest.raises(ValueError):
            HealthConfig(window=4, min_window=8)


class TestLatencyWindow:
    def test_nearest_rank_quantile(self):
        w = LatencyWindow(8)
        for v in [1.0, 2.0, 3.0, 4.0]:
            w.add(v)
        assert w.quantile(0.5) == 2.0
        assert w.quantile(0.9) == 4.0
        assert w.quantile(0.01) == 1.0

    def test_hedge_config_validation(self):
        with pytest.raises(ValueError):
            HedgeConfig(quantile=1.0)
        with pytest.raises(ValueError):
            HedgeConfig(multiplier=0.0)
        with pytest.raises(ValueError):
            HedgeConfig(window=4, min_observations=8)


# --------------------------------------------------------------------- #
# Satellite 1: deterministic ordering at equal idle timestamps.
# --------------------------------------------------------------------- #


class TestDeterministicOrdering:
    def test_same_timestamp_pops_in_engine_id_order(self):
        """All engines start idle at t=0; with the plane off, the heap
        tiebreak must hand them to the scheduler in engine-id order."""
        m, tr = _run_cluster(_workload(0, rate=80.0))
        first = [d.attrs["engine"] for d in tr.decisions[:3]]
        assert first == [0, 1, 2]

    def test_placement_tiebreak_is_reproducible(self):
        """Equal health scores at equal timestamps: the dedicated RNG
        stream makes the placement — and hence the whole run —
        deterministic across fresh plane instances."""
        req = _workload(0)
        a = _run_cluster(req, health=_plane())
        b = _run_cluster(req, health=_plane())
        assert ledger_digest(a[0]) == ledger_digest(b[0])
        assert trace_digest(a[1]) == trace_digest(b[1])


# --------------------------------------------------------------------- #
# Inert by default: no plane, disabled plane and inert-config plane are
# bit-identical, per scheduler and seed.
# --------------------------------------------------------------------- #


class TestInertByDefault:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("sched", ["das", "fcfs"])
    def test_inert_plane_is_bit_identical(self, seed, sched):
        scheduler = (
            DASScheduler(BATCH) if sched == "das" else FCFSScheduler(BATCH)
        )
        req = _workload(seed)
        ref = _run_cluster(req, seed=seed, scheduler=scheduler)
        for plane in (TailTolerancePlane(), TailTolerancePlane(TailToleranceConfig())):
            assert plane.config.inert and not plane.enabled
            scheduler2 = (
                DASScheduler(BATCH) if sched == "das" else FCFSScheduler(BATCH)
            )
            m, tr = _run_cluster(
                req, seed=seed, health=plane, scheduler=scheduler2
            )
            led, ref_led = ledger_digest(m), ledger_digest(ref[0])
            assert led == ref_led, "; ".join(digest_diff(led, ref_led)[:5])
            assert trace_digest(tr) == trace_digest(ref[1])
            assert m.hedges == 0 and m.hedge_wins == 0


# --------------------------------------------------------------------- #
# Health-scored placement: drains and quarantine starve an engine of
# regular dispatches; re-admission restores it.
# --------------------------------------------------------------------- #


class TestPlacement:
    def test_drain_window_blocks_dispatch(self):
        """Engine 1 drained for [0, 6): no decision lands on it before
        t=6, and it serves again after re-admission."""
        plane = TailTolerancePlane(
            TailToleranceConfig(
                health=HealthConfig(), drains=(DrainWindow(1, 0.0, 6.0),)
            )
        )
        m, tr = _run_cluster(_workload(0, rate=80.0), health=plane,
                             straggler_on=-1)
        before = [d for d in tr.decisions if d.t < 6.0]
        after = [d for d in tr.decisions if d.t >= 6.0]
        assert before and after
        assert all(d.attrs["engine"] != 1 for d in before)
        assert any(d.attrs["engine"] == 1 for d in after)
        m.assert_conservation()
        tr.reconcile(m)

    def test_rolling_restart_under_chaos(self):
        """Drain each engine in turn (rolling restart) while faults are
        firing: work drains to the survivors, invariants hold, and
        every engine serves outside its own drain window."""
        drains = (
            DrainWindow(0, 0.0, 3.0),
            DrainWindow(1, 3.0, 6.0),
            DrainWindow(2, 6.0, 9.0),
        )
        plane = TailTolerancePlane(
            TailToleranceConfig(health=HealthConfig(), drains=drains)
        )
        m, tr = _run_cluster(_workload(1, rate=80.0), seed=1, health=plane)
        for w in drains:
            hits = [
                d
                for d in tr.decisions
                if d.attrs["engine"] == w.engine and w.start <= d.t < w.end
            ]
            assert not hits, f"engine {w.engine} dispatched mid-drain"
            assert any(d.attrs["engine"] == w.engine for d in tr.decisions)
        m.assert_conservation()
        tr.reconcile(m)

    def test_manual_drain_and_readmit(self):
        plane = TailTolerancePlane(TailToleranceConfig(health=HealthConfig()))
        plane.begin_run()
        plane.drain(1, until=5.0)
        assert plane.drained_until(1, 2.0) == 5.0
        assert plane.drained_until(1, 6.0) is None
        plane.drain(2)
        assert plane.drained_until(2, 100.0) == math.inf
        plane.readmit(2)
        assert plane.drained_until(2, 100.0) is None

    def test_quarantined_engine_starved_except_probes(self):
        """An always-failing engine is quarantined; after the ladder
        bottoms out it only sees probe dispatches (spaced by the probe
        interval), and the probe events are on the health lane."""
        plane = TailTolerancePlane(
            TailToleranceConfig(
                health=HealthConfig(window=8, min_window=2, probe_interval=1.0)
            )
        )
        tr = Tracer()
        engines = [
            FaultyEngine(
                ConcatEngine(BATCH),
                FaultPlan(
                    FaultConfig(failure_rate=1.0) if i == 0 else FaultConfig(),
                    seed=i,
                ),
            )
            for i in range(3)
        ]
        sim = ClusterSimulator(
            DASScheduler(BATCH), engines, trace=tr, health=plane
        )
        m = sim.run(_workload(0, rate=80.0), horizon=HORIZON).metrics
        assert plane.state(0) is HealthState.QUARANTINED
        probes = [e for e in tr.health_events if e.kind == "probe"]
        assert probes, "quarantined engine never probed"
        quarantined_at = max(
            t.t for t in plane.transition_log()
            if t.new == "quarantined" and t.engine == 0
        )
        regular = [
            d for d in tr.decisions
            if d.attrs["engine"] == 0 and d.t > quarantined_at
        ]
        # Every post-quarantine dispatch to engine 0 is a probe.
        assert len(regular) <= len(probes) + 1
        m.assert_conservation()
        tr.reconcile(m)


# --------------------------------------------------------------------- #
# Hedged dispatch: tail cut, exactly-once accounting.
# --------------------------------------------------------------------- #


def _p99(tr):
    durs = sorted(b.duration for b in tr.batches if b.kind == "batch")
    assert durs
    rank = max(1, math.ceil(0.99 * len(durs)))
    return durs[rank - 1]


class TestHedgedDispatch:
    def test_hedging_fires_and_cuts_tail(self):
        req = _workload(0)
        base_m, base_tr = _run_cluster(req)
        m, tr = _run_cluster(req, health=_plane())
        assert m.hedges > 0 and m.hedge_wins > 0
        assert m.hedge_wasted > 0.0
        assert _p99(tr) < _p99(base_tr)
        kinds = [e.kind for e in tr.health_events]
        # Every hedge resolves exactly once.
        starts = kinds.count("hedge")
        ends = sum(
            kinds.count(k) for k in ("hedge-win", "hedge-lose", "hedge-failed")
        )
        assert starts == m.hedges and ends == starts

    def test_exactly_once_terminals(self):
        """Duplicated batches never double-count: each served request
        appears once in the ledger, conservation is exact, and the
        span-vs-metrics reconcile passes."""
        m, tr = _run_cluster(_workload(0), health=_plane())
        assert m.hedge_wins > 0
        served_ids = [r.request_id for r in m.served]
        assert len(served_ids) == len(set(served_ids))
        assert tr.duplicate_terminals == 0
        m.assert_conservation()
        tr.reconcile(m)

    def test_hedge_decision_is_causal(self):
        """The deadline armed for a batch derives from the pre-dispatch
        latency window only: every hedge event's deadline must be
        reproducible from earlier observations, which the determinism
        test enforces; here we check the deadline is always positive
        and finite (a fortiori computable before the outcome)."""
        _, tr = _run_cluster(_workload(0), health=_plane())
        hedges = [e for e in tr.health_events if e.kind == "hedge"]
        assert hedges
        for e in hedges:
            assert 0.0 < e.attrs["deadline"] < math.inf
            assert e.attrs["engine"] != e.attrs["target"]


# --------------------------------------------------------------------- #
# Crash + warm restart mid-chaos: hedge records replay idempotently.
# --------------------------------------------------------------------- #


class TestHedgeDurability:
    @pytest.mark.parametrize("phase", ["step", "dispatch"])
    def test_crash_restore_reproduces_hedged_run(self, phase):
        req = _workload(0)
        ref_m, ref_tr = _run_cluster(req, health=_plane())
        assert ref_m.hedge_wins > 0
        ref_led, ref_trd = ledger_digest(ref_m), trace_digest(ref_tr)

        probe = DurabilityPlane(DurabilityConfig())
        _run_cluster(req, health=_plane(), durability=probe)
        nsteps = probe.step

        fired = 0
        for step in (1, nsteps // 2, nsteps - 2):
            dp = DurabilityPlane(
                DurabilityConfig(
                    checkpoint_every=4, crash=SchedulerCrash(step, phase=phase)
                )
            )
            try:
                _run_cluster(req, health=_plane(), durability=dp)
                continue
            except SchedulerCrashed:
                pass
            state = dp.restore()
            m, tr = _run_cluster(
                req, health=_plane(), durability=dp, resume=state
            )
            led, trd = ledger_digest(m), trace_digest(tr)
            assert led == ref_led, "; ".join(digest_diff(led, ref_led)[:5])
            assert trd == ref_trd, "; ".join(digest_diff(trd, ref_trd)[:3])
            m.assert_conservation()
            tr.reconcile(m)
            fired += 1
        assert fired >= 2


# --------------------------------------------------------------------- #
# Satellite 3: STRAGGLER coverage across all three serving loops.
# --------------------------------------------------------------------- #


def _straggler_plan(seed=0):
    return FaultPlan(
        FaultConfig(straggler_rate=0.8, straggler_multiplier=(3.0, 5.0)),
        seed=seed,
    )


class TestStragglerCoverage:
    """Latency inflates, nothing is lost: conservation + reconcile hold
    with a straggler-only plan in every loop.

    The runs are horizon-bounded, so *total* engine time saturates
    either way; the inflation shows up as a larger mean batch latency
    (the same work takes longer per slot)."""

    @staticmethod
    def _mean_batch(m):
        assert m.num_batches > 0
        return m.total_engine_time / m.num_batches

    def _check(self, m, tr, base_mean):
        assert self._mean_batch(m) > base_mean
        assert m.failed_batches == 0  # stragglers complete, never fail
        m.assert_conservation()
        tr.reconcile(m)

    def test_simulator(self):
        req = _workload(0)
        base = ServingSimulator(
            DASScheduler(BATCH), ConcatEngine(BATCH)
        ).run(req, horizon=HORIZON).metrics
        tr = Tracer()
        sim = ServingSimulator(
            DASScheduler(BATCH),
            FaultyEngine(ConcatEngine(BATCH), _straggler_plan()),
            trace=tr,
        )
        m = sim.run(req, horizon=HORIZON).metrics
        self._check(m, tr, self._mean_batch(base))

    def test_cluster(self):
        req = _workload(0)
        base = ClusterSimulator(
            DASScheduler(BATCH), [ConcatEngine(BATCH) for _ in range(2)]
        ).run(req, horizon=HORIZON).metrics
        tr = Tracer()
        sim = ClusterSimulator(
            DASScheduler(BATCH),
            [
                FaultyEngine(ConcatEngine(BATCH), _straggler_plan(i))
                for i in range(2)
            ],
            trace=tr,
        )
        m = sim.run(req, horizon=HORIZON).metrics
        self._check(m, tr, self._mean_batch(base))

    def test_continuous(self):
        req = _workload(0)
        base = ContinuousBatchingSimulator(BATCH, seed=0).run(
            req, horizon=HORIZON
        )
        tr = Tracer()
        m = ContinuousBatchingSimulator(
            BATCH, seed=0, fault_plan=_straggler_plan(), trace=tr
        ).run(req, horizon=HORIZON)
        self._check(m, tr, self._mean_batch(base))
