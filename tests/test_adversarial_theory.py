"""Adversarial instances: the competitive bound is not vacuous.

Random instances put DAS near OPT (≈0.98 mean); these constructed
instances drive the ratio well below 1 — demonstrating that the online
problem genuinely costs something and that Theorem 5.1's slack exists —
while the ⅕ bound still holds on every one.
"""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.scheduling.offline import exact_opt
from repro.types import Request


def replay_das(requests, slot_times, batch, cfg):
    sched = DASScheduler(batch, cfg)
    served: set[int] = set()
    total = 0.0
    for t in slot_times:
        waiting = [
            r for r in requests if r.request_id not in served and r.is_available(t)
        ]
        for r in sched.select(waiting, t).selected():
            served.add(r.request_id)
            total += r.utility
    return total


class TestAdversarialInstances:
    def _run(self, requests, slots, batch=None):
        batch = batch or BatchConfig(num_rows=1, row_length=10)
        cfg = SchedulerConfig(eta=0.5, q=0.5)
        alg = replay_das(requests, slots, batch, cfg)
        opt = exact_opt(requests, slots, batch.num_rows, batch.row_length)
        return alg, opt, cfg

    def test_greedy_trap_costs_das_utility(self):
        """Slot 1 offers relaxed short requests; slot 2 brings nothing.
        An adversary also posts urgent medium requests that die if not
        taken in slot 1.  OPT serves urgent in slot 1 and shorts in slot
        2; greedy-utility behaviour loses the urgent ones."""
        slots = [0.25, 1.25]
        requests = [
            # Relaxed shorts: available both slots.
            *[
                Request(request_id=i, length=2, arrival=0.0, deadline=2.0)
                for i in range(5)
            ],
            # Urgent mediums: die after slot 1.
            *[
                Request(request_id=10 + i, length=5, arrival=0.0, deadline=0.5)
                for i in range(2)
            ],
        ]
        alg, opt, cfg = self._run(requests, slots)
        assert opt > 0
        ratio = alg / opt
        # DAS loses something here but never breaches the bound.
        assert cfg.competitive_ratio - 1e-9 <= ratio <= 1.0

    def test_known_gap_instance(self):
        """An instance on which DAS provably leaves value on the table:
        the single 10-token filler (utility 0.1) beats nothing, while
        choosing five 2-token requests first leaves the urgent 10-token
        request unservable.  Check ALG < OPT strictly and bound holds."""
        slots = [0.25, 1.25]
        requests = [
            *[
                Request(request_id=i, length=2, arrival=0.0, deadline=2.0)
                for i in range(5)
            ],
            Request(request_id=50, length=10, arrival=0.0, deadline=0.5),
        ]
        alg, opt, cfg = self._run(requests, slots)
        # OPT: urgent 10 in slot 1 (0.1), five shorts in slot 2 (2.5).
        assert opt == pytest.approx(2.6)
        assert alg < opt
        assert alg >= cfg.competitive_ratio * opt

    def test_bound_holds_on_flood_instance(self):
        """A flood of low-utility feasible requests masking a few
        high-utility ones arriving later."""
        slots = [0.25, 1.25, 2.25]
        requests = [
            *[
                Request(request_id=i, length=9, arrival=0.0, deadline=0.5)
                for i in range(6)
            ],
            *[
                Request(request_id=100 + i, length=1, arrival=2.0, deadline=2.5)
                for i in range(20)
            ],
        ]
        alg, opt, cfg = self._run(
            requests, slots, batch=BatchConfig(num_rows=2, row_length=10)
        )
        assert alg >= cfg.competitive_ratio * opt - 1e-9
        # The late shorts dominate OPT; DAS must capture them too.
        assert alg > 0.5 * opt
