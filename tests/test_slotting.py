"""Tests for slotted ConcatBatching packing and slot-size policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.slotting import (
    divide_row_into_slots,
    pack_into_slots,
    slot_size_fixed_count,
    slot_size_from_utility_dominant,
)
from repro.core.layout import RowLayout
from repro.types import make_requests


class TestSlotSizePolicies:
    def test_utility_dominant_takes_longest(self):
        reqs = make_requests([5, 12, 7], start_id=0)
        assert slot_size_from_utility_dominant(reqs, row_length=100) == 12

    def test_empty_set_falls_back_to_row(self):
        assert slot_size_from_utility_dominant([], row_length=64) == 64

    def test_clamped_to_row_length(self):
        reqs = make_requests([500], start_id=0)
        assert slot_size_from_utility_dominant(reqs, row_length=100) == 100

    def test_fixed_count(self):
        assert slot_size_fixed_count(4, 400) == 100
        assert slot_size_fixed_count(7, 400) == 57
        assert slot_size_fixed_count(1, 400) == 400

    def test_fixed_count_invalid(self):
        with pytest.raises(ValueError):
            slot_size_fixed_count(0, 400)


class TestDivideRow:
    def test_even_division(self):
        row = RowLayout(capacity=12)
        slots = divide_row_into_slots(row, 4)
        assert [(s.start, s.size) for s in slots] == [(0, 4), (4, 4), (8, 4)]

    def test_trailing_remainder_slot(self):
        row = RowLayout(capacity=10)
        slots = divide_row_into_slots(row, 4)
        assert [(s.start, s.size) for s in slots] == [(0, 4), (4, 4), (8, 2)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            divide_row_into_slots(RowLayout(capacity=10), 0)


class TestPackIntoSlots:
    def test_requests_share_slots(self):
        # Two 2-token requests share one 4-token slot (§4.2.1: "multiple
        # short requests can be concatenated in each slot").
        reqs = make_requests([2, 2], start_id=0)
        res = pack_into_slots(reqs, num_rows=1, row_length=8, slot_size=4)
        row = res.layout.rows[0]
        assert row.slots is not None
        assert len(row.slots[0].segments) == 2
        assert res.rejected == []

    def test_longer_than_slot_rejected(self):
        reqs = make_requests([5, 3], start_id=0)
        res = pack_into_slots(reqs, num_rows=2, row_length=8, slot_size=4)
        assert [r.request_id for r in res.rejected] == [reqs[0].request_id]
        assert [r.request_id for r in res.packed] == [reqs[1].request_id]

    def test_layout_validates(self):
        reqs = make_requests([3, 4, 2, 4, 1], start_id=0)
        res = pack_into_slots(reqs, num_rows=2, row_length=9, slot_size=4)
        res.layout.validate()
        assert res.layout.scheme == "slotted"

    def test_slots_per_row_property(self):
        res = pack_into_slots(make_requests([2], start_id=0), 2, 12, 4)
        assert res.slots_per_row == 3

    @given(
        lengths=st.lists(st.integers(1, 12), max_size=30),
        rows=st.integers(1, 4),
        slot=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, lengths, rows, slot):
        cap = 24
        reqs = make_requests(lengths, start_id=0)
        res = pack_into_slots(reqs, num_rows=rows, row_length=cap, slot_size=slot)
        res.layout.validate()
        packed = {r.request_id for r in res.packed}
        rejected = {r.request_id for r in res.rejected}
        assert packed | rejected == {r.request_id for r in reqs}
        assert not packed & rejected
        # No packed request exceeds the slot size.
        assert all(r.length <= slot for r in res.packed)
        # Segments stay inside their slots (validate checks, assert again).
        for row in res.layout.rows:
            if row.slots:
                for s in row.slots:
                    assert s.used <= s.size
