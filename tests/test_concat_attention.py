"""Tests for Att_CB / Att_CB_S — the heart of the paper's §4.

The key claims verified here:

1. Eq. 5's masked attention over a concatenated row is *numerically
   identical* to attending each request independently (the reference
   loop) — the mask fully removes inter-request interference.
2. Eq. 8's slotted attention equals Eq. 5 on the same layout — slotting
   removes redundant computation without changing any result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.concat_attention import att_cb, att_cb_reference, att_cb_s, attention
from repro.core.masks import NEG_INF, block_diagonal_mask

RTOL = 1e-10


def _rand_qkv(rng, b, w, d):
    return (
        rng.normal(size=(b, w, d)),
        rng.normal(size=(b, w, d)),
        rng.normal(size=(b, w, d)),
    )


class TestVanillaAttention:
    def test_softmax_rows_sum_to_one_via_uniform_value(self, rng):
        q, k, _ = _rand_qkv(rng, 2, 5, 4)
        v = np.ones((2, 5, 4))
        out = attention(q, k, v)
        assert np.allclose(out, 1.0)

    def test_scale_default_is_inv_sqrt_d(self, rng):
        q, k, v = _rand_qkv(rng, 1, 4, 16)
        a = attention(q, k, v)
        b = attention(q, k, v, scale=0.25)
        assert np.allclose(a, b)

    def test_additive_mask_removes_keys(self, rng):
        q, k, v = _rand_qkv(rng, 1, 4, 4)
        mask = np.zeros((1, 4, 4))
        mask[:, :, 2] = NEG_INF  # key 2 invisible
        out = attention(q, k, v, mask=mask)
        ref = attention(q, k[:, [0, 1, 3]], v[:, [0, 1, 3]])
        assert np.allclose(out, ref)


class TestAttCB:
    def test_equals_reference_on_concat_row(self, rng):
        seg = np.array([[0, 0, 0, 1, 1, 2, 2, 2, 2, -1]])
        q, k, v = _rand_qkv(rng, 1, 10, 8)
        got = att_cb(q, k, v, block_diagonal_mask(seg))
        ref = att_cb_reference(q, k, v, seg)
        sel = seg[0] >= 0
        assert np.allclose(got[0, sel], ref[0, sel], rtol=RTOL, atol=1e-12)

    def test_multi_row_batches(self, rng):
        seg = np.array([[0, 0, 1, -1], [2, 3, 3, 3]])
        q, k, v = _rand_qkv(rng, 2, 4, 4)
        got = att_cb(q, k, v, block_diagonal_mask(seg))
        ref = att_cb_reference(q, k, v, seg)
        for b in range(2):
            sel = seg[b] >= 0
            assert np.allclose(got[b, sel], ref[b, sel], rtol=RTOL, atol=1e-12)

    def test_concat_equals_isolated_requests(self, rng):
        """The headline §4.1 claim at kernel level."""
        q, k, v = _rand_qkv(rng, 1, 7, 8)
        seg = np.array([[0, 0, 0, 0, 1, 1, 1]])
        got = att_cb(q, k, v, block_diagonal_mask(seg))
        alone0 = attention(q[:, :4], k[:, :4], v[:, :4])
        alone1 = attention(q[:, 4:], k[:, 4:], v[:, 4:])
        assert np.allclose(got[:, :4], alone0, rtol=RTOL, atol=1e-12)
        assert np.allclose(got[:, 4:], alone1, rtol=RTOL, atol=1e-12)

    def test_broadcasts_over_heads(self, rng):
        seg = np.array([[0, 0, 1, 1]])
        mask = block_diagonal_mask(seg)[:, None, :, :]
        q = rng.normal(size=(1, 2, 4, 4))
        k = rng.normal(size=(1, 2, 4, 4))
        v = rng.normal(size=(1, 2, 4, 4))
        got = att_cb(q, k, v, mask)
        for h in range(2):
            ref = att_cb_reference(q[:, h], k[:, h], v[:, h], seg)
            assert np.allclose(got[:, h], ref, rtol=RTOL, atol=1e-12)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        n_seg = data.draw(st.integers(1, 4))
        seg_lengths = [data.draw(st.integers(1, 5)) for _ in range(n_seg)]
        pad = data.draw(st.integers(0, 3))
        ids = sum(([i] * l for i, l in enumerate(seg_lengths)), []) + [-1] * pad
        seg = np.array([ids])
        w = len(ids)
        q, k, v = _rand_qkv(rng, 1, w, 6)
        got = att_cb(q, k, v, block_diagonal_mask(seg))
        ref = att_cb_reference(q, k, v, seg)
        sel = seg[0] >= 0
        assert np.allclose(got[0, sel], ref[0, sel], rtol=1e-9, atol=1e-11)


class TestAttCBS:
    def test_equal_slots_fast_path_matches_att_cb(self, rng):
        # 2 slots of 4 tokens, each holding exactly one request.
        seg = np.array([[0, 0, 0, 0, 1, 1, 1, 1]])
        q, k, v = _rand_qkv(rng, 1, 8, 4)
        pure = att_cb(q, k, v, block_diagonal_mask(seg))
        slotted = att_cb_s(q, k, v, [(0, 4), (4, 8)])
        assert np.allclose(pure, slotted, rtol=RTOL, atol=1e-12)

    def test_ragged_slots_with_masks(self, rng):
        # Slot 0 holds requests 0+1, slot 1 (shorter) holds request 2.
        seg = np.array([[0, 0, 1, 1, 2, 2]])
        spans = [(0, 4), (4, 6)]
        masks = [
            block_diagonal_mask(seg[:, 0:4]),
            block_diagonal_mask(seg[:, 4:6]),
        ]
        q, k, v = _rand_qkv(rng, 1, 6, 4)
        slotted = att_cb_s(q, k, v, spans, masks)
        ref = att_cb_reference(q, k, v, seg)
        assert np.allclose(slotted, ref, rtol=RTOL, atol=1e-12)

    def test_single_slot_is_pure(self, rng):
        seg = np.array([[0, 0, 1]])
        q, k, v = _rand_qkv(rng, 1, 3, 4)
        slotted = att_cb_s(q, k, v, [(0, 3)], [block_diagonal_mask(seg)])
        pure = att_cb(q, k, v, block_diagonal_mask(seg))
        assert np.allclose(slotted, pure, rtol=RTOL, atol=1e-12)

    def test_noncontiguous_spans_rejected(self, rng):
        q, k, v = _rand_qkv(rng, 1, 8, 4)
        with pytest.raises(ValueError, match="contiguous"):
            att_cb_s(q, k, v, [(0, 3), (4, 8)])

    def test_partial_cover_rejected(self, rng):
        q, k, v = _rand_qkv(rng, 1, 8, 4)
        with pytest.raises(ValueError, match="cover"):
            att_cb_s(q, k, v, [(0, 4)])

    def test_empty_spans_rejected(self, rng):
        q, k, v = _rand_qkv(rng, 1, 4, 4)
        with pytest.raises(ValueError, match="at least one"):
            att_cb_s(q, k, v, [])

    def test_mask_span_mismatch_rejected(self, rng):
        q, k, v = _rand_qkv(rng, 1, 8, 4)
        with pytest.raises(ValueError, match="align"):
            att_cb_s(q, k, v, [(0, 4), (4, 8)], [None])

    @given(st.integers(1, 6), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_property_slot_count_never_changes_result(self, n_slots, seed):
        rng = np.random.default_rng(seed)
        z = 3
        w = n_slots * z
        # Each slot holds one z-token request.
        ids = sum(([i] * z for i in range(n_slots)), [])
        seg = np.array([ids])
        q, k, v = _rand_qkv(rng, 1, w, 4)
        spans = [(i * z, (i + 1) * z) for i in range(n_slots)]
        slotted = att_cb_s(q, k, v, spans)
        pure = att_cb(q, k, v, block_diagonal_mask(seg))
        assert np.allclose(slotted, pure, rtol=1e-9, atol=1e-11)


class TestReference:
    def test_reference_rejects_multihead(self, rng):
        q = rng.normal(size=(1, 2, 4, 4))
        with pytest.raises(ValueError, match="single-head"):
            att_cb_reference(q, q, q, np.array([[0, 0, 1, 1]]))
