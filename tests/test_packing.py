"""Tests for the row-packing policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packing import (
    pack_best_fit_decreasing,
    pack_first_fit,
    pack_in_order,
)
from repro.types import make_requests

PACKERS = [pack_in_order, pack_first_fit, pack_best_fit_decreasing]


class TestPackInOrder:
    def test_preserves_order_within_rows(self):
        reqs = make_requests([4, 3, 2], start_id=0)
        res = pack_in_order(reqs, num_rows=1, row_length=10)
        ids = [s.request.request_id for s in res.layout.rows[0].segments]
        assert ids == [0, 1, 2]

    def test_closes_row_on_misfit(self):
        # 4 then 5 don't share a 6-token row; 5 opens row 1; the later 2
        # does NOT backfill row 0 (in-order semantics).
        reqs = make_requests([4, 5, 2], start_id=0)
        res = pack_in_order(reqs, num_rows=2, row_length=6)
        assert [s.request.request_id for s in res.layout.rows[0].segments] == [0]
        assert [s.request.request_id for s in res.layout.rows[1].segments] == [1]
        assert [r.request_id for r in res.rejected] == [2]

    def test_oversize_rejected(self):
        reqs = make_requests([7], start_id=0)
        res = pack_in_order(reqs, num_rows=2, row_length=6)
        assert res.num_packed == 0
        assert res.num_rejected == 1


class TestPackFirstFit:
    def test_backfills_earlier_rows(self):
        reqs = make_requests([4, 5, 2], start_id=0)
        res = pack_first_fit(reqs, num_rows=2, row_length=6)
        assert [s.request.request_id for s in res.layout.rows[0].segments] == [0, 2]
        assert res.num_rejected == 0

    def test_rejects_when_full(self):
        reqs = make_requests([6, 6, 1], start_id=0)
        res = pack_first_fit(reqs, num_rows=2, row_length=6)
        assert [r.request_id for r in res.rejected] == [2]


class TestBestFitDecreasing:
    def test_picks_tightest_row(self):
        # After 5 and 4 are placed in separate rows, a 2 fits both; BFD
        # chooses the row with less free space (the one holding 5).
        reqs = make_requests([5, 4, 2], start_id=0)
        res = pack_best_fit_decreasing(reqs, num_rows=2, row_length=7)
        rows = {
            tuple(sorted(s.request.length for s in row.segments))
            for row in res.layout.rows
        }
        assert rows == {(2, 5), (4,)}

    def test_bfd_never_worse_than_first_fit_on_rejections(self):
        lengths = [9, 8, 7, 2, 2, 2, 1]
        reqs = make_requests(lengths, start_id=0)
        ff = pack_first_fit(reqs, num_rows=3, row_length=10)
        bfd = pack_best_fit_decreasing(reqs, num_rows=3, row_length=10)
        assert bfd.num_packed >= ff.num_packed


@pytest.mark.parametrize("packer", PACKERS)
class TestPackingInvariants:
    @given(
        lengths=st.lists(st.integers(1, 30), max_size=40),
        rows=st.integers(1, 6),
        cap=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_feasibility_and_conservation(self, packer, lengths, rows, cap):
        reqs = make_requests(lengths, start_id=0)
        res = packer(reqs, num_rows=rows, row_length=cap)
        res.layout.validate()
        # Conservation: every request is packed XOR rejected.
        packed_ids = {r.request_id for r in res.packed}
        rejected_ids = {r.request_id for r in res.rejected}
        assert packed_ids | rejected_ids == {r.request_id for r in reqs}
        assert not (packed_ids & rejected_ids)
        # Eq. 11: row budgets hold.
        for row in res.layout.rows:
            assert row.used <= cap
        # Requests longer than a row can never be packed.
        assert all(r.length <= cap for r in res.packed)
        if packer is not pack_in_order:
            # First-fit/BFD reject only when genuinely no row has space
            # (in-order may reject fitting requests by design — no backfill).
            max_free = max(row.free for row in res.layout.rows)
            assert all(r.length > max_free for r in res.rejected)

    @given(
        lengths=st.lists(st.integers(1, 10), min_size=1, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_everything_fits_with_ample_capacity(self, packer, lengths):
        reqs = make_requests(lengths, start_id=0)
        res = packer(reqs, num_rows=len(lengths), row_length=10)
        assert res.num_rejected == 0
        assert res.layout.useful_tokens == sum(lengths)
