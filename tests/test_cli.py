"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import available_ablations, available_figures, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_defaults(self):
        args = build_parser().parse_args(["figure", "fig13"])
        assert args.name == "fig13"
        assert args.format == "table"
        assert not args.fast

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig13", "--format", "xml"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in available_figures():
            assert fig in out
        for ab in available_ablations():
            assert ab in out

    def test_every_registered_figure_has_runner(self):
        assert set(available_figures()) == {
            "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15a", "fig15b", "fig15c", "fig16",
        }

    def test_figure_table(self, capsys):
        assert main(["figure", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "slots" in out

    def test_figure_csv(self, capsys):
        assert main(["figure", "fig14", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "slots,batch_time,speedup"

    def test_figure_json_to_file(self, tmp_path, capsys):
        dest = tmp_path / "fig13.json"
        assert main(["figure", "fig13", "--format", "json", "--out", str(dest)]) == 0
        data = json.loads(dest.read_text())
        assert data["slots"][0] == 1

    def test_unknown_figure(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_unknown_ablation(self, capsys):
        assert main(["ablation", "nope"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_ablation_packing(self, capsys):
        assert main(["ablation", "packing"]) == 0
        out = capsys.readouterr().out
        assert "first_fit" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "d_model=3072" in out
        assert "GPUCostModel" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "in :" in out and "out:" in out

    def test_fast_figure(self, capsys):
        assert main(["figure", "fig16", "--fast"]) == 0
        assert "overhead_percent" in capsys.readouterr().out


class TestTraceCommand:
    def test_list_includes_traces(self, capsys):
        from repro.experiments.traced import available_traces

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in available_traces():
            assert name in out

    def test_unknown_trace(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown traced experiment" in capsys.readouterr().err

    def test_chrome_export_to_file_is_valid(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace

        dest = tmp_path / "fig13.json"
        assert main(["trace", "fig13", "--fast", "--out", str(dest)]) == 0
        doc = json.loads(dest.read_text())
        validate_chrome_trace(doc)
        assert "wrote" in capsys.readouterr().out

    def test_csv_format(self, capsys):
        assert main(["trace", "faults", "--fast", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == (
            "request_id,phase,t_start,t_end,duration,attrs"
        )

    def test_ascii_format(self, capsys):
        assert main(["trace", "fig9", "--fast", "--format", "ascii"]) == 0
        out = capsys.readouterr().out
        assert "queue depth" in out
        assert "served cum" in out
