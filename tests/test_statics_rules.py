"""Rule-level tcblint tests: each rule fires on its known-bad fixture,
suppressions and the path policy are honored, and the CLI works."""

import json
from pathlib import Path

import pytest

from repro.statics import (
    ALL_RULES,
    DEFAULT_POLICY,
    LintReport,
    Severity,
    lint_paths,
    lint_source,
)
from repro.statics.policy import canonical_path, path_matches
from repro.statics.suppressions import collect_suppressions

FIXTURES = Path(__file__).parent / "fixtures" / "tcblint"


def _lint_fixture(name: str, as_path: str, rules=None):
    source = (FIXTURES / name).read_text()
    return lint_source(source, as_path, rules=rules)


def _lines(findings, rule):
    return [f.line for f in findings if f.rule == rule]


class TestRuleTCB001:
    def test_fires_on_ad_hoc_masks_only(self):
        found = _lint_fixture("bad_tcb001.py", "repro/model/somewhere.py")
        assert _lines(found, "TCB001") == [9, 13, 17]
        # -np.inf logit truncation (non-mask) must not fire.
        assert len(found) == 3

    def test_exempt_inside_core_masks(self):
        found = _lint_fixture("bad_tcb001.py", "src/repro/core/masks.py")
        assert _lines(found, "TCB001") == []


class TestRuleTCB002:
    def test_fires_on_global_rng(self):
        found = _lint_fixture("bad_tcb002.py", "repro/serving/somewhere.py")
        assert _lines(found, "TCB002") == [9, 13, 14, 19]

    def test_default_rng_allowed_at_entry_points(self):
        found = _lint_fixture("bad_tcb002.py", "repro/workload/somewhere.py")
        # default_rng (line 19) is waived at entry points; the global
        # seed/draw bans (9, 13, 14) hold everywhere.
        assert _lines(found, "TCB002") == [9, 13, 14]

    def test_generator_threading_is_clean(self):
        src = (
            "import numpy as np\n"
            "def draw(rng: np.random.Generator):\n"
            "    return rng.normal(size=2)\n"
        )
        assert lint_source(src, "repro/model/ok.py") == []


class TestRuleTCB003:
    def test_fires_in_simulator_paths(self):
        found = _lint_fixture("bad_tcb003.py", "repro/serving/somewhere.py")
        assert _lines(found, "TCB003") == [13, 17, 21]

    def test_scoped_to_serving_and_scheduling(self):
        found = _lint_fixture("bad_tcb003.py", "repro/experiments/somewhere.py")
        assert _lines(found, "TCB003") == []

    def test_fires_in_obs_paths(self):
        # The tracing layer lives on the simulated clock too: every
        # timestamp it records comes from the serving loops.
        found = _lint_fixture("bad_tcb003.py", "repro/obs/somewhere.py")
        assert _lines(found, "TCB003") == [13, 17, 21]

    def test_fig16_paths_waived_by_policy(self):
        found = _lint_fixture("bad_tcb003.py", "repro/scheduling/das.py")
        assert _lines(found, "TCB003") == []

    def test_fires_in_durability_paths(self):
        # The durability plane journals *simulated* time; a wall-clock
        # read there would make snapshots non-replayable.
        found = _lint_fixture("bad_tcb003.py", "repro/durability/plane.py")
        assert _lines(found, "TCB003") == [13, 17, 21]


class TestRuleTCB004:
    def test_fires_on_reduced_precision(self):
        found = _lint_fixture("bad_tcb004.py", "repro/core/somewhere.py")
        assert _lines(found, "TCB004") == [11, 15, 19]
        assert all(f.severity is Severity.WARNING for f in found)

    def test_scoped_to_hot_paths(self):
        found = _lint_fixture("bad_tcb004.py", "repro/analysis/somewhere.py")
        assert _lines(found, "TCB004") == []


class TestRuleTCB005:
    def test_fires_on_mutable_defaults(self):
        found = _lint_fixture("bad_tcb005.py", "repro/anywhere.py")
        assert _lines(found, "TCB005") == [4, 9, 14]


class TestRuleTCB006:
    def test_fires_on_square_trailing_dims(self):
        found = _lint_fixture("bad_tcb006.py", "repro/engine/somewhere.py")
        assert _lines(found, "TCB006") == [7, 11]

    def test_attention_modules_waived(self):
        found = _lint_fixture("bad_tcb006.py", "repro/core/concat_attention.py")
        assert _lines(found, "TCB006") == []

    def test_reference_oracles_exempt(self):
        # ``_reference_*`` functions and ``_Reference*`` classes are
        # verbatim pre-fast-path oracles (docs/statics.md): the fixture
        # contains one of each with square allocations, and neither
        # appears in the findings above (only lines 7 and 11 fire).
        found = _lint_fixture("bad_tcb006.py", "repro/engine/somewhere.py")
        assert _lines(found, "TCB006") == [7, 11]


class TestRuleTCB007:
    def test_fires_on_bare_and_silent_handlers(self):
        found = _lint_fixture("bad_tcb007.py", "repro/serving/somewhere.py")
        assert _lines(found, "TCB007") == [11, 18, 25]
        assert all(f.severity is Severity.ERROR for f in found)

    def test_scoped_to_serving_engine_faults(self):
        for path in (
            "repro/engine/somewhere.py",
            "repro/faults/somewhere.py",
        ):
            found = _lint_fixture("bad_tcb007.py", path)
            assert _lines(found, "TCB007") == [11, 18, 25]
        found = _lint_fixture("bad_tcb007.py", "repro/analysis/somewhere.py")
        assert _lines(found, "TCB007") == []

    def test_handling_and_reraising_is_clean(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        return None\n"
        )
        assert lint_source(src, "repro/serving/ok.py") == []


class TestRuleTCB008:
    def test_fires_on_unledgered_removals(self):
        found = _lint_fixture("bad_tcb008.py", "repro/serving/somewhere.py")
        assert _lines(found, "TCB008") == [9, 13, 17, 21]
        assert all(f.severity is Severity.ERROR for f in found)

    def test_scope_covers_queue_and_overload(self):
        for path in (
            "repro/scheduling/queue.py",
            "repro/overload/somewhere.py",
        ):
            found = _lint_fixture("bad_tcb008.py", path)
            assert _lines(found, "TCB008") == [9, 13, 17, 21]
        # Outside the scoped trees the rule stays silent.
        found = _lint_fixture("bad_tcb008.py", "repro/analysis/somewhere.py")
        assert _lines(found, "TCB008") == []

    def test_ledger_module_is_policy_exempt(self):
        found = _lint_fixture("bad_tcb008.py", "repro/overload/ledger.py")
        assert _lines(found, "TCB008") == []

    def test_durability_in_scope_but_restore_exempt(self):
        # Journal replay re-applies drops that were ledgered live, so
        # restore.py is policy-waived; the rest of the plane is not.
        found = _lint_fixture("bad_tcb008.py", "repro/durability/plane.py")
        assert _lines(found, "TCB008") == [9, 13, 17, 21]
        found = _lint_fixture("bad_tcb008.py", "repro/durability/restore.py")
        assert _lines(found, "TCB008") == []

    def test_self_methods_are_clean(self):
        src = (
            "class RequestQueue:\n"
            "    def __init__(self):\n"
            "        self._waiting = {}\n"
            "    def drop(self, requests):\n"
            "        for r in requests:\n"
            "            self._waiting.pop(r, None)\n"
            "    def clear(self):\n"
            "        self.drop(list(self._waiting))\n"
        )
        assert lint_source(src, "repro/scheduling/queue.py") == []


class TestRuleTCB003OverloadScope:
    def test_wall_clock_banned_in_overload(self):
        src = "import time\n\ndef t():\n    return time.perf_counter()\n"
        found = lint_source(src, "repro/overload/controller.py")
        assert _lines(found, "TCB003") == [4]


class TestSuppressions:
    def test_inline_disable_silences_the_named_rule(self):
        report = LintReport()
        source = (FIXTURES / "suppressed.py").read_text()
        found = lint_source(source, "repro/model/x.py", report=report)
        assert found == []
        assert report.suppressed == 3

    def test_inline_disable_is_rule_specific(self):
        src = (
            "import numpy as np\n"
            "NEG_INF = -1e9\n"
            "m = np.where(True, 0.0, NEG_INF)  # tcblint: disable=TCB005\n"
        )
        found = lint_source(src, "repro/model/x.py")
        assert _lines(found, "TCB001") == [3]

    def test_file_wide_disable(self):
        source = (FIXTURES / "file_suppressed.py").read_text()
        assert lint_source(source, "repro/model/x.py") == []

    def test_directive_parsing(self):
        smap = collect_suppressions(
            "x = 1  # tcblint: disable=TCB001,TCB003\n"
            "# tcblint: disable-file=TCB005\n"
        )
        assert smap.is_suppressed("TCB001", 1)
        assert smap.is_suppressed("TCB003", 1)
        assert not smap.is_suppressed("TCB001", 2)
        assert smap.is_suppressed("TCB005", 99)


class TestPolicyAndPaths:
    def test_canonical_path_lowers_src_prefix(self):
        assert canonical_path("src/repro/core/masks.py") == "repro/core/masks.py"
        assert canonical_path("/abs/x/src/repro/a.py") == "repro/a.py"
        assert canonical_path("tests/fixtures/f.py") == "tests/fixtures/f.py"

    def test_path_matches_globs(self):
        assert path_matches("src/repro/workload/burst.py", "repro/workload/*.py")
        assert not path_matches("src/repro/serving/continuous.py", "repro/workload/*.py")

    def test_every_exemption_has_a_reason(self):
        for rule, exemptions in DEFAULT_POLICY.exemptions.items():
            assert rule.startswith("TCB")
            for ex in exemptions:
                assert ex.reason


class TestEngineAndCli:
    def test_rule_selection_and_unknown_rule(self):
        src = "def f(x, acc=[]):\n    return acc\n"
        assert lint_source(src, "repro/x.py", rules=["TCB001"]) == []
        assert _lines(lint_source(src, "repro/x.py", rules=["tcb005"]), "TCB005") == [1]
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source(src, "repro/x.py", rules=["TCB999"])

    def test_lint_paths_walks_fixture_dir(self):
        report = lint_paths([FIXTURES])
        assert report.files_scanned == len(list(FIXTURES.glob("*.py")))
        # Fixture paths are outside repro/, so only path-unscoped rules
        # fire — but they must fire.
        assert any(f.rule == "TCB001" for f in report.findings)
        assert any(f.rule == "TCB005" for f in report.findings)
        assert not report.clean

    def test_json_report_shape(self):
        report = lint_paths([FIXTURES / "bad_tcb005.py"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        f = payload["findings"][0]
        assert set(f) == {"rule", "path", "line", "col", "severity", "message"}

    def test_cli_reports_fixture_findings(self, capsys):
        from repro.cli import main

        rc = main(["lint", str(FIXTURES / "bad_tcb005.py"), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["TCB005"] * 3

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_cli_unknown_rule_exit_code(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rules", "TCB999"]) == 2
