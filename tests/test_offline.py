"""Tests for offline optima (exact OPT, LP bound, bin-packing check)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.offline import exact_opt, fits_in_rows, lp_upper_bound
from repro.types import Request, make_requests


def brute_force_fits(lengths, num_rows, row_length):
    """Assign each item to a row by brute force."""
    if not lengths:
        return True
    for assignment in itertools.product(range(num_rows), repeat=len(lengths)):
        loads = [0] * num_rows
        for item, row in zip(lengths, assignment):
            loads[row] += item
        if all(l <= row_length for l in loads):
            return True
    return False


class TestFitsInRows:
    def test_simple_cases(self):
        assert fits_in_rows([5, 5], 1, 10)
        assert not fits_in_rows([6, 5], 1, 10)
        assert fits_in_rows([6, 5], 2, 10)
        assert fits_in_rows([], 3, 10)
        assert not fits_in_rows([11], 5, 10)

    def test_needs_smart_packing(self):
        # [4,4,4,3,3,3] into 3 rows of 7: (4+3) × 3 works; naive
        # first-fit of sorted order also works but total is exactly tight.
        assert fits_in_rows([4, 4, 4, 3, 3, 3], 3, 7)
        assert not fits_in_rows([4, 4, 4, 4, 3, 3], 3, 7)

    @given(
        lengths=st.lists(st.integers(1, 8), max_size=7),
        rows=st.integers(1, 3),
        cap=st.integers(1, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, lengths, rows, cap):
        assert fits_in_rows(lengths, rows, cap) == brute_force_fits(
            lengths, rows, cap
        )


class TestExactOpt:
    def test_single_slot_knapsack(self):
        reqs = make_requests([2, 3, 4], start_id=0)
        # One slot, one row of 5 → best is 2+3 (utility 1/2 + 1/3).
        opt = exact_opt(reqs, [0.0], num_rows=1, row_length=5)
        assert opt == pytest.approx(1 / 2 + 1 / 3)

    def test_window_constraints(self):
        reqs = [
            Request(request_id=0, length=2, arrival=0.0, deadline=0.5),
            Request(request_id=1, length=2, arrival=1.0, deadline=2.0),
        ]
        # Slots at t=0 and t=1.5: each request reachable in exactly one.
        opt = exact_opt(reqs, [0.0, 1.5], num_rows=1, row_length=2)
        assert opt == pytest.approx(1.0)

    def test_request_can_be_served_once(self):
        reqs = make_requests([2], start_id=0)
        opt = exact_opt(reqs, [0.0, 1.0, 2.0], num_rows=4, row_length=10)
        assert opt == pytest.approx(0.5)

    def test_oversize_ignored(self):
        reqs = make_requests([50], start_id=0)
        assert exact_opt(reqs, [0.0], num_rows=2, row_length=10) == 0.0

    def test_multi_row_packing_matters(self):
        reqs = make_requests([6, 6, 6], start_id=0)
        # Three 6s in 2 rows of 12: all fit (6+6 | 6).
        opt = exact_opt(reqs, [0.0], num_rows=2, row_length=12)
        assert opt == pytest.approx(3 / 6)


class TestLPBound:
    def test_dominates_exact(self):
        reqs = make_requests([2, 3, 4, 5], start_id=0)
        slots = [0.0, 1.0]
        opt = exact_opt(reqs, slots, num_rows=1, row_length=6)
        lp = lp_upper_bound(reqs, slots, num_rows=1, row_length=6)
        assert lp >= opt - 1e-9

    def test_unconstrained_serves_all(self):
        reqs = make_requests([2, 2], start_id=0)
        lp = lp_upper_bound(reqs, [0.0], num_rows=4, row_length=10)
        assert lp == pytest.approx(1.0)

    def test_empty(self):
        assert lp_upper_bound([], [0.0], 1, 10) == 0.0
        assert lp_upper_bound(make_requests([3], start_id=0), [], 1, 10) == 0.0

    @given(
        lengths=st.lists(st.integers(1, 8), min_size=1, max_size=8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_lp_geq_opt(self, lengths, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        reqs = [
            Request(
                request_id=i,
                length=l,
                arrival=float(rng.uniform(0, 2)),
                deadline=float(rng.uniform(2, 4)),
            )
            for i, l in enumerate(lengths)
        ]
        slots = [0.5, 1.5, 2.5]
        opt = exact_opt(reqs, slots, num_rows=2, row_length=8)
        lp = lp_upper_bound(reqs, slots, num_rows=2, row_length=8)
        assert lp >= opt - 1e-9
