"""Hypothesis stress tests: serving-loop invariants on random workloads.

These complement ``tests/test_simulator.py``'s example-based tests with
randomized traces: whatever the arrival pattern, lengths and deadlines,
the serving loop must conserve requests, respect deadlines at selection
time, keep time monotone and never serve anything twice.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.engine.naive import NaiveEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.engine.turbo import TurboEngine
from repro.scheduling.baselines import DEFScheduler, FCFSScheduler, SJFScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.simulator import ServingSimulator
from repro.types import Request


def _random_requests(seed: int, n: int, max_len: int = 25):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        arrival = float(rng.uniform(0, 4.0))
        out.append(
            Request(
                request_id=i,
                length=int(rng.integers(1, max_len + 1)),
                arrival=arrival,
                deadline=arrival + float(rng.uniform(0.1, 4.0)),
            )
        )
    return out


def _make_stack(kind: str, batch: BatchConfig):
    if kind == "das-concat":
        return DASScheduler(batch, SchedulerConfig()), ConcatEngine(batch)
    if kind == "sdas-slotted":
        return (
            SlottedDASScheduler(batch, SchedulerConfig()),
            SlottedConcatEngine(batch),
        )
    if kind == "fcfs-naive":
        return FCFSScheduler(batch), NaiveEngine(batch)
    if kind == "sjf-turbo":
        return SJFScheduler(batch), TurboEngine(batch)
    if kind == "def-concat":
        return DEFScheduler(batch), ConcatEngine(batch)
    raise ValueError(kind)


STACKS = ["das-concat", "sdas-slotted", "fcfs-naive", "sjf-turbo", "def-concat"]


@pytest.mark.parametrize("kind", STACKS)
class TestServingInvariants:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 60))
    @settings(max_examples=15, deadline=None)
    def test_conservation_and_uniqueness(self, kind, seed, n):
        batch = BatchConfig(num_rows=3, row_length=25)
        scheduler, engine = _make_stack(kind, batch)
        requests = _random_requests(seed, n)
        sim = ServingSimulator(scheduler, engine, record_slots=True)
        res = sim.run(list(requests), horizon=10.0)
        m = res.metrics

        served_ids = [r.request_id for r in m.served]
        expired_ids = [r.request_id for r in m.expired]
        # Every request accounted for exactly once.
        assert sorted(served_ids + expired_ids) == sorted(
            r.request_id for r in requests
        )
        assert len(set(served_ids)) == len(served_ids)

        # Slots are time-monotone; selections respect Eq. 12 at start.
        prev = -1.0
        for t_start, decision, batch_result in res.slots:
            assert t_start >= prev
            prev = t_start
            for r in batch_result.served:
                assert r.arrival <= t_start <= r.deadline

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_finish_times_consistent(self, kind, seed):
        batch = BatchConfig(num_rows=3, row_length=25)
        scheduler, engine = _make_stack(kind, batch)
        requests = _random_requests(seed, 30)
        m = (
            ServingSimulator(scheduler, engine)
            .run(list(requests), horizon=10.0)
            .metrics
        )
        assert set(m.finish_times) == {r.request_id for r in m.served}
        for rid, (arrival, finish) in m.finish_times.items():
            assert finish > arrival
        assert m.total_engine_time >= 0
        assert m.num_batches >= (1 if m.served else 0)
