"""Tests for repro.core.layout — the layout data model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.layout import BatchLayout, RowLayout, Segment, SlotLayout
from repro.types import Request, make_requests


def _req(rid, length):
    return Request(request_id=rid, length=length)


class TestRowLayout:
    def test_add_appends_contiguously(self):
        row = RowLayout(capacity=10)
        s1 = row.add(_req(0, 4))
        s2 = row.add(_req(1, 3))
        assert (s1.start, s1.end) == (0, 4)
        assert (s2.start, s2.end) == (4, 7)
        assert row.used == 7
        assert row.free == 3
        assert row.padding == 3

    def test_overflow_rejected(self):
        row = RowLayout(capacity=5)
        row.add(_req(0, 3))
        with pytest.raises(ValueError, match="does not fit"):
            row.add(_req(1, 3))

    def test_validate_catches_overlap(self):
        row = RowLayout(capacity=10)
        row.segments = [Segment(_req(0, 4), start=0), Segment(_req(1, 4), start=2)]
        with pytest.raises(ValueError, match="overlap"):
            row.validate()

    def test_validate_catches_capacity_overflow(self):
        row = RowLayout(capacity=5)
        row.segments = [Segment(_req(0, 4), start=3)]
        with pytest.raises(ValueError, match="capacity"):
            row.validate()


class TestSlotLayout:
    def test_slot_placement_is_offset_by_start(self):
        slot = SlotLayout(start=10, size=5)
        seg = slot.add(_req(0, 3))
        assert seg.start == 10
        seg2 = slot.add(_req(1, 2))
        assert seg2.start == 13
        assert slot.free == 0

    def test_slot_overflow_rejected(self):
        slot = SlotLayout(start=0, size=4)
        with pytest.raises(ValueError, match="does not fit"):
            slot.add(_req(0, 5))

    def test_validate_catches_segment_escaping_slot(self):
        row = RowLayout(capacity=10)
        slot = SlotLayout(start=0, size=4)
        bad = Segment(_req(0, 4), start=2)  # extends to 6 > slot end 4
        slot.segments.append(bad)
        row.segments.append(bad)
        row.slots = [slot]
        with pytest.raises(ValueError, match="escapes"):
            row.validate()


class TestBatchLayout:
    def test_naive_constructor_one_request_per_row(self):
        reqs = make_requests([3, 7, 5], start_id=0)
        layout = BatchLayout.naive(reqs)
        assert layout.num_rows == 3
        assert layout.effective_width == 7
        assert [row.num_requests for row in layout.rows] == [1, 1, 1]
        assert layout.useful_tokens == 15
        assert layout.padded_tokens == 3 * 7 - 15

    def test_naive_rejects_too_many_for_rows(self):
        reqs = make_requests([3, 3], start_id=0)
        with pytest.raises(ValueError, match="do not fit"):
            BatchLayout.naive(reqs, num_rows=1)

    def test_naive_empty_rejected(self):
        with pytest.raises(ValueError, match="zero requests"):
            BatchLayout.naive([])

    def test_segment_id_matrix(self):
        layout = BatchLayout(num_rows=2, row_length=6)
        layout.rows[0].add(_req(10, 2))
        layout.rows[0].add(_req(11, 3))
        layout.rows[1].add(_req(12, 4))
        seg = layout.segment_id_matrix()
        assert seg.shape == (2, 5)
        assert seg[0].tolist() == [10, 10, 11, 11, 11]
        assert seg[1].tolist() == [12, 12, 12, 12, -1]

    def test_position_matrix_restarts_per_segment(self):
        layout = BatchLayout(num_rows=1, row_length=8)
        layout.rows[0].add(_req(0, 3))
        layout.rows[0].add(_req(1, 2))
        pos = layout.position_matrix()
        assert pos[0].tolist() == [0, 1, 2, 0, 1]

    def test_naive_position_matrix_is_rowwise(self):
        layout = BatchLayout(num_rows=1, row_length=8)
        layout.rows[0].add(_req(0, 3))
        layout.rows[0].add(_req(1, 2))
        pos = layout.naive_position_matrix()
        assert pos[0].tolist() == [0, 1, 2, 3, 4]

    def test_token_matrix_requires_tokens(self):
        layout = BatchLayout(num_rows=1, row_length=4)
        layout.rows[0].add(_req(0, 2))
        with pytest.raises(ValueError, match="no tokens"):
            layout.token_matrix()

    def test_token_matrix_pads(self):
        layout = BatchLayout(num_rows=2, row_length=4)
        layout.rows[0].add(Request(request_id=0, length=2, tokens=(7, 8)))
        layout.rows[1].add(Request(request_id=1, length=3, tokens=(4, 5, 6)))
        toks = layout.token_matrix(pad_token=0)
        assert toks[0].tolist() == [7, 8, 0]
        assert toks[1].tolist() == [4, 5, 6]

    def test_validate_catches_duplicate_request(self):
        layout = BatchLayout(num_rows=2, row_length=4)
        layout.rows[0].add(_req(0, 2))
        layout.rows[1].add(_req(0, 2))
        with pytest.raises(ValueError, match="twice"):
            layout.validate()

    def test_effective_width_tracks_fullest_row(self):
        layout = BatchLayout(num_rows=3, row_length=100)
        layout.rows[0].add(_req(0, 10))
        layout.rows[1].add(_req(1, 30))
        assert layout.effective_width == 30
        assert layout.padding_ratio == pytest.approx(1 - 40 / 90)

    def test_slot_boundaries_default_whole_row(self):
        layout = BatchLayout(num_rows=1, row_length=10)
        layout.rows[0].add(_req(0, 6))
        assert layout.slot_boundaries() == [[(0, 6)]]

    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=20)
    )
    def test_useful_tokens_invariant(self, lengths):
        reqs = make_requests(lengths, start_id=0)
        layout = BatchLayout.naive(reqs)
        layout.validate()
        assert layout.useful_tokens == sum(lengths)
        assert layout.num_requests == len(lengths)
        assert layout.padded_tokens >= 0
