"""Tests for shared engine plumbing (BatchResult, modes, repr)."""

import pytest

from repro.config import BatchConfig, ModelConfig
from repro.engine.base import BatchResult, EngineMode
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.types import make_requests


class TestBatchResult:
    def test_empty_defaults(self):
        r = BatchResult()
        assert r.num_served == 0
        assert r.throughput == 0.0

    def test_throughput(self):
        r = BatchResult(served=make_requests([3, 4], start_id=0), latency=2.0)
        assert r.throughput == pytest.approx(1.0)

    def test_zero_latency_throughput_is_zero(self):
        r = BatchResult(served=make_requests([3], start_id=0), latency=0.0)
        assert r.throughput == 0.0


class TestEngineInfrastructure:
    def test_repr_mentions_geometry(self):
        eng = ConcatEngine(BatchConfig(num_rows=8, row_length=64))
        assert "B=8" in repr(eng)
        assert "L=64" in repr(eng)
        assert "cost" in repr(eng)

    def test_mode_enum_values(self):
        assert EngineMode.COST.value == "cost"
        assert EngineMode.MEASURED.value == "measured"

    def test_serve_accumulates_stats_across_layouts(self):
        # Naive engine splits >B requests into several layouts; stats sum.
        from repro.engine.naive import NaiveEngine

        batch = BatchConfig(num_rows=2, row_length=20)
        eng = NaiveEngine(batch)
        result = eng.serve(make_requests([5, 10, 3, 7, 2], start_id=0))
        assert result.stats.num_requests == 5
        assert result.stats.useful_tokens == 27
        assert result.stats.rows == 5
        assert len(result.layouts) == 3

    def test_measured_mode_slotted_engine(self):
        """Slotted engine in measured mode exercises the slot-wise
        encoder path end to end."""
        batch = BatchConfig(num_rows=2, row_length=16)
        eng = SlottedConcatEngine(
            batch,
            num_slots=4,
            mode=EngineMode.MEASURED,
            model_config=ModelConfig.tiny(),
        )
        reqs = eng.materialize_tokens(make_requests([4, 3, 4, 2], start_id=0))
        result = eng.serve(reqs)
        assert result.num_served == 4
        assert result.latency > 0

    def test_default_cost_model_is_calibrated(self):
        from repro.engine.cost_model import GPUCostModel

        eng = ConcatEngine(BatchConfig(num_rows=2, row_length=16))
        assert eng.cost_model == GPUCostModel.calibrated()

    def test_stats_row_width_tracks_widest_layout(self):
        from repro.engine.turbo import TurboEngine

        batch = BatchConfig(num_rows=4, row_length=50)
        result = TurboEngine(batch).serve(make_requests([5, 40], start_id=0))
        assert result.stats.row_width == 40
