"""Tests for the clairvoyant oracle scheduler."""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.scheduling.offline import exact_opt
from repro.scheduling.oracle import OracleScheduler, plan_with_lp
from repro.types import Request, make_requests


def _batch(rows=2, L=10):
    return BatchConfig(num_rows=rows, row_length=L)


class TestPlanWithLP:
    def test_everything_fits_one_slot(self):
        reqs = make_requests([3, 4], deadlines=[10.0, 10.0], start_id=0)
        plan = plan_with_lp(reqs, [0.0], _batch())
        assert set(plan) == {reqs[0].request_id, reqs[1].request_id}
        assert set(plan.values()) == {0}

    def test_respects_windows(self):
        reqs = [
            Request(request_id=0, length=3, arrival=0.0, deadline=0.5),
            Request(request_id=1, length=3, arrival=1.0, deadline=2.0),
        ]
        plan = plan_with_lp(reqs, [0.0, 1.5], _batch())
        assert plan[0] == 0
        assert plan[1] == 1

    def test_capacity_limits_choice(self):
        # Three 10-token requests, one slot, capacity 2×10 → two chosen.
        reqs = make_requests([10, 10, 10], deadlines=[9.0] * 3, start_id=0)
        plan = plan_with_lp(reqs, [0.0], _batch())
        assert len(plan) == 2

    def test_oversize_ignored(self):
        reqs = make_requests([50], deadlines=[9.0], start_id=0)
        assert plan_with_lp(reqs, [0.0], _batch()) == {}

    def test_empty(self):
        assert plan_with_lp([], [0.0], _batch()) == {}
        assert plan_with_lp(make_requests([3], start_id=0), [], _batch()) == {}


class TestOracleScheduler:
    def _replay(self, scheduler, requests, slot_times):
        served: set[int] = set()
        total = 0.0
        for t in slot_times:
            waiting = [
                r
                for r in requests
                if r.request_id not in served and r.is_available(t)
            ]
            d = scheduler.select(waiting, t)
            d.validate(scheduler.batch)
            for r in d.selected():
                served.add(r.request_id)
                total += r.utility
        return total

    def test_oracle_at_least_matches_das_on_average(self):
        """Clairvoyance can't lose to online DAS across a trace set."""
        import numpy as np

        rng = np.random.default_rng(0)
        batch = _batch()
        slots = [0.25, 1.25, 2.25]
        oracle_total, das_total = 0.0, 0.0
        for seed in range(12):
            r2 = np.random.default_rng(seed)
            reqs = []
            for i in range(8):
                a = float(r2.uniform(0, 2.5))
                reqs.append(
                    Request(
                        request_id=i,
                        length=int(r2.integers(1, 9)),
                        arrival=a,
                        deadline=a + float(r2.uniform(0.5, 2.5)),
                    )
                )
            oracle = OracleScheduler(batch, reqs, slots)
            das = DASScheduler(batch, SchedulerConfig())
            oracle_total += self._replay(oracle, reqs, slots)
            das_total += self._replay(das, reqs, slots)
        assert oracle_total >= das_total * 0.95

    def test_oracle_close_to_exact_opt(self):
        reqs = make_requests(
            [2, 3, 4, 5, 6], deadlines=[3.0] * 5, start_id=0
        )
        slots = [0.5, 1.5]
        batch = _batch()
        oracle = OracleScheduler(batch, reqs, slots)
        got = self._replay(oracle, reqs, slots)
        opt = exact_opt(reqs, slots, batch.num_rows, batch.row_length)
        assert got >= 0.8 * opt

    def test_decision_valid(self):
        reqs = make_requests([3, 7, 2, 9, 5], deadlines=[5.0] * 5, start_id=0)
        oracle = OracleScheduler(_batch(), reqs, [0.0, 1.0])
        d = oracle.select(reqs, 0.0)
        d.validate(_batch())
