"""Tests for sinusoidal PE and TCB's separate positional encoding."""

import numpy as np
import pytest

from repro.core.layout import BatchLayout
from repro.core.positional import (
    encode_layout,
    separate_positions,
    sinusoidal_encoding,
    sinusoidal_positional_encoding,
)
from repro.types import Request


class TestSinusoidTable:
    def test_matches_formula(self):
        d = 8
        table = sinusoidal_encoding(max_len=16, d_model=d)
        for pos in (0, 1, 7, 15):
            for e in range(d // 2):
                angle = pos / (10000 ** (2 * e / d))
                assert table[pos, 2 * e] == pytest.approx(np.sin(angle))
                assert table[pos, 2 * e + 1] == pytest.approx(np.cos(angle))

    def test_position_zero_is_alternating(self):
        table = sinusoidal_encoding(4, 6)
        assert table[0].tolist() == [0.0, 1.0, 0.0, 1.0, 0.0, 1.0]

    def test_odd_d_model(self):
        table = sinusoidal_encoding(4, 5)
        assert table.shape == (4, 5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sinusoidal_encoding(0, 8)


class TestGather:
    def test_gather_matches_table_rows(self):
        table = sinusoidal_encoding(10, 4)
        pos = np.array([[0, 3, 7]])
        pe = sinusoidal_positional_encoding(pos, 4, table)
        assert np.allclose(pe[0, 1], table[3])

    def test_without_table_builds_one(self):
        pe = sinusoidal_positional_encoding(np.array([[0, 2]]), 6)
        assert pe.shape == (1, 2, 6)

    def test_out_of_range_rejected(self):
        table = sinusoidal_encoding(4, 4)
        with pytest.raises(ValueError, match="out of range"):
            sinusoidal_positional_encoding(np.array([[5]]), 4, table)

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sinusoidal_positional_encoding(np.array([[-1]]), 4)

    def test_d_model_mismatch_rejected(self):
        table = sinusoidal_encoding(4, 4)
        with pytest.raises(ValueError, match="d_model"):
            sinusoidal_positional_encoding(np.array([[0]]), 8, table)


class TestSeparateEncoding:
    def _layout(self):
        layout = BatchLayout(num_rows=1, row_length=10)
        layout.rows[0].add(Request(request_id=0, length=3))
        layout.rows[0].add(Request(request_id=1, length=4))
        return layout

    def test_positions_restart(self):
        pos = separate_positions(self._layout())
        assert pos[0].tolist() == [0, 1, 2, 0, 1, 2, 3]

    def test_separate_equals_per_request_encoding(self):
        """Fig. 5b: each concatenated request is encoded as if alone."""
        layout = self._layout()
        d = 8
        pe = encode_layout(layout, d, separate=True)
        table = sinusoidal_encoding(8, d)
        # Segment 1 spans columns 3..7, positions 0..3.
        assert np.allclose(pe[0, 3:7], table[:4])

    def test_traditional_differs_for_second_segment(self):
        layout = self._layout()
        d = 8
        sep = encode_layout(layout, d, separate=True)
        trad = encode_layout(layout, d, separate=False)
        # First segment identical; second segment shifted.
        assert np.allclose(sep[0, :3], trad[0, :3])
        assert not np.allclose(sep[0, 3:7], trad[0, 3:7])
