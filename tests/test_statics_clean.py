"""Tier-1 gate: the repro package itself must lint clean.

This is what makes the repo's invariants self-enforcing: any future PR
that builds an ad-hoc mask, reaches for the global RNG, reads the wall
clock inside the simulator, drops to float32 in a hot path, adds a
mutable default, or allocates a stray (L, L) buffer fails here — with a
file:line finding — unless it is explicitly suppressed or added to the
reviewed policy table.
"""

from repro.statics import lint_package


def test_repro_package_is_lint_clean():
    report = lint_package()
    assert report.parse_errors == []
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    # Sanity: the run actually covered the tree.
    assert report.files_scanned > 50


def test_policy_waivers_are_exercised():
    """The fig16 overhead paths and mask constructors really are waived
    (guards against the policy table silently rotting as files move)."""
    report = lint_package()
    assert report.exempted > 0


def test_inline_suppressions_are_exercised():
    """The tree documents its deliberate exceptions inline (TCBServer's
    wall clock); if those lines disappear, so should the directives."""
    report = lint_package()
    assert report.suppressed > 0
