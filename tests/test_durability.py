"""Tests for the durability plane: snapshot/journal, crash + restore.

The headline claim (ISSUE 7): crash-at-any-step + restore must
reproduce the uninterrupted run's terminal ledger **bit-for-bit** per
seed — for every serving loop — and the conservation invariant
``served + expired + rejected + abandoned (+ shed inside rejected)
== arrived`` holds exactly across the crash boundary.
"""

import pytest

from repro.config import BatchConfig
from repro.durability import (
    CommitRecord,
    DispatchRecord,
    DurabilityConfig,
    DurabilityPlane,
    EnqueueRecord,
    Journal,
    RequeueRecord,
    ShedRecord,
    TerminalRecord,
    digest_diff,
    ledger_digest,
    record_from_dict,
    records_from_jsonl,
    restore_state,
    trace_digest,
)
from repro.engine.concat import ConcatEngine
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.faults.plan import SchedulerCrash, SchedulerCrashed
from repro.obs.export import PID_DURABILITY, chrome_trace, validate_chrome_trace
from repro.obs.recorder import Tracer
from repro.overload import OverloadConfig, OverloadController, QueueLimits
from repro.scheduling.das import DASScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.server import TCBServer
from repro.serving.simulator import ServingSimulator
from repro.types import Request, make_requests
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=4, row_length=20)
HORIZON = 12.0


def _workload(seed=0, rate=40.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=8, spread=4, low=3, high=20
        ),
        deadlines=DeadlineModel(base_slack=4.0, jitter=0.5),
        horizon=HORIZON,
        seed=seed,
    ).generate()


def _engine(seed=0):
    return FaultyEngine(
        ConcatEngine(BATCH),
        FaultPlan(
            FaultConfig(
                failure_rate=0.15,
                straggler_rate=0.1,
                oom_rate=0.05,
                crash_rate=0.03,
                downtime=0.2,
            ),
            seed=seed,
        ),
    )


def _overload():
    return OverloadController(
        OverloadConfig(limits=QueueLimits(max_requests=64))
    )


# --------------------------------------------------------------------- #
# Loop factories: (reference_run, crashed_run) builders per loop kind.
# Each returns (metrics, tracer) so the digests can be compared.
# --------------------------------------------------------------------- #


def _run_simulator(requests, seed, plane=None, resume=None, overload=False):
    tr = Tracer()
    sim = ServingSimulator(
        DASScheduler(BATCH),
        _engine(seed),
        trace=tr,
        overload=_overload() if overload else None,
        durability=plane,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume).metrics
    return m, tr


def _run_cluster(requests, seed, plane=None, resume=None, overload=False):
    tr = Tracer()
    sim = ClusterSimulator(
        DASScheduler(BATCH),
        [_engine(seed * 10 + i) for i in range(3)],
        trace=tr,
        overload=_overload() if overload else None,
        durability=plane,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume).metrics
    return m, tr


def _run_continuous(requests, seed, plane=None, resume=None, overload=False):
    tr = Tracer()
    sim = ContinuousBatchingSimulator(
        BATCH,
        seed=seed,
        fault_plan=FaultPlan(
            FaultConfig(
                failure_rate=0.1, oom_rate=0.05, crash_rate=0.03, downtime=0.2
            ),
            seed=seed,
        ),
        trace=tr,
        overload=_overload() if overload else None,
        durability=plane,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume)
    return m, tr


LOOPS = {
    "simulator": _run_simulator,
    "cluster": _run_cluster,
    "continuous": _run_continuous,
}


def _crash_and_restore(run, requests, seed, *, step, phase, k, overload=False):
    """One crash/restore cycle; returns (metrics, tracer) or None if the
    planned crash never fired (run ended first / step had no dispatch)."""
    plane = DurabilityPlane(
        DurabilityConfig(
            checkpoint_every=k, crash=SchedulerCrash(step, phase=phase)
        )
    )
    try:
        run(requests, seed, plane=plane, overload=overload)
        return None
    except SchedulerCrashed as crash:
        assert crash.step == step
        assert crash.phase == phase
    state = plane.restore()
    return run(requests, seed, plane=plane, resume=state, overload=overload)


class TestDifferentialCrashRestore:
    """Crash anywhere, restore, finish: terminal ledger bit-identical."""

    @pytest.mark.parametrize("loop", sorted(LOOPS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [1, 5, 0])
    def test_ledger_and_trace_bit_identical(self, loop, seed, k):
        run = LOOPS[loop]
        requests = _workload(seed)
        ref_m, ref_tr = run(requests, seed)
        ref_led, ref_trd = ledger_digest(ref_m), trace_digest(ref_tr)

        # Probe the step count once, then crash at early/middle/late.
        probe = DurabilityPlane(DurabilityConfig())
        run(requests, seed, plane=probe)
        nsteps = probe.step
        assert nsteps >= 6, "workload too short to crash meaningfully"

        fired = 0
        for step in (1, nsteps // 2, nsteps - 2):
            for phase in ("step", "dispatch"):
                out = _crash_and_restore(
                    run, requests, seed, step=step, phase=phase, k=k
                )
                if out is None:
                    continue  # that step had no dispatch to crash in
                fired += 1
                m, tr = out
                led, trd = ledger_digest(m), trace_digest(tr)
                assert led == ref_led, "; ".join(
                    digest_diff(led, ref_led)[:5]
                )
                assert trd == ref_trd, "; ".join(
                    digest_diff(trd, ref_trd)[:5]
                )
                m.assert_conservation()
                tr.reconcile(m)
        assert fired >= 3, "too few crash points actually fired"

    @pytest.mark.parametrize("loop", sorted(LOOPS))
    def test_with_overload_plane(self, loop):
        """Shedding/denial terminals cross the boundary exactly too."""
        run = LOOPS[loop]
        requests = _workload(3, rate=100.0)
        ref_m, ref_tr = run(requests, 3, overload=True)
        ref_led, ref_trd = ledger_digest(ref_m), trace_digest(ref_tr)
        probe = DurabilityPlane(DurabilityConfig())
        run(requests, 3, plane=probe, overload=True)
        nsteps = probe.step
        out = _crash_and_restore(
            run, requests, 3, step=nsteps // 2, phase="step", k=4,
            overload=True,
        )
        assert out is not None
        m, tr = out
        assert ledger_digest(m) == ref_led
        assert trace_digest(tr) == ref_trd
        m.assert_conservation()
        tr.reconcile(m)

    def test_double_restore_is_repeatable(self):
        """restore() twice from one journal -> two identical states."""
        requests = _workload(0)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=3, crash=SchedulerCrash(4))
        )
        with pytest.raises(SchedulerCrashed):
            _run_simulator(requests, 0, plane=plane)
        a = restore_state(plane.journal)
        b = restore_state(plane.journal)
        assert a.queue is not b.queue
        assert ledger_digest(a.metrics) == ledger_digest(b.metrics)
        assert a.queue.waiting_ids() == b.queue.waiting_ids()
        assert a.now == b.now and a.step == b.step


class TestInertByDefault:
    """durability=None and plane-enabled runs are bit-identical."""

    @pytest.mark.parametrize("loop", sorted(LOOPS))
    def test_plane_does_not_perturb_run(self, loop):
        run = LOOPS[loop]
        requests = _workload(1)
        ref_m, ref_tr = run(requests, 1)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=4, verify_replay=True)
        )
        m, tr = run(requests, 1, plane=plane)
        assert ledger_digest(m) == ledger_digest(ref_m)
        assert trace_digest(tr) == trace_digest(ref_tr)

    def test_all_default_config_takes_pre_durability_paths(self):
        requests = _workload(0)
        sim = ServingSimulator(DASScheduler(BATCH), _engine(0))
        assert sim.durability is None
        m = sim.run(requests, horizon=HORIZON).metrics
        m.assert_conservation()

    def test_resume_requires_plane(self):
        requests = _workload(0)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=2, crash=SchedulerCrash(3))
        )
        with pytest.raises(SchedulerCrashed):
            _run_simulator(requests, 0, plane=plane)
        state = plane.restore()
        sim = ServingSimulator(DASScheduler(BATCH), _engine(0))
        with pytest.raises(ValueError, match="resume"):
            sim.run(requests, horizon=HORIZON, resume=state)

    @pytest.mark.parametrize("loop", sorted(LOOPS))
    def test_restore_refuses_after_clean_completion(self, loop):
        # Resuming a run whose end-of-run sweep already sealed the
        # ledger would re-apply the sweep (double-counted expiries), so
        # the plane refuses; restore_state still works for inspection.
        run = LOOPS[loop]
        requests = _workload(0)
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=2))
        run(requests, 0, plane=plane)
        with pytest.raises(ValueError, match="completed cleanly"):
            plane.restore()
        assert restore_state(plane.journal).step >= plane.step


class TestVerifyReplay:
    def test_self_audit_passes_on_healthy_run(self):
        requests = _workload(2)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=2, verify_replay=True)
        )
        m, _ = _run_simulator(requests, 2, plane=plane)
        m.assert_conservation()

    def test_tampered_journal_fails_the_audit(self):
        requests = _workload(2)
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=0))
        _run_simulator(requests, 2, plane=plane)
        # Drop a committed served-terminal: replay now disagrees with
        # what the commits claim.
        journal = plane.journal
        idx = next(
            i
            for i, r in enumerate(journal.records)
            if isinstance(r, TerminalRecord) and r.terminal == "served"
        )
        del journal.records[idx]
        restored = restore_state(journal)
        assert restored.metrics.num_served < plane.journal.audit()[
            "terminals"
        ]["served"] + restored.metrics.num_served


class TestJournal:
    def _filled(self):
        requests = _workload(0)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=3, crash=SchedulerCrash(5))
        )
        with pytest.raises(SchedulerCrashed):
            _run_simulator(requests, 0, plane=plane)
        return plane.journal

    def test_audit_exactly_once(self):
        journal = self._filled()
        audit = journal.audit()
        assert audit["duplicate_terminals"] == []
        assert audit["records"] == len(journal)
        assert audit["snapshots"] >= 2  # genesis + at least one periodic

    def test_uncommitted_records_are_the_crash_debris(self):
        journal = self._filled()
        uncommitted = journal.uncommitted_records()
        last = journal.last_committed_step()
        assert all(r.step > last for r in uncommitted)

    def test_prune_uncommitted_removes_exactly_the_debris(self):
        journal = self._filled()
        before = len(journal)
        debris = journal.uncommitted_records()
        voided = journal.prune_uncommitted()
        assert voided == debris
        assert len(journal) == before - len(debris)
        assert journal.uncommitted_records() == []

    def test_jsonl_round_trip(self):
        journal = self._filled()
        text = journal.to_jsonl()
        rebuilt = records_from_jsonl(text)
        originals = [
            r for r in journal.records if not isinstance(r, CommitRecord)
        ]
        assert len(rebuilt) == len(originals)
        for a, b in zip(rebuilt, originals):
            assert type(a) is type(b)
            assert a.to_dict() == b.to_dict()

    def test_restore_without_snapshot_raises(self):
        with pytest.raises(ValueError, match="no snapshot"):
            restore_state(Journal())


class TestRecords:
    def test_terminal_kind_validated(self):
        r = make_requests([5], deadlines=[1.0])[0]
        with pytest.raises(ValueError, match="terminal"):
            TerminalRecord(step=0, terminal="vanished", requests=(r,))

    def test_commit_kind_not_round_trippable(self):
        with pytest.raises(ValueError, match="commit"):
            record_from_dict({"kind": "commit", "step": 0})

    def test_request_tokens_survive_round_trip(self):
        req = Request(
            request_id=3,
            length=4,
            arrival=0.5,
            deadline=2.0,
            tokens=(1, 2, 3, 4),
            weight=2.0,
        )
        rec = EnqueueRecord(step=1, request=req, submit_time=0.5)
        back = record_from_dict(rec.to_dict())
        assert back.request == req
        assert back.submit_time == 0.5
        bare = make_requests([5], deadlines=[1.0])[0]  # tokens=None
        rec2 = DispatchRecord(step=2, requests=(bare,), resident=True)
        back2 = record_from_dict(rec2.to_dict())
        assert back2.requests == (bare,)
        assert back2.resident

    def test_requeue_and_shed_round_trip(self):
        reqs = tuple(make_requests([5, 6], deadlines=[9.0, 9.0]))
        rec = RequeueRecord(
            step=3, attempts=((0, 2), (1, 1)), retained=reqs, readd=True
        )
        back = record_from_dict(rec.to_dict())
        assert back.attempts == ((0, 2), (1, 1))
        assert back.retained == reqs
        assert back.readd
        shed = ShedRecord(step=4, requests=reqs)
        assert record_from_dict(shed.to_dict()).requests == reqs

    def test_config_validation(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            DurabilityConfig(checkpoint_every=-1)
        with pytest.raises(ValueError, match="step"):
            SchedulerCrash(step=-1)
        with pytest.raises(ValueError, match="phase"):
            SchedulerCrash(step=0, phase="nowhere")

    def test_seeded_crash_is_deterministic(self):
        a = SchedulerCrash.seeded(7, max_step=50)
        b = SchedulerCrash.seeded(7, max_step=50)
        assert a == b
        assert 0 <= a.step < 50


class TestChromeTraceLane:
    def test_durability_lane_is_conditional(self):
        requests = _workload(0)
        _, tr = _run_simulator(requests, 0)
        plain = chrome_trace(tr)
        assert PID_DURABILITY not in {e["pid"] for e in plain["traceEvents"]}

        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=3))
        _, tr2 = _run_simulator(requests, 0, plane=plane)
        doc = chrome_trace(tr2)
        validate_chrome_trace(doc)
        lane = [
            e
            for e in doc["traceEvents"]
            if e["pid"] == PID_DURABILITY and e["ph"] == "i"
        ]
        assert "snapshot" in {e["name"] for e in lane}
        assert any(
            e["ph"] == "M" and e["pid"] == PID_DURABILITY
            for e in doc["traceEvents"]
        )

    def test_crash_and_restore_events_exported(self):
        requests = _workload(0)
        plane = DurabilityPlane(
            DurabilityConfig(checkpoint_every=2, crash=SchedulerCrash(4))
        )
        with pytest.raises(SchedulerCrashed):
            _run_simulator(requests, 0, plane=plane)
        plane.restore()
        _, tr = _run_simulator(
            requests, 0, plane=plane, resume=plane.restore()
        )
        doc = chrome_trace(tr)
        validate_chrome_trace(doc)
        kinds = {
            e["name"]
            for e in doc["traceEvents"]
            if e["pid"] == PID_DURABILITY
        }
        assert "restore" in kinds


class TestServerWarmRestart:
    def _server(self, plane):
        return TCBServer(seed=0, durability=plane)

    def test_exactly_once_across_restart(self):
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=1))
        s1 = self._server(plane)
        ids = [s1.submit([1, 2, 3, 4]) for _ in range(6)]
        served_pre = [r.request_id for r in s1.step()]
        s1.step()  # tick commits the serving step
        wal_ids = [s1.submit([5, 6, 7]) for _ in range(3)]  # acked, WAL-only

        s2 = self._server(plane)
        state = s2.warm_restart()
        recovered = {req.request_id for req, _ in state.recovered}
        assert recovered == set(wal_ids)
        served_post = [r.request_id for r in s2.run_until_drained()]
        # Exactly once: no id served twice, none lost.
        assert not set(served_pre) & set(served_post)
        assert set(served_pre) | set(served_post) == set(ids + wal_ids)
        s2.metrics.assert_conservation()

    def test_outputs_regenerate_identically(self):
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=1))
        s1 = self._server(plane)
        for _ in range(4):
            s1.submit([1, 2, 3])
        s2 = self._server(plane)
        s2.warm_restart()
        out = {r.request_id: r.output_tokens for r in s2.run_until_drained()}

        ref = TCBServer(seed=0)
        for _ in range(4):
            ref.submit([1, 2, 3])
        ref_out = {
            r.request_id: r.output_tokens for r in ref.run_until_drained()
        }
        assert out == ref_out

    def test_duplicate_suppression_on_committed_enqueues(self):
        """A WAL enqueue that also committed must not be added twice."""
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=1))
        s1 = self._server(plane)
        rid = s1.submit([1, 2, 3, 4, 5])
        s1.step(), s1.step(), s1.step()  # serve + commit
        s2 = self._server(plane)
        state = s2.warm_restart()
        assert rid not in {req.request_id for req, _ in state.recovered}
        assert s2.pending == 0
        assert rid in {r.request_id for r in s2.metrics.served}

    def test_restart_without_plane_raises(self):
        with pytest.raises(ValueError, match="durability"):
            TCBServer(seed=0).warm_restart()

    def test_checkpoint_every_kwarg_builds_plane(self):
        s = TCBServer(seed=0, checkpoint_every=2)
        assert s.durability is not None
        assert s.durability.config.checkpoint_every == 2
        assert TCBServer(seed=0).durability is None

    def test_submit_ids_continue_after_restart(self):
        plane = DurabilityPlane(DurabilityConfig(checkpoint_every=1))
        s1 = self._server(plane)
        ids = [s1.submit([1, 2]) for _ in range(3)]
        s2 = self._server(plane)
        s2.warm_restart()
        nxt = s2.submit([3, 4])
        assert nxt not in ids
        assert nxt == max(ids) + 1
