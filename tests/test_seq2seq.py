"""End-to-end model tests: the paper's §4.1 correctness claims.

The decisive property: running requests *concatenated* (with separate PE
and the masked attention) produces bit-for-bit (up to float tolerance)
the same encoder states and the same greedy decodes as running each
request alone.  We also verify the converse — that *omitting* either
customisation breaks correctness — which is the paper's motivation for
them.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit
from repro.core.slotting import pack_into_slots
from repro.model.params import init_seq2seq
from repro.model.seq2seq import Seq2SeqModel

ATOL = 1e-9


def _concat_layout(requests, rows, cap):
    res = pack_first_fit(requests, num_rows=rows, row_length=cap)
    assert not res.rejected
    res.layout.validate()
    return res.layout


class TestEncoderCorrectness:
    def test_concat_encode_equals_single(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 3, 7, 2, 6, 4])
        layout = _concat_layout(reqs, rows=2, cap=16)
        enc = tiny_model.encode_layout(layout)
        for k, seg in layout.segments():
            single = tiny_model.encode_single(seg.request.tokens)[0]
            np.testing.assert_allclose(
                enc[k, seg.start : seg.end], single, atol=ATOL
            )

    def test_slotted_encode_equals_pure(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([3, 4, 2, 4, 3, 1])
        res = pack_into_slots(reqs, num_rows=2, row_length=12, slot_size=4)
        assert not res.rejected
        pure = tiny_model.encode_layout(res.layout, slotted=False)
        slotted = tiny_model.encode_layout(res.layout, slotted=True)
        seg = res.layout.segment_id_matrix()
        valid = seg >= 0
        np.testing.assert_allclose(slotted[valid], pure[valid], atol=ATOL)

    def test_naive_pe_breaks_correctness(self, tiny_model, tokenized_requests):
        """Without separate PE (Fig. 5a), the second concatenated request
        is encoded at shifted positions and the result changes."""
        reqs = tokenized_requests([4, 4])
        layout = _concat_layout(reqs, rows=1, cap=8)
        wrong = tiny_model.encode_layout(layout, separate_pe=False)
        seg2 = layout.rows[0].segments[1]
        single = tiny_model.encode_single(seg2.request.tokens)[0]
        assert not np.allclose(wrong[0, seg2.start : seg2.end], single, atol=1e-6)

    def test_missing_mask_breaks_correctness(self, tiny_model, tokenized_requests):
        """Without the Eq. 6 mask, requests attend across the row and the
        result is contaminated (the paper's 'wrong results' claim)."""
        reqs = tokenized_requests([4, 4])
        layout = _concat_layout(reqs, rows=1, cap=8)
        wrong = tiny_model.encode_layout(layout, concat_mask=False)
        seg1 = layout.rows[0].segments[0]
        single = tiny_model.encode_single(seg1.request.tokens)[0]
        assert not np.allclose(wrong[0, seg1.start : seg1.end], single, atol=1e-6)

    def test_naive_layout_matches_single_too(self, tiny_model, tokenized_requests):
        """Sanity: classic one-request-per-row padding is also exact."""
        reqs = tokenized_requests([5, 2, 7])
        layout = BatchLayout.naive(reqs)
        enc = tiny_model.encode_layout(layout)
        for k, seg in layout.segments():
            single = tiny_model.encode_single(seg.request.tokens)[0]
            np.testing.assert_allclose(
                enc[k, seg.start : seg.end], single, atol=ATOL
            )

    def test_embed_shape_mismatch_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="differ"):
            tiny_model.embed(
                np.zeros((1, 3), dtype=np.int64), np.zeros((1, 4), dtype=np.int64)
            )


class TestDecoderCorrectness:
    def test_concat_decode_equals_single(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 3, 6, 2])
        layout = _concat_layout(reqs, rows=2, cap=10)
        gen = tiny_model.greedy_decode(layout, max_new_tokens=6)
        for _, seg in layout.segments():
            ref = tiny_model.greedy_decode_single(seg.request.tokens, max_new_tokens=6)
            assert gen.outputs[seg.request.request_id] == ref

    def test_completion_steps_recorded(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 4])
        layout = _concat_layout(reqs, rows=1, cap=8)
        gen = tiny_model.greedy_decode(layout, max_new_tokens=3)
        for r in reqs:
            assert 1 <= gen.completion_step[r.request_id] <= 3
            assert len(gen.outputs[r.request_id]) <= 3

    def test_empty_layout(self, tiny_model):
        layout = BatchLayout(num_rows=2, row_length=8)
        gen = tiny_model.greedy_decode(layout)
        assert gen.outputs == {}
        assert gen.steps_run == 0

    def test_decode_budget_respected(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([3])
        layout = _concat_layout(reqs, rows=1, cap=4)
        gen = tiny_model.greedy_decode(layout, max_new_tokens=2)
        assert len(gen.outputs[reqs[0].request_id]) <= 2


class TestParams:
    def test_init_deterministic(self, tiny_config):
        a = init_seq2seq(tiny_config, seed=5)
        b = init_seq2seq(tiny_config, seed=5)
        np.testing.assert_array_equal(a.embedding, b.embedding)
        np.testing.assert_array_equal(
            a.encoder_layers[0].self_attn.w_q, b.encoder_layers[0].self_attn.w_q
        )

    def test_different_seeds_differ(self, tiny_config):
        a = init_seq2seq(tiny_config, seed=5)
        b = init_seq2seq(tiny_config, seed=6)
        assert not np.allclose(a.embedding, b.embedding)

    def test_num_parameters_positive_and_stable(self, tiny_config):
        p = init_seq2seq(tiny_config, seed=0)
        n = p.num_parameters()
        assert n > 0
        assert n == p.num_parameters()

    def test_layer_counts(self, tiny_config):
        p = init_seq2seq(tiny_config, seed=0)
        assert len(p.encoder_layers) == tiny_config.num_encoder_layers
        assert len(p.decoder_layers) == tiny_config.num_decoder_layers
