"""Tests for Algorithm 1 (DAS)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler, das_row_parts
from repro.types import Request, make_requests


def _req(rid, length, deadline=math.inf, arrival=0.0):
    return Request(request_id=rid, length=length, arrival=arrival, deadline=deadline)


class TestDasRowParts:
    def test_prefix_is_utility_dominant(self):
        # Sorted by utility: lengths 2,3,4,5,6 -> s=3 fit in L=10 (2+3+4=9).
        cands = [_req(i, l) for i, l in enumerate([2, 3, 4, 5, 6])]
        n_u, n_d, rest = das_row_parts(cands, row_length=10, eta=0.5, q=0.5)
        # p = max(1, floor(0.5*3)) = 1.
        assert [r.request_id for r in n_u] == [0]
        # v̄ = 1/2, threshold = 1/4 → N^D = lengths ≤ 4, i.e. requests 1, 2.
        assert {r.request_id for r in n_d} == {1, 2}
        assert {r.request_id for r in rest} == {3, 4}

    def test_deadline_sorting_in_nd(self):
        cands = [
            _req(0, 2),
            _req(1, 3, deadline=9.0),
            _req(2, 3, deadline=1.0),
            _req(3, 3, deadline=5.0),
        ]
        _, n_d, _ = das_row_parts(cands, row_length=8, eta=0.5, q=0.5)
        assert [r.request_id for r in n_d] == [2, 3, 1]

    def test_oversize_head_degenerates(self):
        cands = [_req(0, 50), _req(1, 60)]
        n_u, n_d, rest = das_row_parts(cands, row_length=10, eta=0.5, q=0.5)
        assert n_u == [] and n_d == []
        assert len(rest) == 2

    def test_p_at_least_one(self):
        cands = [_req(0, 5), _req(1, 6)]
        n_u, _, _ = das_row_parts(cands, row_length=5, eta=0.1, q=0.9)
        assert len(n_u) == 1  # floor(0.1 * 1) = 0 → clamped to 1


class TestDASScheduler:
    def _sched(self, rows=2, L=10, eta=0.5, q=0.5):
        return DASScheduler(
            BatchConfig(num_rows=rows, row_length=L),
            SchedulerConfig(eta=eta, q=q),
            record_parts=True,
        )

    def test_all_fit_fast_path(self):
        """Algorithm 1 lines 4–5: everything goes into the current row."""
        sched = self._sched(rows=3, L=100)
        reqs = make_requests([5, 10, 20], start_id=0)
        d = sched.select(reqs)
        assert d.num_selected == 3
        assert len(d.rows) == 1  # one row swallowed everything

    def test_decision_satisfies_constraints(self):
        sched = self._sched(rows=2, L=10)
        reqs = make_requests([3, 4, 5, 6, 7, 2, 2], start_id=0)
        d = sched.select(reqs)
        d.validate(sched.batch)  # Eq. 10 and Eq. 11

    def test_requests_longer_than_row_never_selected(self):
        sched = self._sched(rows=2, L=10)
        reqs = make_requests([15, 3, 12], start_id=0)
        d = sched.select(reqs)
        assert all(r.length <= 10 for r in d.selected())

    def test_utility_dominant_requests_always_selected(self):
        """The shortest (highest-utility) requests must be in the batch."""
        sched = self._sched(rows=1, L=10)
        reqs = make_requests([2, 9, 9, 9, 9], start_id=0)
        d = sched.select(reqs)
        assert reqs[0].request_id in {r.request_id for r in d.selected()}

    def test_deadline_awareness_beats_pure_utility(self):
        """An urgent request with decent utility displaces a relaxed one
        of slightly higher utility (the motivation of §5.2)."""
        sched = self._sched(rows=1, L=10, eta=0.5, q=0.5)
        reqs = [
            _req(0, 2, deadline=100.0),  # utility dominant (p=1)
            _req(1, 4, deadline=100.0),  # relaxed
            _req(2, 5, deadline=1.0),  # urgent, utility 0.2 ≥ q·v̄ = 0.25? no
            _req(3, 4, deadline=1.0),  # urgent, utility 0.25 ≥ 0.25 ✓
        ]
        d = sched.select(reqs)
        chosen = {r.request_id for r in d.selected()}
        assert 0 in chosen
        assert 3 in chosen  # urgent deadline-aware pick goes first

    def test_record_parts(self):
        sched = self._sched(rows=2, L=10)
        reqs = make_requests([2, 3, 4, 5, 6, 7], start_id=0)
        sched.select(reqs)
        assert len(sched.last_parts) == len(sched.select(reqs).rows)

    def test_runtime_measured(self):
        sched = self._sched()
        d = sched.select(make_requests([3, 4], start_id=0))
        assert d.runtime > 0

    def test_empty_waiting_set(self):
        d = self._sched().select([])
        assert d.rows == []
        assert d.num_selected == 0

    def test_rows_never_exceed_batch(self):
        sched = self._sched(rows=3, L=5)
        reqs = make_requests([5] * 50, start_id=0)
        d = sched.select(reqs)
        assert len(d.rows) <= 3
        assert d.num_selected == 3  # one 5-token request per row

    @given(
        lengths=st.lists(st.integers(1, 20), min_size=1, max_size=40),
        rows=st.integers(1, 5),
        cap=st.integers(1, 30),
        eta=st.floats(0.05, 0.95),
        q=st.floats(0.05, 0.95),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_constraints_always_hold(self, lengths, rows, cap, eta, q):
        sched = DASScheduler(
            BatchConfig(num_rows=rows, row_length=cap),
            SchedulerConfig(eta=eta, q=q),
        )
        reqs = make_requests(lengths, start_id=0)
        d = sched.select(reqs)
        d.validate(sched.batch)
        chosen = {r.request_id for r in d.selected()}
        assert chosen <= {r.request_id for r in reqs}

    @given(
        lengths=st.lists(st.integers(1, 10), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_greedy_saturation(self, lengths):
        """If anything is left unselected, no selected row can fit the
        smallest leftover (DAS back-fills greedily, lines 13–15)."""
        sched = DASScheduler(BatchConfig(num_rows=2, row_length=12))
        reqs = make_requests(lengths, start_id=0)
        d = sched.select(reqs)
        chosen = {r.request_id for r in d.selected()}
        leftover = [r for r in reqs if r.request_id not in chosen and r.length <= 12]
        if leftover and len(d.rows) == 2:
            smallest = min(r.length for r in leftover)
            for row in d.rows:
                assert 12 - sum(r.length for r in row) < smallest
