"""Tests for the encoder-only classifier substrate."""

import numpy as np
import pytest

from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit
from repro.core.slotting import pack_into_slots
from repro.engine.cost_model import GPUCostModel
from repro.model.classifier import ClassifierModel


@pytest.fixture(scope="module")
def clf(tiny_config):
    return ClassifierModel(tiny_config, num_classes=4, seed=3)


def _layout(reqs, rows=2, cap=16):
    res = pack_first_fit(reqs, num_rows=rows, row_length=cap)
    assert not res.rejected
    return res.layout


class TestClassifier:
    def test_concat_classification_equals_isolated(self, clf, tokenized_requests):
        """The §4.1 correctness claim for classification services."""
        reqs = tokenized_requests([5, 3, 7, 2, 6])
        layout = _layout(reqs)
        joint = clf.classify(layout)
        for r in reqs:
            assert joint[r.request_id] == clf.classify_single(r.tokens)

    def test_logits_exact_not_just_argmax(self, clf, tokenized_requests):
        reqs = tokenized_requests([4, 6])
        layout = _layout(reqs, rows=1)
        joint = clf.logits(layout)
        for r in reqs:
            states = clf._backbone.encode_single(r.tokens)[0]
            ref = states.mean(axis=0) @ clf.head_w + clf.head_b
            np.testing.assert_allclose(joint[r.request_id], ref, atol=1e-9)

    def test_slotted_layout_same_labels(self, clf, tokenized_requests):
        reqs = tokenized_requests([3, 4, 2, 4])
        res = pack_into_slots(reqs, num_rows=2, row_length=8, slot_size=4)
        labels = clf.classify(res.layout)
        for r in reqs:
            assert labels[r.request_id] == clf.classify_single(r.tokens)

    def test_labels_in_range(self, clf, tokenized_requests):
        reqs = tokenized_requests([5, 5, 5])
        labels = clf.classify(_layout(reqs, rows=1))
        assert all(0 <= l < 4 for l in labels.values())

    def test_num_classes_validated(self, tiny_config):
        with pytest.raises(ValueError, match="num_classes"):
            ClassifierModel(tiny_config, num_classes=1)

    def test_deterministic_by_seed(self, tiny_config, tokenized_requests):
        reqs = tokenized_requests([4, 5])
        layout = _layout(reqs, rows=1)
        a = ClassifierModel(tiny_config, 3, seed=9).classify(layout)
        b = ClassifierModel(tiny_config, 3, seed=9).classify(layout)
        assert a == b

    def test_encoder_only_batches_are_cheaper(self, tokenized_requests):
        """Classification slots skip the decode pass in the cost model."""
        cm = GPUCostModel.calibrated()
        reqs = tokenized_requests([10] * 8)
        layout = _layout(reqs, rows=2, cap=40)
        enc_only = cm.layout_time(layout, include_decode=False)
        with_decode = cm.layout_time(layout, include_decode=True)
        assert enc_only < with_decode
        assert with_decode == pytest.approx(enc_only * (1 + cm.decode_factor))
