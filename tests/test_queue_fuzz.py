"""Property-based fuzz suite for the indexed ``RequestQueue``.

Random interleavings of every queue operation are applied in lock-step
to the fast queue and to ``_ReferenceRequestQueue`` (the pre-ISSUE-8
dict+scan implementation, kept verbatim as the oracle).  After *every*
op the two must agree on all observable state — waiting set and its
sorted views, ledgers, ``queued_tokens``, ``queue_delay`` — and the
conservation invariant must hold: every request ever added is in
exactly one of {waiting, expired, abandoned, served, taken-by-caller}.

Seeded through :mod:`repro.rng` (TCB002 — replayable from the seed
alone, no global RNG).
"""

import pytest

from repro.rng import ensure_rng
from repro.scheduling.queue import RequestQueue, _ReferenceRequestQueue
from repro.types import Request


def _ids(requests):
    return [r.request_id for r in requests]


def _assert_same_state(fast: RequestQueue, ref: _ReferenceRequestQueue, now):
    assert fast.waiting_ids() == ref.waiting_ids()
    assert fast.queued_tokens == ref.queued_tokens
    assert len(fast) == len(ref)
    assert _ids(fast.expired) == _ids(ref.expired)
    assert _ids(fast.abandoned) == _ids(ref.abandoned)
    assert fast.served_ids == ref.served_ids
    assert fast.queue_delay(now) == ref.queue_delay(now)

    fast_view = fast.waiting(now)
    ref_view = ref.waiting(now)
    assert _ids(fast_view) == _ids(ref_view)
    # The maintained sorted views must equal explicit total-order sorts
    # of the reference's plain list.
    assert _ids(fast_view.by_utility) == _ids(
        sorted(ref_view, key=lambda r: (-r.utility, r.request_id))
    )
    assert _ids(fast_view.by_arrival) == _ids(
        sorted(ref_view, key=lambda r: (r.arrival, r.request_id))
    )


def _assert_conservation(queue: RequestQueue, added, taken_out):
    """Every added id is in exactly one terminal/waiting bucket."""
    buckets = [
        set(queue.waiting_ids()),
        {r.request_id for r in queue.expired},
        {r.request_id for r in queue.abandoned},
        set(queue.served_ids),
        taken_out,
    ]
    union = set()
    total = 0
    for b in buckets:
        union |= b
        total += len(b)
    assert union == added
    assert total == len(added), "a request is in two buckets at once"


def _fuzz_once(seed: int, steps: int = 400) -> None:
    rng = ensure_rng(seed)
    fast = RequestQueue()
    ref = _ReferenceRequestQueue()
    now = 0.0
    next_id = 0
    added: set[int] = set()
    # Requests removed via take() whose ownership is with the caller.
    in_flight: dict[int, Request] = {}
    taken_out: set[int] = set()

    for _step in range(steps):
        op = rng.choice(
            ["add", "add", "add", "expire", "take", "drop", "requeue",
             "abandon", "serve", "tick"]
        )
        if op == "add":
            length = int(rng.integers(1, 20))
            arrival = now + float(rng.uniform(0.0, 0.5))
            r = Request(
                request_id=next_id,
                length=length,
                arrival=arrival,
                deadline=arrival + float(rng.uniform(0.1, 4.0)),
                weight=float(rng.choice([0.5, 1.0, 1.0, 2.0])),
            )
            next_id += 1
            added.add(r.request_id)
            fast.add(r)
            ref.add(r)
        elif op == "expire":
            now += float(rng.uniform(0.0, 1.0))
            assert _ids(fast.expire(now)) == _ids(ref.expire(now))
        elif op == "tick":
            now += float(rng.uniform(0.0, 0.3))
        else:
            waiting = list(fast.waiting(now))
            if op == "requeue":
                pool = list(in_flight.values())
                if not pool:
                    continue
                k = int(rng.integers(1, len(pool) + 1))
                picks = [pool[i] for i in rng.choice(len(pool), size=k, replace=False)]
                fast.requeue(picks)
                ref.requeue(picks)
                for r in picks:
                    del in_flight[r.request_id]
                    taken_out.discard(r.request_id)
            else:
                if not waiting:
                    continue
                k = int(rng.integers(1, min(6, len(waiting)) + 1))
                picks = [
                    waiting[i]
                    for i in rng.choice(len(waiting), size=k, replace=False)
                ]
                if op == "take":
                    ft = fast.take(picks)
                    rt = ref.take(picks)
                    assert _ids(ft) == _ids(rt)
                    for r in ft:
                        in_flight[r.request_id] = r
                        taken_out.add(r.request_id)
                elif op == "drop":
                    fast.drop(picks)
                    ref.drop(picks)
                elif op == "abandon":
                    fast.abandon(picks)
                    ref.abandon(picks)
                elif op == "serve":
                    fast.remove_served(picks)
                    ref.remove_served(picks)
        _assert_same_state(fast, ref, now)
        _assert_conservation(fast, added, taken_out)

    # Drain: everything left expires eventually.
    assert _ids(fast.expire(now + 100.0)) == _ids(ref.expire(now + 100.0))
    _assert_same_state(fast, ref, now + 100.0)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_interleavings(seed):
    _fuzz_once(seed)


def test_fuzz_heavy_churn():
    """A longer run to push the heaps through several compactions."""
    _fuzz_once(99, steps=1500)


class TestQueueDelayStaleness:
    """Lazy-deleted heap entries must never resurrect head-of-line age
    (satellite task: the arrival-heap rewrite's sharp edge)."""

    def test_removed_head_does_not_linger(self):
        q = RequestQueue()
        old = Request(request_id=0, length=4, arrival=0.0, deadline=50.0)
        young = Request(request_id=1, length=4, arrival=5.0, deadline=50.0)
        q.add(old)
        q.add(young)
        assert q.queue_delay(10.0) == 10.0
        q.remove_served([old])
        # The heap still holds the lazily-deleted entry for ``old``;
        # the delay must come from the *live* head.
        assert q.queue_delay(10.0) == 5.0
        q.remove_served([young])
        assert q.queue_delay(10.0) == 0.0

    def test_requeue_revives_true_age(self):
        q = RequestQueue()
        r = Request(request_id=0, length=4, arrival=1.0, deadline=50.0)
        q.add(r)
        q.take([r])
        assert q.queue_delay(10.0) == 0.0
        q.requeue([r])
        # Back in the queue with its original arrival: age resumes.
        assert q.queue_delay(10.0) == 9.0

    def test_interleaved_take_requeue_matches_reference(self):
        """The incarnation map under rapid take/requeue cycles."""
        fast, ref = RequestQueue(), _ReferenceRequestQueue()
        rng = ensure_rng(7)
        reqs = [
            Request(
                request_id=i,
                length=2,
                arrival=float(i) * 0.25,
                deadline=100.0,
            )
            for i in range(20)
        ]
        for r in reqs:
            fast.add(r)
            ref.add(r)
        for _ in range(200):
            i = int(rng.integers(0, 20))
            r = reqs[i]
            if r.request_id in fast:
                fast.take([r])
                ref.take([r])
            else:
                fast.requeue([r])
                ref.requeue([r])
            now = float(rng.uniform(5.0, 20.0))
            assert fast.queue_delay(now) == ref.queue_delay(now)
            assert fast.waiting_ids() == ref.waiting_ids()

    def test_expired_head_does_not_linger(self):
        q = RequestQueue()
        old = Request(request_id=0, length=4, arrival=0.0, deadline=1.0)
        young = Request(request_id=1, length=4, arrival=2.0, deadline=50.0)
        q.add(old)
        q.add(young)
        assert _ids(q.expire(3.0)) == [0]
        assert q.queue_delay(3.0) == 1.0
