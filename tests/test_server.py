"""Tests for the online TCBServer facade (real-model path)."""

import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.serving.server import TCBServer


@pytest.fixture()
def server():
    return TCBServer(
        model_config=ModelConfig.tiny(),
        batch=BatchConfig(num_rows=2, row_length=16),
        seed=11,
        max_new_tokens=4,
    )


class TestTCBServer:
    def test_submit_and_step(self, server, rng):
        rid = server.submit([5, 6, 7])
        assert server.pending == 1
        responses = server.step()
        assert [r.request_id for r in responses] == [rid]
        assert server.pending == 0

    def test_poll_before_and_after(self, server):
        rid = server.submit([5, 6, 7, 8])
        assert server.poll(rid) is None
        server.step()
        resp = server.poll(rid)
        assert resp is not None
        assert resp.latency >= 0
        assert len(resp.output_tokens) <= 4

    def test_batched_requests_match_isolated_inference(self, server):
        """The server's concatenated answers equal per-request decoding —
        the user-facing version of the §4.1 correctness claim."""
        sentences = [[5, 6, 7], [9, 10], [8, 8, 8, 8]]
        rids = [server.submit(s) for s in sentences]
        server.run_until_drained()
        for s, rid in zip(sentences, rids):
            expected = server.model.greedy_decode_single(
                s, max_new_tokens=server.max_new_tokens
            )
            assert server.poll(rid).output_tokens == expected

    def test_empty_submission_rejected(self, server):
        with pytest.raises(ValueError, match="empty"):
            server.submit([])

    def test_oversize_submission_rejected(self, server):
        with pytest.raises(ValueError, match="exceeds"):
            server.submit(list(range(99)))

    def test_step_with_empty_queue(self, server):
        assert server.step() == []

    def test_many_requests_drain(self, server):
        rids = [server.submit([4 + i % 5] * (2 + i % 6)) for i in range(10)]
        server.run_until_drained()
        assert server.pending == 0
        assert all(server.poll(r) is not None for r in rids)

    def test_row_length_must_fit_model(self):
        with pytest.raises(ValueError, match="maximum input length"):
            TCBServer(
                model_config=ModelConfig.tiny(max_len=8),
                batch=BatchConfig(num_rows=2, row_length=64),
            )

    def test_custom_scheduler(self):
        batch = BatchConfig(num_rows=2, row_length=16)
        server = TCBServer(
            model_config=ModelConfig.tiny(),
            batch=batch,
            scheduler=DASScheduler(batch, SchedulerConfig(eta=0.3, q=0.7)),
        )
        rid = server.submit([5, 5, 5])
        server.step()
        assert server.poll(rid) is not None
