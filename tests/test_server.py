"""Tests for the online TCBServer facade (real-model path)."""

import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.serving.server import TCBServer


@pytest.fixture()
def server():
    return TCBServer(
        model_config=ModelConfig.tiny(),
        batch=BatchConfig(num_rows=2, row_length=16),
        seed=11,
        max_new_tokens=4,
    )


class TestTCBServer:
    def test_submit_and_step(self, server, rng):
        rid = server.submit([5, 6, 7])
        assert server.pending == 1
        responses = server.step()
        assert [r.request_id for r in responses] == [rid]
        assert server.pending == 0

    def test_poll_before_and_after(self, server):
        rid = server.submit([5, 6, 7, 8])
        assert server.poll(rid) is None
        server.step()
        resp = server.poll(rid)
        assert resp is not None
        assert resp.latency >= 0
        assert len(resp.output_tokens) <= 4

    def test_batched_requests_match_isolated_inference(self, server):
        """The server's concatenated answers equal per-request decoding —
        the user-facing version of the §4.1 correctness claim."""
        sentences = [[5, 6, 7], [9, 10], [8, 8, 8, 8]]
        rids = [server.submit(s) for s in sentences]
        server.run_until_drained()
        for s, rid in zip(sentences, rids):
            expected = server.model.greedy_decode_single(
                s, max_new_tokens=server.max_new_tokens
            )
            assert server.poll(rid).output_tokens == expected

    def test_empty_submission_rejected(self, server):
        with pytest.raises(ValueError, match="empty"):
            server.submit([])

    def test_oversize_submission_rejected(self, server):
        with pytest.raises(ValueError, match="exceeds"):
            server.submit(list(range(99)))

    def test_step_with_empty_queue(self, server):
        assert server.step() == []

    def test_many_requests_drain(self, server):
        rids = [server.submit([4 + i % 5] * (2 + i % 6)) for i in range(10)]
        server.run_until_drained()
        assert server.pending == 0
        assert all(server.poll(r) is not None for r in rids)

    def test_row_length_must_fit_model(self):
        with pytest.raises(ValueError, match="maximum input length"):
            TCBServer(
                model_config=ModelConfig.tiny(max_len=8),
                batch=BatchConfig(num_rows=2, row_length=64),
            )

    def test_custom_scheduler(self):
        batch = BatchConfig(num_rows=2, row_length=16)
        server = TCBServer(
            model_config=ModelConfig.tiny(),
            batch=batch,
            scheduler=DASScheduler(batch, SchedulerConfig(eta=0.3, q=0.7)),
        )
        rid = server.submit([5, 5, 5])
        server.step()
        assert server.poll(rid) is not None


class TestServerOverload:
    """submit()/step() wired into the overload plane (docs/overload.md)."""

    def _server(self, overload=None, admission=None, rows=2):
        return TCBServer(
            model_config=ModelConfig.tiny(),
            batch=BatchConfig(num_rows=rows, row_length=16),
            seed=11,
            max_new_tokens=2,
            overload=overload,
            admission=admission,
        )

    def test_bounded_queue_raises_backpressure(self):
        from repro.overload import (
            BackpressureError,
            OverloadConfig,
            OverloadController,
            QueueLimits,
        )

        ov = OverloadController(
            OverloadConfig(limits=QueueLimits(max_requests=1))
        )
        server = self._server(overload=ov)
        server.submit([5, 6, 7])
        with pytest.raises(BackpressureError, match="queue-full") as exc:
            server.submit([8, 9])
        assert exc.value.reason == "queue-full"
        assert exc.value.pressure is not None
        # The refusal is a ledgered terminal, not a lost request.
        assert server.metrics.arrived == 2
        assert server.metrics.num_rejected == 1
        # Draining restores capacity.
        server.run_until_drained()
        server.submit([8, 9])
        assert server.pending == 1

    def test_admission_refusal_raises_backpressure(self):
        from repro.overload import BackpressureError
        from repro.serving.admission import AdmissionController

        batch = BatchConfig(num_rows=2, row_length=16)
        server = self._server(admission=AdmissionController(batch))
        with pytest.raises(BackpressureError, match="deadline unreachable"):
            server.submit([5, 6, 7], deadline_slack=0.0)
        assert server.metrics.num_rejected == 1

    def test_degraded_admission_raises_backpressure(self):
        from repro.overload import (
            BackpressureError,
            DegradationConfig,
            OverloadConfig,
            OverloadController,
        )
        from repro.scheduling.queue import RequestQueue
        from repro.types import Request

        ov = OverloadController(
            OverloadConfig(
                degradation=DegradationConfig(
                    shed_min_slack=0.5, brownout_min_slack=30.0
                )
            )
        )
        server = self._server(overload=ov)
        # Age a synthetic queue far past the brownout threshold so the
        # controller degrades (the server shares the controller object).
        stale = RequestQueue()
        stale.add(Request(request_id=999, length=4, arrival=0.0, deadline=500.0))
        ov.update(100.0, stale)
        assert ov.level.label == "brownout"
        with pytest.raises(BackpressureError, match="degraded"):
            server.submit([5, 6, 7], deadline_slack=1.0)  # slack < 30s floor
        assert server.metrics.num_rejected == 1
        # Plenty of slack still gets through even under brownout.
        rid = server.submit([5, 6, 7], deadline_slack=120.0)
        assert isinstance(rid, int)

    def test_run_until_drained_raises_when_exhausted(self):
        from repro.overload import (
            BreakerConfig,
            OverloadConfig,
            OverloadController,
        )
        from repro.serving.server import DrainExhausted

        # A tripped breaker with an hour-long recovery: step() can never
        # serve, so the drain must report exhaustion instead of silently
        # returning a partial result.
        ov = OverloadController(
            OverloadConfig(
                breaker=BreakerConfig(failure_threshold=1, recovery_time=3600.0)
            )
        )
        server = self._server(overload=ov)
        server.submit([5, 6, 7])
        ov.record_result(0, 0.0, ok=False)
        with pytest.raises(DrainExhausted) as exc:
            server.run_until_drained(max_steps=3)
        assert exc.value.pending == 1
        assert exc.value.max_steps == 3
        assert server.drain_exhausted

    def test_run_until_drained_return_mode(self):
        from repro.overload import (
            BreakerConfig,
            OverloadConfig,
            OverloadController,
        )

        ov = OverloadController(
            OverloadConfig(
                breaker=BreakerConfig(failure_threshold=1, recovery_time=3600.0)
            )
        )
        server = self._server(overload=ov)
        server.submit([5, 6, 7])
        ov.record_result(0, 0.0, ok=False)
        out = server.run_until_drained(max_steps=2, on_exhausted="return")
        assert out == []
        assert server.drain_exhausted
        with pytest.raises(ValueError, match="on_exhausted"):
            server.run_until_drained(on_exhausted="explode")

    def test_drained_flag_resets_on_success(self, server):
        server.submit([5, 6, 7])
        server.drain_exhausted = True
        server.run_until_drained()
        assert not server.drain_exhausted

    def test_metrics_ledger_conserves_after_drain(self):
        from repro.overload import (
            BackpressureError,
            OverloadConfig,
            OverloadController,
            QueueLimits,
        )

        ov = OverloadController(
            OverloadConfig(limits=QueueLimits(max_requests=2))
        )
        server = self._server(overload=ov)
        accepted = 0
        for i in range(5):
            try:
                server.submit([4 + i % 5] * (2 + i % 4))
                accepted += 1
            except BackpressureError:
                pass
        server.run_until_drained()
        m = server.metrics
        assert m.arrived == 5
        assert m.num_served == accepted
        assert m.num_rejected == 5 - accepted
        m.assert_conservation()
