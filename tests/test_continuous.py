"""Tests for the ORCA-style continuous-batching simulator."""

import pytest

from repro.config import BatchConfig
from repro.engine.cost_model import GPUCostModel
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.types import Request, make_requests
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


def _batch(rows=8, L=50):
    return BatchConfig(num_rows=rows, row_length=L)


def _workload(rate=200.0, horizon=4.0, seed=0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=15, spread=8, low=3, high=50),
        deadlines=DeadlineModel(base_slack=3.0, jitter=1.0),
        horizon=horizon,
        seed=seed,
    )


class TestCostModelStepHooks:
    def test_decode_step_scales_with_active(self):
        cm = GPUCostModel.calibrated()
        assert cm.decode_step_time(64, 2000) > cm.decode_step_time(8, 2000)

    def test_zero_active_is_free(self):
        cm = GPUCostModel.calibrated()
        assert cm.decode_step_time(0, 0) == 0.0

    def test_negative_rejected(self):
        cm = GPUCostModel.calibrated()
        with pytest.raises(ValueError):
            cm.decode_step_time(-1, 0)

    def test_prefill_is_encode(self):
        cm = GPUCostModel.calibrated()
        assert cm.prefill_time(100, 1000) == pytest.approx(
            cm.encode_time(100, 1000, 1)
        )


class TestContinuousBatching:
    def test_conservation(self):
        wl = _workload()
        n = len(wl.generate())
        m = ContinuousBatchingSimulator(_batch()).run(wl)
        assert m.num_served + m.num_expired == n

    def test_deterministic(self):
        wl = _workload(seed=4)
        a = ContinuousBatchingSimulator(_batch(), seed=1).run(wl)
        b = ContinuousBatchingSimulator(_batch(), seed=1).run(wl)
        assert a.num_served == b.num_served
        assert a.total_utility == pytest.approx(b.total_utility)

    def test_light_load_serves_everything(self):
        wl = WorkloadGenerator(
            rate=5.0,
            lengths=LengthDistribution(family="constant", mean=10, low=3, high=50),
            deadlines=DeadlineModel(base_slack=30.0),
            horizon=3.0,
            seed=0,
        )
        m = ContinuousBatchingSimulator(_batch(), mean_output_tokens=3.0).run(
            wl, horizon=60.0
        )
        assert m.num_expired == 0

    def test_requests_finish_at_different_times(self):
        """The point of iteration-level scheduling: departures are not
        synchronised to batch boundaries."""
        m = ContinuousBatchingSimulator(_batch(), seed=2).run(_workload())
        finishes = sorted({round(f, 6) for _, f in m.finish_times.values()})
        assert len(finishes) > max(3, m.num_batches // 8)

    def test_utility_admission_beats_fcfs_at_overload(self):
        wl = _workload(rate=800.0)
        util = ContinuousBatchingSimulator(_batch(), admission="utility").run(wl)
        fcfs = ContinuousBatchingSimulator(_batch(), admission="fcfs").run(wl)
        assert util.total_utility > fcfs.total_utility

    def test_oversize_requests_never_admitted(self):
        reqs = [Request(request_id=0, length=200, arrival=0.0, deadline=10.0)]
        m = ContinuousBatchingSimulator(_batch()).run(reqs, horizon=5.0)
        assert m.num_served == 0

    def test_token_budget_respected_implicitly(self):
        # Feed more simultaneous requests than fit; all must still be
        # accounted for and latencies must be positive.
        reqs = make_requests(
            [40] * 30, arrivals=[0.0] * 30, deadlines=[60.0] * 30, start_id=0
        )
        m = ContinuousBatchingSimulator(_batch(rows=2, L=50)).run(reqs, horizon=60.0)
        assert m.num_served + m.num_expired == 30
        for _, (a, f) in m.finish_times.items():
            assert f > a

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(_batch(), mean_output_tokens=0.5)
        with pytest.raises(ValueError):
            ContinuousBatchingSimulator(_batch(), admission="magic")
