"""Tests for configuration dataclasses."""

import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig, ServingConfig


class TestModelConfig:
    def test_paper_settings(self):
        cfg = ModelConfig.paper()
        assert cfg.d_model == 3072
        assert cfg.num_heads == 8
        assert cfg.num_encoder_layers == 3
        assert cfg.num_decoder_layers == 3
        assert cfg.max_len == 400

    def test_head_dim(self):
        assert ModelConfig.paper().head_dim == 384

    def test_ffn_dim_defaults_to_4x(self):
        assert ModelConfig(d_model=64, num_heads=4).ffn_dim == 256
        assert ModelConfig(d_model=64, num_heads=4, d_ff=100).ffn_dim == 100

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(d_model=10, num_heads=3)

    def test_tiny_is_small(self):
        cfg = ModelConfig.tiny()
        assert cfg.d_model <= 64
        assert cfg.num_encoder_layers <= 2


class TestBatchConfig:
    def test_capacity(self):
        assert BatchConfig(num_rows=8, row_length=50).capacity_tokens == 400

    @pytest.mark.parametrize("rows,length", [(0, 10), (10, 0), (-1, 5)])
    def test_invalid_geometry(self, rows, length):
        with pytest.raises(ValueError):
            BatchConfig(num_rows=rows, row_length=length)


class TestSchedulerConfig:
    def test_paper_competitive_ratio(self):
        # η = q = ½ gives the ⅕ ratio quoted after Theorem 5.1.
        assert SchedulerConfig(eta=0.5, q=0.5).competitive_ratio == pytest.approx(0.2)

    def test_general_ratio_formula(self):
        cfg = SchedulerConfig(eta=0.3, q=0.7)
        assert cfg.competitive_ratio == pytest.approx(0.21 / 1.21)

    @pytest.mark.parametrize("eta,q", [(0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0)])
    def test_open_interval_enforced(self, eta, q):
        with pytest.raises(ValueError):
            SchedulerConfig(eta=eta, q=q)


class TestServingConfig:
    def test_defaults_compose(self):
        cfg = ServingConfig()
        assert cfg.batch.num_rows == 64
        assert cfg.scheduler.competitive_ratio == pytest.approx(0.2)
