"""Tests for the package surface (lazy exports, version, dir)."""

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "BatchLayout",
            "Seq2SeqModel",
            "ToyVocab",
            "BPETokenizer",
            "sample_decode",
            "greedy_decode_incremental",
            "NaiveEngine",
            "TurboEngine",
            "ConcatEngine",
            "SlottedConcatEngine",
            "AdaptiveEngine",
            "GPUCostModel",
            "GPUMemorySimulator",
            "DASScheduler",
            "SlottedDASScheduler",
            "FCFSScheduler",
            "SJFScheduler",
            "DEFScheduler",
            "OracleScheduler",
            "ServingSimulator",
            "ClusterSimulator",
            "AdmissionController",
            "TCBServer",
            "WorkloadGenerator",
            "CorpusWorkload",
            "FaultPlan",
            "FaultyEngine",
            "RetryPolicy",
        ],
    )
    def test_lazy_exports_resolve(self, name):
        obj = getattr(repro, name)
        assert obj is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_dir_includes_lazy_names(self):
        names = dir(repro)
        assert "ConcatEngine" in names
        assert "Request" in names

    def test_eager_exports(self):
        assert repro.Request is not None
        assert repro.BatchConfig is not None
        assert callable(repro.total_utility)
