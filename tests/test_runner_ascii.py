"""Tests for the all-figures runner and ASCII charts."""

import pytest

from repro.analysis.ascii_plot import ascii_chart, sparkline
from repro.experiments.runner import run_all_figures, write_report


class TestSparkline:
    def test_monotone_series_uses_rising_blocks(self):
        s = sparkline([1, 2, 3, 4])
        assert s[0] == "▁"
        assert s[-1] == "█"
        assert len(s) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_fixed_range(self):
        # With lo/hi pinned wide, a mid value lands mid-block.
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in "▄▅"


class TestAsciiChart:
    def test_multi_series_alignment(self):
        chart = ascii_chart(
            {"x": [1, 2, 3], "a": [1, 2, 3], "bb": [3, 2, 1]},
            x_key="x",
            title="t",
        )
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert any("a  " in l for l in lines)
        assert "1 … 3 (x)" in lines[-1]

    def test_shared_scale_comparability(self):
        chart = ascii_chart({"lo": [1, 1], "hi": [10, 10]})
        lo_line = next(l for l in chart.splitlines() if l.strip().startswith("lo"))
        hi_line = next(l for l in chart.splitlines() if l.strip().startswith("hi"))
        assert "▁▁" in lo_line
        assert "██" in hi_line

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            ascii_chart({"a": [1], "b": [1, 2]})

    def test_empty_is_title(self):
        assert ascii_chart({}, title="empty") == "empty"


class TestRunner:
    @pytest.fixture(scope="class")
    def results(self):
        # fig13/14 are cost-model-only and fast; restrict the serving
        # sweeps via fast mode.
        return run_all_figures(fast=True)

    def test_all_figures_present(self, results):
        assert set(results) == {
            "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15a", "fig15b", "fig15c", "fig16",
        }

    def test_series_nonempty(self, results):
        for name, series in results.items():
            assert series, name
            n = len(next(iter(series.values())))
            assert all(len(v) == n for v in series.values()), name

    def test_report_renders(self, results):
        report = write_report(results)
        for name in results:
            assert f"## {name}" in report
        assert "▁" in report or "█" in report  # charts included

    def test_report_without_charts(self, results):
        report = write_report(results, charts=False)
        assert "▁" not in report
