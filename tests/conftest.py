"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.model.seq2seq import Seq2SeqModel
from repro.types import Request


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    return ModelConfig.tiny()


@pytest.fixture(scope="session")
def tiny_model(tiny_config) -> Seq2SeqModel:
    """One shared tiny model — weight init is the slow part."""
    return Seq2SeqModel(tiny_config, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_tokenized_requests(lengths, cfg: ModelConfig, seed: int = 0, start_id: int = 0):
    """Requests with synthetic token ids drawn from the model vocab."""
    rng = np.random.default_rng(seed)
    out = []
    for i, l in enumerate(lengths):
        tokens = tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=l))
        out.append(Request(request_id=start_id + i, length=l, tokens=tokens))
    return out


@pytest.fixture()
def tokenized_requests(tiny_config):
    def factory(lengths, seed: int = 0, start_id: int = 0):
        return make_tokenized_requests(lengths, tiny_config, seed, start_id)

    return factory
