"""Tests for multi-head attention plumbing (repro.model.attention)."""

import numpy as np
import pytest

from repro.core.masks import block_diagonal_mask
from repro.model.attention import (
    merge_heads,
    multi_head_attention,
    multi_head_attention_slotted,
    split_heads,
)
from repro.model.params import AttentionParams


@pytest.fixture()
def params(rng):
    return AttentionParams.init(np.random.default_rng(3), d_model=16)


class TestHeadReshape:
    def test_roundtrip(self, rng):
        x = rng.normal(size=(2, 5, 16))
        assert np.array_equal(merge_heads(split_heads(x, 4)), x)

    def test_split_shape(self, rng):
        h = split_heads(rng.normal(size=(2, 5, 16)), 4)
        assert h.shape == (2, 4, 5, 4)

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            split_heads(rng.normal(size=(1, 3, 10)), 4)

    def test_heads_partition_features(self, rng):
        x = rng.normal(size=(1, 2, 8))
        h = split_heads(x, 2)
        assert np.array_equal(h[0, 0, :, :], x[0, :, :4])
        assert np.array_equal(h[0, 1, :, :], x[0, :, 4:])


class TestMultiHeadAttention:
    def test_self_attention_shape(self, params, rng):
        x = rng.normal(size=(2, 6, 16))
        out = multi_head_attention(params, 4, x)
        assert out.shape == x.shape

    def test_cross_attention_uses_kv_input(self, params, rng):
        q_in = rng.normal(size=(1, 3, 16))
        kv = rng.normal(size=(1, 7, 16))
        out = multi_head_attention(params, 4, q_in, key_value_input=kv)
        assert out.shape == (1, 3, 16)

    def test_3d_mask_broadcasts_over_heads(self, params, rng):
        x = rng.normal(size=(1, 4, 16))
        seg = np.array([[0, 0, 1, 1]])
        mask = block_diagonal_mask(seg)
        out = multi_head_attention(params, 4, x, mask=mask)
        # Block masking means the first segment's output can't depend on
        # the second segment's input.
        x2 = x.copy()
        x2[0, 2:] += 10.0
        out2 = multi_head_attention(params, 4, x2, mask=mask)
        assert np.allclose(out[0, :2], out2[0, :2])
        assert not np.allclose(out[0, 2:], out2[0, 2:])

    def test_permuting_batch_rows_permutes_outputs(self, params, rng):
        x = rng.normal(size=(3, 4, 16))
        out = multi_head_attention(params, 4, x)
        perm = [2, 0, 1]
        out_p = multi_head_attention(params, 4, x[perm])
        assert np.allclose(out_p, out[perm])


class TestSlottedMultiHead:
    def test_matches_masked_mha(self, params, rng):
        """Eq. 8 at full multi-head level == Eq. 5 with the big mask."""
        x = rng.normal(size=(2, 8, 16))
        seg = np.array([[0, 0, 0, 1, 2, 2, 3, 3], [4, 5, 5, 5, 6, 6, 7, -1]])
        spans = [(0, 4), (4, 8)]
        slot_masks = [
            block_diagonal_mask(seg[:, a:b]) for a, b in spans
        ]
        slotted = multi_head_attention_slotted(params, 4, x, spans, slot_masks)
        pure = multi_head_attention(params, 4, x, mask=block_diagonal_mask(seg))
        valid = seg >= 0
        assert np.allclose(slotted[valid], pure[valid], rtol=1e-10, atol=1e-12)
