"""Tests for the GPU memory simulator and early cleaning (§4.2.2)."""

import pytest

from repro.core.packing import pack_first_fit
from repro.core.slotting import pack_into_slots
from repro.engine.memory import GPUMemorySimulator
from repro.types import make_requests


@pytest.fixture()
def sim():
    return GPUMemorySimulator(d_model=32, num_layers=4)


def _slotted_layout():
    reqs = make_requests([4, 4, 4, 4], start_id=0)
    res = pack_into_slots(reqs, num_rows=2, row_length=8, slot_size=4)
    assert not res.rejected
    return res.layout


def _pure_layout():
    reqs = make_requests([4, 4, 4, 4], start_id=0)
    res = pack_first_fit(reqs, num_rows=2, row_length=8)
    assert not res.rejected
    return res.layout


class TestMemorySimulator:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GPUMemorySimulator(d_model=0)

    def test_slotted_early_cleaning_saves_byte_steps(self, sim):
        layout = _slotted_layout()
        # Requests 0..3 finish at steps 1, 2, 3, 4.
        completion = {0: 1, 1: 2, 2: 3, 3: 4}
        report = sim.simulate(layout, completion, early_cleaning=True)
        assert report.final_step == 4
        assert report.byte_steps < report.byte_steps_no_cleaning
        assert 0.0 < report.savings_ratio < 1.0
        assert report.overlap_bytes > 0

    def test_pure_concat_cannot_early_clean(self, sim):
        """§4.2.2: concatenated rows are not separable tensors."""
        layout = _pure_layout()
        completion = {0: 1, 1: 2, 2: 3, 3: 4}
        report = sim.simulate(layout, completion, early_cleaning=True)
        assert report.savings_ratio == pytest.approx(0.0)
        assert report.overlap_bytes == 0

    def test_early_cleaning_flag_off(self, sim):
        layout = _slotted_layout()
        completion = {0: 1, 1: 2, 2: 3, 3: 4}
        report = sim.simulate(layout, completion, early_cleaning=False)
        assert report.byte_steps == report.byte_steps_no_cleaning
        assert report.savings_ratio == 0.0

    def test_slot_freed_at_last_request_completion(self, sim):
        """A slot shared by two requests frees when the LAST one ends."""
        reqs = make_requests([2, 2], start_id=0)
        res = pack_into_slots(reqs, num_rows=1, row_length=8, slot_size=4)
        layout = res.layout
        report = sim.simulate(layout, {0: 1, 1: 3}, early_cleaning=True)
        # Only one slot is occupied; it frees at step 3 of 3 -> no savings.
        assert report.final_step == 3
        assert report.savings_ratio == pytest.approx(0.0)

    def test_simultaneous_completion_no_savings(self, sim):
        layout = _slotted_layout()
        report = sim.simulate(layout, {0: 4, 1: 4, 2: 4, 3: 4})
        assert report.savings_ratio == pytest.approx(0.0)

    def test_peak_bytes_scale_with_occupied_slots(self, sim):
        small = pack_into_slots(make_requests([4], start_id=0), 1, 8, 4).layout
        big = _slotted_layout()
        r_small = sim.simulate(small, {0: 1})
        r_big = sim.simulate(big, {0: 1, 1: 1, 2: 1, 3: 1})
        assert r_big.peak_bytes > r_small.peak_bytes

    def test_freed_per_step_accounting(self, sim):
        layout = _slotted_layout()
        report = sim.simulate(layout, {0: 1, 1: 1, 2: 2, 3: 2})
        # Slots of requests 0,1 free at step 1 (before final step 2).
        assert len(report.freed_per_step) == 2
        assert report.freed_per_step[0] > 0
        assert report.freed_per_step[-1] == 0  # final step frees "at end"
