"""Differential engine tests: every batching scheme, same numbers.

The paper's correctness claim (§4, Eqs. 5–8) is that ConcatBatching —
separate positional encodings plus a block-diagonal (per-slot for the
slotted variant) attention mask — makes a concatenated batch compute
*exactly* what per-request NaiveBatching computes.  These tests check
that claim differentially: seeded random workloads are executed through
the Naive, Concat and Slotted engines' real planners and the NumPy
encoder, and per-request hidden states (sliced out of each layout via
its segments) must agree elementwise with the solo
:meth:`~repro.model.seq2seq.Seq2SeqModel.encode_single` oracle.

The sweep covers batch size, slot size and length variance — exactly
the axes along which the layouts (and therefore the masks and position
matrices) differ between schemes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BatchConfig
from repro.engine.base import InferenceEngine
from repro.engine.concat import ConcatEngine
from repro.engine.naive import NaiveEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.types import Request

# float64 end-to-end: the schemes must agree to numerical noise.
ATOL = 1e-8


def _random_requests(rng, n, low, high, vocab_size):
    lengths = rng.integers(low, high + 1, size=n)
    return [
        Request(
            request_id=i,
            length=int(l),
            tokens=tuple(
                int(t) for t in rng.integers(4, vocab_size, size=int(l))
            ),
        )
        for i, l in enumerate(lengths)
    ]


def _per_request_outputs(
    model, engine: InferenceEngine, requests, *, slotted: bool = False
) -> dict[int, np.ndarray]:
    """Plan + encode through an engine; slice per-request hidden states."""
    layouts, rejected = engine.plan(requests)
    assert not rejected, "sweep sizes are chosen so everything fits"
    out: dict[int, np.ndarray] = {}
    for layout in layouts:
        layout.validate()
        use_slots = slotted and any(row.slots for row in layout.rows)
        memory = model.encode_layout(layout, slotted=use_slots)
        for row_idx, seg in layout.segments():
            assert seg.request.request_id not in out
            out[seg.request.request_id] = memory[
                row_idx, seg.start : seg.end, :
            ]
    assert set(out) == {r.request_id for r in requests}
    return out


def _assert_all_close(actual: dict[int, np.ndarray], oracle: dict[int, np.ndarray]):
    assert set(actual) == set(oracle)
    for rid in oracle:
        np.testing.assert_allclose(
            actual[rid], oracle[rid], atol=ATOL, rtol=0.0,
            err_msg=f"request {rid} diverged",
        )


# Sweep axes: batch geometry × length variance, each with its own seed.
SWEEP = [
    # (seed, num_rows, row_length, low, high)
    (0, 2, 16, 3, 8),     # small batch, moderate variance
    (1, 4, 32, 3, 12),    # wider rows
    (2, 8, 16, 4, 4),     # uniform lengths (no variance)
    (3, 4, 24, 1, 12),    # high variance incl. single-token requests
    (4, 1, 32, 3, 10),    # single row: pure concatenation
]


@pytest.mark.parametrize("seed,num_rows,row_length,low,high", SWEEP)
class TestDifferentialEngines:
    def _workload(self, tiny_config, seed, num_rows, row_length, low, high):
        rng = np.random.default_rng(1000 + seed)
        n = max(2, num_rows * 2)
        return _random_requests(rng, n, low, high, tiny_config.vocab_size)

    def test_concat_matches_naive(
        self, tiny_model, tiny_config, seed, num_rows, row_length, low, high
    ):
        reqs = self._workload(tiny_config, seed, num_rows, row_length, low, high)
        batch = BatchConfig(num_rows=num_rows, row_length=row_length)
        naive = _per_request_outputs(
            tiny_model, NaiveEngine(batch), reqs
        )
        concat = _per_request_outputs(
            tiny_model, ConcatEngine(batch), reqs
        )
        _assert_all_close(concat, naive)

    def test_slotted_matches_naive(
        self, tiny_model, tiny_config, seed, num_rows, row_length, low, high
    ):
        reqs = self._workload(tiny_config, seed, num_rows, row_length, low, high)
        batch = BatchConfig(num_rows=num_rows, row_length=row_length)
        naive = _per_request_outputs(tiny_model, NaiveEngine(batch), reqs)
        # Two equal slots per row; the sweep keeps lengths <= slot size.
        slotted_engine = SlottedConcatEngine(batch, num_slots=2)
        if high > slotted_engine.slot_size:
            pytest.skip("lengths exceed the fixed slot size")
        slotted = _per_request_outputs(
            tiny_model, slotted_engine, reqs, slotted=True
        )
        _assert_all_close(slotted, naive)

    def test_naive_matches_solo_oracle(
        self, tiny_model, tiny_config, seed, num_rows, row_length, low, high
    ):
        """Anchor the chain: NaiveBatching == one-request-at-a-time."""
        reqs = self._workload(tiny_config, seed, num_rows, row_length, low, high)
        batch = BatchConfig(num_rows=num_rows, row_length=row_length)
        naive = _per_request_outputs(tiny_model, NaiveEngine(batch), reqs)
        for r in reqs:
            solo = tiny_model.encode_single(r.tokens)[0]
            np.testing.assert_allclose(
                naive[r.request_id], solo, atol=ATOL, rtol=0.0,
                err_msg=f"request {r.request_id} diverged from solo oracle",
            )


class TestSlotSizeSweep:
    """Vary the slot count at fixed geometry (Fig. 13's axis)."""

    @pytest.mark.parametrize("num_slots", [1, 2, 4])
    def test_slot_count_does_not_change_outputs(self, tiny_model, tiny_config, num_slots):
        rng = np.random.default_rng(77)
        batch = BatchConfig(num_rows=3, row_length=32)
        engine = SlottedConcatEngine(batch, num_slots=num_slots)
        reqs = _random_requests(
            rng, 6, 2, min(engine.slot_size, 10), tiny_config.vocab_size
        )
        naive = _per_request_outputs(tiny_model, NaiveEngine(batch), reqs)
        slotted = _per_request_outputs(tiny_model, engine, reqs, slotted=True)
        _assert_all_close(slotted, naive)
