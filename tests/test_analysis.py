"""Tests for repro.analysis (curves and export)."""

import json

import pytest

from repro.analysis import (
    crossover_rate,
    max_gap,
    saturated_value,
    saturation_point,
    series_to_csv,
    series_to_json,
)


class TestSaturation:
    def test_flat_curve_saturates_immediately(self):
        assert saturation_point([1, 2, 3], [5, 5, 5]) == 1

    def test_growing_then_flat(self):
        x = [40, 80, 120, 250, 1000]
        y = [10, 20, 40, 41, 42]
        assert saturation_point(x, y) == 120

    def test_always_growing_returns_last_or_none(self):
        x = [1, 2, 3]
        y = [1.0, 10.0, 100.0]
        # The last point trivially satisfies "never grows after" — the
        # detector returns it; interpretation is up to the caller.
        assert saturation_point(x, y, tolerance=0.01) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            saturation_point([1], [1, 2])

    def test_single_point(self):
        assert saturation_point([1], [5]) is None

    def test_saturated_value(self):
        assert saturated_value([1, 2, 10, 10, 10]) == 10
        assert saturated_value([4], last_k=3) == 4
        with pytest.raises(ValueError):
            saturated_value([])


class TestGaps:
    def test_max_gap(self):
        assert max_gap([10, 30], [10, 10]) == 3.0

    def test_skips_zero_denominator(self):
        assert max_gap([10, 30], [0, 10]) == 3.0

    def test_all_zero_denominator(self):
        with pytest.raises(ValueError):
            max_gap([1], [0])

    def test_misaligned(self):
        with pytest.raises(ValueError):
            max_gap([1, 2], [1])


class TestCrossover:
    def test_leads_from_start(self):
        assert crossover_rate([1, 2], [5, 5], [1, 1]) == 1.0

    def test_never_leads(self):
        assert crossover_rate([1, 2], [1, 1], [5, 5]) is None

    def test_interpolated(self):
        # a-b goes from -1 at x=0 to +1 at x=2 → crossover at x=1.
        x = [0, 2]
        assert crossover_rate(x, [0, 2], [1, 1]) == pytest.approx(1.0)

    def test_misaligned(self):
        with pytest.raises(ValueError):
            crossover_rate([1], [1, 2], [1, 2])


class TestExport:
    def test_csv_roundtrip(self):
        text = series_to_csv({"rate": [40, 80], "TCB": [1.5, 2.5]})
        lines = text.strip().splitlines()
        assert lines[0] == "rate,TCB"
        assert lines[1] == "40,1.5"
        assert lines[2] == "80,2.5"

    def test_csv_empty(self):
        assert series_to_csv({}) == ""

    def test_json(self):
        text = series_to_json({"x": [1, 2]})
        assert json.loads(text) == {"x": [1, 2]}

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            series_to_json({"a": [1], "b": [1, 2]})
