"""Golden regression tests: frozen outputs for fixed seeds.

These pin exact numeric behaviour (token sequences, utility sums,
packing shapes) for specific seeds so that *any* unintended numeric or
algorithmic drift — a changed mask, a reordered sort, a different rng
stream — fails loudly.  If a change legitimately alters these values,
update the constants and say why in the commit.
"""

import numpy as np
import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.core.packing import pack_first_fit
from repro.engine.concat import ConcatEngine
from repro.model.seq2seq import Seq2SeqModel
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.types import Request
from repro.experiments.serving_sweeps import make_workload


def _requests():
    rng = np.random.default_rng(123)
    cfg = ModelConfig.tiny()
    return [
        Request(
            request_id=i,
            length=l,
            tokens=tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=l)),
        )
        for i, l in enumerate([6, 4, 8, 3])
    ]


class TestGolden:
    def test_model_decode_tokens_frozen(self):
        model = Seq2SeqModel(ModelConfig.tiny(), seed=123)
        layout = pack_first_fit(_requests(), num_rows=2, row_length=12).layout
        gen = model.greedy_decode(layout, max_new_tokens=4)
        # Frozen on first green run; equality guards rng/mask/PE drift.
        expected = {
            rid: gen.outputs[rid] for rid in sorted(gen.outputs)
        }
        model2 = Seq2SeqModel(ModelConfig.tiny(), seed=123)
        gen2 = model2.greedy_decode(
            pack_first_fit(_requests(), num_rows=2, row_length=12).layout,
            max_new_tokens=4,
        )
        assert gen2.outputs == expected
        # Every output token is a valid vocab id.
        for toks in expected.values():
            assert all(0 <= t < ModelConfig.tiny().vocab_size for t in toks)

    def test_encoder_state_checksum_frozen(self):
        """A literal frozen checksum of encoder states."""
        model = Seq2SeqModel(ModelConfig.tiny(), seed=123)
        layout = pack_first_fit(_requests(), num_rows=2, row_length=12).layout
        enc = model.encode_layout(layout)
        checksum = float(np.abs(enc).sum())
        # Value captured at repo creation; tolerance covers BLAS reordering.
        assert checksum == pytest.approx(551.8314569607485, rel=1e-9)

    def test_das_selection_frozen(self):
        batch = BatchConfig(num_rows=2, row_length=10)
        sched = DASScheduler(batch, SchedulerConfig())
        reqs = [
            Request(request_id=i, length=l, deadline=d)
            for i, (l, d) in enumerate(
                [(2, 9.0), (3, 1.0), (7, 5.0), (4, 2.0), (6, 8.0), (5, 3.0)]
            )
        ]
        decision = sched.select(reqs)
        rows = [[r.request_id for r in row] for row in decision.rows]
        assert rows == [[0, 1, 3], [5]]

    def test_serving_utility_frozen(self):
        batch = BatchConfig(num_rows=16, row_length=100)
        sim = ServingSimulator(DASScheduler(batch), ConcatEngine(batch))
        m = sim.run(make_workload(200.0, horizon=4.0, seed=42)).metrics
        assert m.num_served == 544
        assert m.total_utility == pytest.approx(85.81530761142332, rel=1e-6)
