"""Tests for the BPE tokenizer and corpus workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model.bpe import BPETokenizer
from repro.workload.corpus import CorpusWorkload, synthetic_corpus

CORPUS = [
    "low lower lowest",
    "new newer newest",
    "wide wider widest",
    "low low low new new wide",
]


@pytest.fixture(scope="module")
def tok():
    return BPETokenizer().train(CORPUS, num_merges=60)


class TestTraining:
    def test_learns_merges(self, tok):
        assert len(tok.merges) > 0
        assert tok.vocab_size > 4  # specials + symbols

    def test_training_is_deterministic(self):
        a = BPETokenizer().train(CORPUS, num_merges=30)
        b = BPETokenizer().train(CORPUS, num_merges=30)
        assert a.merges == b.merges
        assert a.vocab == b.vocab

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BPETokenizer().train([])

    def test_zero_merges_is_character_model(self):
        t = BPETokenizer().train(CORPUS, num_merges=0)
        ids = t.encode("low")
        # l, o, w, </w> → 4 symbols (no merges applied).
        assert len(ids) == 4

    def test_negative_merges_rejected(self):
        with pytest.raises(ValueError):
            BPETokenizer().train(CORPUS, num_merges=-1)

    def test_frequent_words_become_few_tokens(self, tok):
        # "low" appears 5 times — should compress well below characters.
        assert len(tok.encode("low")) < 4


class TestEncodeDecode:
    def test_roundtrip(self, tok):
        for text in ("low lower", "newest wide", "low low low"):
            assert tok.decode(tok.encode(text)) == text

    def test_unknown_chars_fall_back_to_unk(self, tok):
        ids = tok.encode("zzz")
        assert BPETokenizer.UNK in ids

    def test_specials_skipped_in_decode(self, tok):
        ids = [tok.BOS, *tok.encode("low"), tok.EOS, *tok.encode("wide")]
        assert tok.decode(ids) == "low"  # EOS terminates

    def test_token_length_matches_encode(self, tok):
        for text in CORPUS:
            assert tok.token_length(text) == len(tok.encode(text))

    def test_untrained_encode_rejected(self):
        with pytest.raises(RuntimeError, match="not trained"):
            BPETokenizer().encode("low")

    @given(st.lists(st.sampled_from("low lower lowest new wide".split()), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_known_words(self, tok, words):
        text = " ".join(words)
        assert tok.decode(tok.encode(text)) == text


class TestSyntheticCorpus:
    def test_shape_and_determinism(self):
        a = synthetic_corpus(50, seed=3)
        b = synthetic_corpus(50, seed=3)
        assert a == b
        assert len(a) == 50
        assert all(2 <= len(s.split()) <= 30 for s in a)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_corpus(0)
        with pytest.raises(ValueError):
            synthetic_corpus(5, min_words=5, max_words=2)


class TestCorpusWorkload:
    def test_requests_carry_tokens(self):
        wl = CorpusWorkload(synthetic_corpus(80, seed=1), rate=50.0, horizon=2.0)
        reqs = wl.generate()
        assert reqs, "expected at least one arrival"
        for r in reqs:
            assert r.tokens is not None
            assert len(r.tokens) == r.length
            assert r.deadline > r.arrival

    def test_lengths_match_tokenizer(self):
        corpus = synthetic_corpus(40, seed=2)
        wl = CorpusWorkload(corpus, rate=80.0, horizon=1.0, seed=5)
        stats = wl.length_stats()
        assert stats["min"] >= 1
        assert stats["mean"] > stats["min"]

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            CorpusWorkload([], rate=10.0)

    def test_end_to_end_through_real_model(self, tiny_config):
        """Corpus → BPE → requests → ConcatBatching → NumPy transformer."""
        from repro.core.packing import pack_first_fit
        from repro.model.seq2seq import Seq2SeqModel

        corpus = synthetic_corpus(30, seed=4, max_words=6)
        wl = CorpusWorkload(corpus, rate=30.0, horizon=1.0, num_merges=40)
        reqs = [r for r in wl.generate() if r.length <= 24][:6]
        assert reqs
        # Remap ids into the tiny model's vocab range.
        vocab = wl.tokenizer.vocab_size
        model_cfg = tiny_config
        reqs = [
            r.with_tokens([4 + (t % (model_cfg.vocab_size - 4)) for t in r.tokens])
            for r in reqs
        ]
        layout = pack_first_fit(reqs, num_rows=2, row_length=32).layout
        model = Seq2SeqModel(model_cfg, seed=0)
        enc = model.encode_layout(layout)
        for k, seg in layout.segments():
            ref = model.encode_single(seg.request.tokens)[0]
            assert np.allclose(enc[k, seg.start : seg.end], ref, atol=1e-9)
