"""Tests for Algorithm 2 (Slotted DAS)."""

import math

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.types import Request, make_requests


def _sched(rows=2, L=20, eta=0.5, q=0.5):
    return SlottedDASScheduler(
        BatchConfig(num_rows=rows, row_length=L), SchedulerConfig(eta=eta, q=q)
    )


class TestSlottedDAS:
    def test_slot_size_set(self):
        d = _sched().select(make_requests([4, 6, 8, 5, 3], start_id=0))
        assert d.slot_size is not None
        assert 1 <= d.slot_size <= 20

    def test_slot_size_covers_utility_dominant(self):
        """Algorithm 2 line 4: no utility-dominant request is discarded."""
        sched = _sched(rows=1, L=20)
        reqs = make_requests([3, 5, 7, 9, 11], start_id=0)
        d = sched.select(reqs)
        # All requests ≤ slot_size among the selected.
        for r in d.selected():
            assert r.length <= d.slot_size

    def test_discards_requests_longer_than_slot(self):
        # Utility-dominant = shortest; a long deadline pick gets dropped.
        sched = _sched(rows=1, L=20, eta=0.5, q=0.5)
        reqs = [
            Request(request_id=0, length=2),
            Request(request_id=1, length=2),
            Request(request_id=2, length=2),
            Request(request_id=3, length=2),
            Request(request_id=4, length=2),
            Request(request_id=5, length=9),  # fits row, exceeds slot
        ]
        d = sched.select(reqs)
        if d.discarded:
            assert all(r.length > d.slot_size for r in d.discarded)
            assert 5 in {r.request_id for r in d.discarded}

    def test_decision_valid(self):
        sched = _sched(rows=3, L=15)
        reqs = make_requests([3, 4, 5, 6, 7, 2, 8, 9, 1], start_id=0)
        d = sched.select(reqs)
        d.validate(sched.batch)

    def test_all_fit_fast_path_keeps_everything(self):
        sched = _sched(rows=2, L=100)
        reqs = make_requests([5, 5, 5], start_id=0)
        d = sched.select(reqs)
        assert d.num_selected == 3

    def test_empty(self):
        d = _sched().select([])
        assert d.num_selected == 0

    def test_runtime_includes_das(self):
        d = _sched().select(make_requests([4, 5], start_id=0))
        assert d.runtime > 0

    def test_selected_fit_slots_exactly(self):
        """Each selected row's requests can be re-packed into slots of the
        decision's slot size (the engine relies on this)."""
        sched = _sched(rows=2, L=21)
        reqs = make_requests([3, 7, 5, 4, 6, 2, 9], start_id=0)
        d = sched.select(reqs)
        z = d.slot_size
        for row in d.rows:
            # Greedy refit must succeed.
            slots = [0] * math.ceil(21 / z)
            caps = [z] * (21 // z) + ([21 % z] if 21 % z else [])
            for r in row:
                placed = False
                for i, used in enumerate(slots[: len(caps)]):
                    if used + r.length <= caps[i]:
                        slots[i] += r.length
                        placed = True
                        break
                assert placed, f"request {r.request_id} does not refit"
