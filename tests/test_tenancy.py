"""Tests for the multi-tenant QoS plane (`repro.tenancy`).

Covers: registry/SLO-class resolution, token-bucket admission on the
sim clock, deficit-weighted fair share over DAS, per-tenant ledger
conservation across every serving loop (plain, chaos, crash/restore),
the tenancy=None bit-identity guarantee, and the server's typed
QuotaExceeded path.
"""

import copy

import pytest

from repro.config import BatchConfig, ModelConfig
from repro.durability import DurabilityConfig, DurabilityPlane
from repro.durability.digest import ledger_digest, trace_digest
from repro.engine.concat import ConcatEngine
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.faults.plan import SchedulerCrash, SchedulerCrashed
from repro.obs.recorder import Tracer
from repro.overload import (
    BackpressureError,
    OverloadConfig,
    OverloadController,
    QueueLimits,
    TenantWeightedShed,
    make_shedder,
)
from repro.scheduling.das import DASScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.server import TCBServer
from repro.serving.simulator import ServingSimulator
from repro.tenancy import (
    DEFAULT_TENANT,
    QuotaExceeded,
    TenancyPlane,
    TenantClass,
    TenantRegistry,
    TokenBucket,
)
from repro.types import Request, make_requests
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=4, row_length=20)
HORIZON = 12.0

MIX = (("gold", 0.3), ("std", 0.4), ("bulk", 0.3))


def _registry():
    return TenantRegistry(
        {
            "gold": "premium",
            "std": "standard",
            "bulk": TenantClass(
                name="bulk",
                weight=0.25,
                deadline_slack=2.0,
                rate=60.0,
                burst=120.0,
            ),
        }
    )


def _workload(seed=0, rate=40.0, mix=MIX, registry=None):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=8, spread=4, low=3, high=20
        ),
        deadlines=DeadlineModel(base_slack=4.0, jitter=0.5),
        horizon=HORIZON,
        seed=seed,
        tenant_mix=mix,
        registry=registry,
    ).generate()


def _faulty_engine(seed=0):
    return FaultyEngine(
        ConcatEngine(BATCH),
        FaultPlan(
            FaultConfig(
                failure_rate=0.15,
                straggler_rate=0.1,
                oom_rate=0.05,
                crash_rate=0.03,
                downtime=0.2,
            ),
            seed=seed,
        ),
    )


def _overload():
    return OverloadController(
        OverloadConfig(limits=QueueLimits(max_requests=48))
    )


# --------------------------------------------------------------------- #
# Loop factories (mirror tests/test_durability.py)
# --------------------------------------------------------------------- #


def _run_simulator(requests, seed, *, tenancy, chaos=False, plane=None, resume=None):
    tr = Tracer()
    sim = ServingSimulator(
        DASScheduler(BATCH),
        _faulty_engine(seed) if chaos else ConcatEngine(BATCH),
        trace=tr,
        overload=_overload() if chaos else None,
        durability=plane,
        tenancy=tenancy,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume).metrics
    return m, tr


def _run_cluster(requests, seed, *, tenancy, chaos=False, plane=None, resume=None):
    tr = Tracer()
    engines = (
        [_faulty_engine(seed * 10 + i) for i in range(3)]
        if chaos
        else [ConcatEngine(BATCH) for _ in range(3)]
    )
    sim = ClusterSimulator(
        DASScheduler(BATCH),
        engines,
        trace=tr,
        overload=_overload() if chaos else None,
        durability=plane,
        tenancy=tenancy,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume).metrics
    return m, tr


def _run_continuous(requests, seed, *, tenancy, chaos=False, plane=None, resume=None):
    tr = Tracer()
    sim = ContinuousBatchingSimulator(
        BATCH,
        seed=seed,
        fault_plan=(
            FaultPlan(
                FaultConfig(
                    failure_rate=0.1,
                    oom_rate=0.05,
                    crash_rate=0.03,
                    downtime=0.2,
                ),
                seed=seed,
            )
            if chaos
            else None
        ),
        trace=tr,
        overload=_overload() if chaos else None,
        durability=plane,
        tenancy=tenancy,
    )
    m = sim.run(requests, horizon=HORIZON, resume=resume)
    return m, tr


LOOPS = {
    "simulator": _run_simulator,
    "cluster": _run_cluster,
    "continuous": _run_continuous,
}


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


class TestTenantRegistry:
    def test_stock_class_resolution(self):
        reg = TenantRegistry({"a": "premium", "b": "batch"})
        assert reg.tenant_class("a").weight == 4.0
        assert reg.tenant_class("b").deadline_slack == 4.0

    def test_unknown_class_name_raises(self):
        with pytest.raises(KeyError):
            TenantRegistry({"a": "platinum"})

    def test_unknown_and_none_tenant_fall_back_to_default(self):
        reg = TenantRegistry({"a": "premium"}, default_class="batch")
        assert reg.tenant_class("nobody").name == "batch"
        assert reg.tenant_class(None).name == "batch"

    def test_tenant_of_untagged_request(self):
        reg = TenantRegistry()
        (r,) = make_requests([5], start_id=0)
        assert r.tenant is None
        assert reg.tenant_of(r) == DEFAULT_TENANT

    def test_effective_weight(self):
        reg = _registry()
        assert reg.effective_weight("gold") == 4.0
        assert reg.effective_weight("bulk") == 0.25
        assert reg.effective_weight(None) == 1.0

    def test_class_validation(self):
        with pytest.raises(ValueError):
            TenantClass(weight=0.0)
        with pytest.raises(ValueError):
            TenantClass(deadline_slack=-1.0)
        with pytest.raises(ValueError):
            TenantClass(rate=-5.0)
        with pytest.raises(ValueError):
            TenantClass(max_in_flight=0)

    def test_bucket_burst_defaults_to_one_second(self):
        assert TenantClass(rate=100.0).bucket_burst == 100.0
        assert TenantClass(rate=100.0, burst=50.0).bucket_burst == 50.0
        assert TenantClass().bucket_burst is None


# --------------------------------------------------------------------- #
# Token bucket
# --------------------------------------------------------------------- #


class TestTokenBucket:
    def test_starts_full_and_depletes(self):
        b = TokenBucket(rate=10.0, burst=30.0)
        assert b.try_take(30, now=0.0)
        assert not b.try_take(1, now=0.0)

    def test_refills_at_rate_capped_at_burst(self):
        b = TokenBucket(rate=10.0, burst=30.0)
        assert b.try_take(30, now=0.0)
        assert b.peek(now=1.0) == pytest.approx(10.0)
        assert b.peek(now=100.0) == pytest.approx(30.0)

    def test_sim_clock_only_never_rewinds(self):
        b = TokenBucket(rate=10.0, burst=20.0)
        assert b.try_take(20, now=5.0)
        # An earlier now must not refill (monotone sim clock).
        assert b.peek(now=1.0) == pytest.approx(0.0)

    def test_sustained_rate_never_starved_by_float_drift(self):
        b = TokenBucket(rate=7.0, burst=7.0)
        t = 1.0
        for _ in range(1000):
            assert b.try_take(7, now=t)
            t += 1.0

    def test_export_apply_round_trip(self):
        b = TokenBucket(rate=10.0, burst=30.0)
        b.try_take(12, now=3.0)
        clone = TokenBucket(rate=10.0, burst=30.0)
        clone.apply_state(b.export_state())
        assert clone.level == b.level and clone.last == b.last


class TestQuotaExceeded:
    def test_is_backpressure(self):
        err = QuotaExceeded("bulk", "token bucket empty")
        assert isinstance(err, BackpressureError)
        assert err.tenant == "bulk"
        assert "bulk" in str(err) and "token bucket empty" in str(err)


# --------------------------------------------------------------------- #
# Fair share
# --------------------------------------------------------------------- #


class TestFairShare:
    def _waiting(self, n=4):
        """``n`` requests per tenant; n=20 overcommits the 80-token
        batch budget so fair share actually has to arbitrate."""
        gold = make_requests([5, 6, 7, 8] * (n // 4), start_id=0)
        bulk = make_requests([5, 6, 7, 8] * (n // 4), start_id=1000)
        gold = [Request(**{**r.__dict__, "tenant": "gold"}) for r in gold]
        bulk = [Request(**{**r.__dict__, "tenant": "bulk"}) for r in bulk]
        return gold + bulk

    @staticmethod
    def _arrived(plane, waiting):
        # The loop contract: every request passes arrive() before it
        # can wait (select's run-level fast path relies on it).
        for r in waiting:
            plane.arrive(r)
        return waiting

    def test_single_tenant_is_exact_fast_path(self):
        plane = TenancyPlane(_registry())
        sched = DASScheduler(BATCH)
        waiting = make_requests([5, 6, 7, 8, 9], start_id=0)
        direct = DASScheduler(BATCH).select(waiting, 0.0)
        via_plane = plane.select(sched, waiting, 0.0)
        assert [r.request_id for row in via_plane.rows for r in row] == [
            r.request_id for row in direct.rows for r in row
        ]
        assert via_plane.info.get("scheduler") == direct.info.get("scheduler")

    def test_multi_tenant_partitions_rows(self):
        plane = TenancyPlane(_registry(), seed=0)
        waiting = self._arrived(plane, self._waiting())
        decision = plane.select(DASScheduler(BATCH), waiting, 0.0)
        info = decision.info
        assert info["scheduler"].startswith("fair-share/")
        assert set(info["rows_by_tenant"]) <= {"gold", "bulk"}
        # The heavier tenant gets at least as many rows.
        assert info["rows_by_tenant"].get("gold", 0) >= info[
            "rows_by_tenant"
        ].get("bulk", 0)

    def test_deterministic_given_seed(self):
        p1 = TenancyPlane(_registry(), seed=3)
        p2 = TenancyPlane(_registry(), seed=3)
        d1 = p1.select(
            DASScheduler(BATCH), self._arrived(p1, self._waiting()), 0.0
        )
        d2 = p2.select(
            DASScheduler(BATCH), self._arrived(p2, self._waiting()), 0.0
        )
        ids1 = [r.request_id for row in d1.rows for r in row]
        ids2 = [r.request_id for row in d2.rows for r in row]
        assert ids1 == ids2

    def test_weight_share_converges_over_decisions(self):
        """Across many contended decisions, rows split ≈ by weight."""
        plane = TenancyPlane(_registry(), seed=1)
        rows_by = {"gold": 0, "bulk": 0}
        for i in range(50):
            decision = plane.select(
                DASScheduler(BATCH),
                self._arrived(plane, self._waiting(n=20)),
                float(i),
            )
            for t, n in decision.info["rows_by_tenant"].items():
                rows_by[t] += n
        total = sum(rows_by.values())
        gold_share = rows_by["gold"] / total
        # weight 4.0 vs 0.25 → ideal gold share 16/17 ≈ 0.94.
        assert gold_share > 0.8


# --------------------------------------------------------------------- #
# Per-tenant conservation, all loops × {plain, chaos}
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("loop", sorted(LOOPS))
@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
class TestPerTenantConservation:
    def test_ledgers_sum_to_global(self, loop, chaos):
        reg = _registry()
        plane = TenancyPlane(reg, seed=5)
        requests = _workload(seed=2, registry=reg)
        m, tr = LOOPS[loop](requests, 7, tenancy=plane, chaos=chaos)
        m.assert_conservation()
        tr.reconcile(m)
        # finalize() already ran inside the loop; assert again explicitly
        # and check each tenant's own conservation identity.
        plane.book.assert_matches(m)
        totals = plane.book.totals()
        assert totals.arrived == m.arrived
        for tenant, led in plane.book.ledgers.items():
            assert led.conservation_ok, f"tenant {tenant} leaked"
        # The bulk tenant's quota actually bit (the workload over-runs
        # 60 tokens/s), so quota_rejected is exercised, and quota
        # rejections stay inside the rejected bucket.
        book = plane.book
        assert sum(l.quota_rejected for l in book.ledgers.values()) > 0
        for led in book.ledgers.values():
            assert led.quota_rejected <= led.rejected
            assert led.shed <= led.rejected


# --------------------------------------------------------------------- #
# tenancy=None bit-identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("loop", sorted(LOOPS))
class TestInertByDefault:
    def test_none_vs_default_plane_bit_identical(self, loop):
        """An untagged workload under a default plane is bit-identical
        to tenancy=None: same ledger digest, same trace digest."""
        requests = _workload(seed=3, mix=None)
        m0, tr0 = LOOPS[loop](requests, 7, tenancy=None)
        m1, tr1 = LOOPS[loop](requests, 7, tenancy=TenancyPlane())
        assert ledger_digest(m0) == ledger_digest(m1)
        assert trace_digest(tr0) == trace_digest(tr1)

    def test_none_vs_default_plane_bit_identical_chaos(self, loop):
        requests = _workload(seed=4, mix=None)
        m0, tr0 = LOOPS[loop](requests, 9, tenancy=None, chaos=True)
        m1, tr1 = LOOPS[loop](
            requests, 9, tenancy=TenancyPlane(), chaos=True
        )
        assert ledger_digest(m0) == ledger_digest(m1)
        assert trace_digest(tr0) == trace_digest(tr1)


# --------------------------------------------------------------------- #
# Durability: crash / restore with tenant state
# --------------------------------------------------------------------- #


def _crash_and_restore(run, requests, seed, *, tenancy, step, k, chaos=False):
    plane = DurabilityPlane(
        DurabilityConfig(checkpoint_every=k, crash=SchedulerCrash(step))
    )
    try:
        run(requests, seed, tenancy=tenancy, chaos=chaos, plane=plane)
        return None
    except SchedulerCrashed:
        pass
    state = plane.restore()
    return run(
        requests, seed, tenancy=tenancy, chaos=chaos, plane=plane, resume=state
    )


@pytest.mark.parametrize("loop", sorted(LOOPS))
class TestCrashRestoreTenancy:
    def test_restored_run_matches_reference(self, loop):
        reg = _registry()
        requests = _workload(seed=5, registry=reg)

        ref_plane = TenancyPlane(reg, seed=11)
        m_ref, tr_ref = LOOPS[loop](requests, 7, tenancy=ref_plane, chaos=True)

        crash_plane = TenancyPlane(reg, seed=11)
        out = _crash_and_restore(
            LOOPS[loop], requests, 7, tenancy=crash_plane, step=4, k=2,
            chaos=True,
        )
        if out is None:
            pytest.skip("planned crash did not fire for this loop/seed")
        m_crash, tr_crash = out
        assert ledger_digest(m_ref) == ledger_digest(m_crash)
        # Per-tenant ledgers survive the crash bit-for-bit too.
        assert ref_plane.book.export_state() == crash_plane.book.export_state()
        crash_plane.book.assert_matches(m_crash)

    def test_plane_state_round_trips(self, loop):
        reg = _registry()
        plane = TenancyPlane(reg, seed=2)
        requests = _workload(seed=6, registry=reg)
        LOOPS[loop](requests, 3, tenancy=plane)
        state = copy.deepcopy(plane.export_state())
        clone = TenancyPlane(reg, seed=2)
        clone.apply_state(state)
        assert clone.export_state() == state


# --------------------------------------------------------------------- #
# Server: typed quota rejection
# --------------------------------------------------------------------- #


class TestServerQuota:
    def _server(self, registry):
        return TCBServer(
            model_config=ModelConfig.tiny(),
            batch=BatchConfig(num_rows=2, row_length=16),
            seed=11,
            max_new_tokens=4,
            tenancy=TenancyPlane(registry),
        )

    def test_quota_exceeded_raised_and_ledgered(self):
        reg = TenantRegistry(
            {
                "bulk": TenantClass(
                    name="bulk", weight=0.25, rate=10.0, burst=10.0
                )
            }
        )
        server = self._server(reg)
        server.submit([5, 6], tenant="bulk")  # 2 tokens, fits burst 10
        server.submit([5] * 8, tenant="bulk")  # 8 more, bucket now empty
        with pytest.raises(QuotaExceeded) as exc:
            server.submit([5, 6, 7], tenant="bulk")
        assert exc.value.tenant == "bulk"
        led = server.tenancy.book.ledger("bulk")
        assert led.quota_rejected == 1
        assert led.rejected == 1
        assert led.arrived == 3

    def test_quota_is_backpressure_to_clients(self):
        reg = TenantRegistry(
            {"bulk": TenantClass(name="bulk", rate=5.0, burst=5.0)}
        )
        server = self._server(reg)
        server.submit([1] * 5, tenant="bulk")
        with pytest.raises(BackpressureError):
            server.submit([1] * 5, tenant="bulk")

    def test_in_flight_cap_releases_after_service(self):
        reg = TenantRegistry(
            {"std": TenantClass(name="std", max_in_flight=8)}
        )
        server = self._server(reg)
        server.submit([5] * 8, tenant="std")  # 8 tokens: at the cap
        with pytest.raises(QuotaExceeded):
            server.submit([5], tenant="std")
        server.run_until_drained()
        # Terminal released the charge: the cap has room again.
        server.submit([5] * 8, tenant="std")

    def test_tenant_class_stamps_weight_and_slack(self):
        reg = TenantRegistry({"gold": "premium", "bulk": "batch"})
        server = self._server(reg)
        rid_gold = server.submit([5, 6], tenant="gold")
        rid_bulk = server.submit([5, 6], tenant="bulk")
        waiting = {
            r.request_id: r
            for r in server._queue.waiting(server._now()).by_arrival
        }
        assert waiting[rid_gold].weight == 4.0
        assert waiting[rid_bulk].weight == 0.25
        slack_gold = (
            waiting[rid_gold].deadline - waiting[rid_gold].arrival
        )
        slack_bulk = (
            waiting[rid_bulk].deadline - waiting[rid_bulk].arrival
        )
        assert slack_bulk == pytest.approx(4.0 * slack_gold)


# --------------------------------------------------------------------- #
# Workload tenant mix + shedding policy
# --------------------------------------------------------------------- #


class TestWorkloadTenantMix:
    def test_no_mix_is_bit_identical_to_pre_tenancy(self):
        base = _workload(seed=8, mix=None)
        again = _workload(seed=8, mix=None)
        assert base == again
        assert all(r.tenant is None for r in base)

    def test_mix_preserves_arrivals_and_lengths(self):
        plain = _workload(seed=8, mix=None)
        mixed = _workload(seed=8)
        assert [r.arrival for r in mixed] == [r.arrival for r in plain]
        assert [r.length for r in mixed] == [r.length for r in plain]
        tenants = {r.tenant for r in mixed}
        assert tenants <= {"gold", "std", "bulk"}
        assert len(tenants) > 1

    def test_registry_stamps_weight_and_scales_deadline(self):
        reg = _registry()
        plain = _workload(seed=9, mix=None)
        mixed = _workload(seed=9, registry=reg)
        for p, m in zip(plain, mixed):
            cls = reg.tenant_class(m.tenant)
            assert m.weight == cls.weight
            assert m.deadline - m.arrival == pytest.approx(
                (p.deadline - p.arrival) * cls.deadline_slack
            )

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, tenant_mix=())
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, tenant_mix=(("a", -0.5),))
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, tenant_mix=(("a", 0.0),))


class TestTenantWeightedShed:
    def test_low_weight_tenants_shed_first(self):
        reqs = make_requests([10, 10, 10], start_id=0)
        tagged = [
            Request(**{**r.__dict__, "tenant": t, "weight": w})
            for r, (t, w) in zip(
                reqs, [("gold", 4.0), ("std", 1.0), ("bulk", 0.25)]
            )
        ]
        order = TenantWeightedShed().order(tagged, now=0.0)
        assert [r.tenant for r in order] == ["bulk", "std", "gold"]

    def test_registered_with_make_shedder(self):
        assert make_shedder("tenant-weighted").name == "tenant-weighted"
