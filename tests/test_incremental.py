"""Tests for KV-cached incremental decoding (repro.model.incremental)."""

import numpy as np
import pytest

from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit
from repro.core.slotting import pack_into_slots
from repro.model.incremental import IncrementalDecoder, greedy_decode_incremental
from repro.types import Request


def _layout(reqs, rows=2, cap=16):
    res = pack_first_fit(reqs, num_rows=rows, row_length=cap)
    assert not res.rejected
    return res.layout


class TestIncrementalDecoding:
    def test_matches_full_recompute(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 3, 7, 2, 4, 6])
        layout = _layout(reqs)
        full = tiny_model.greedy_decode(layout, max_new_tokens=6)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=6)
        assert full.outputs == inc.outputs
        assert full.completion_step == inc.completion_step
        assert full.steps_run == inc.steps_run

    def test_matches_on_naive_layout(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 9, 2])
        layout = BatchLayout.naive(reqs)
        full = tiny_model.greedy_decode(layout, max_new_tokens=5)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=5)
        assert full.outputs == inc.outputs

    def test_matches_on_slotted_layout(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([3, 4, 2, 4])
        res = pack_into_slots(reqs, num_rows=2, row_length=8, slot_size=4)
        full = tiny_model.greedy_decode(res.layout, max_new_tokens=4)
        inc = greedy_decode_incremental(tiny_model, res.layout, max_new_tokens=4)
        assert full.outputs == inc.outputs

    def test_matches_single_request(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([6])
        layout = _layout(reqs, rows=1, cap=8)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=8)
        ref = tiny_model.greedy_decode_single(reqs[0].tokens, max_new_tokens=8)
        assert inc.outputs[reqs[0].request_id] == ref

    @pytest.mark.parametrize("budget", [1, 2, 5])
    def test_budget_respected(self, tiny_model, tokenized_requests, budget):
        reqs = tokenized_requests([4, 3])
        layout = _layout(reqs, rows=1, cap=8)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=budget)
        for rid, toks in inc.outputs.items():
            assert len(toks) <= budget

    def test_empty_layout(self, tiny_model):
        layout = BatchLayout(num_rows=1, row_length=8)
        res = greedy_decode_incremental(tiny_model, layout)
        assert res.outputs == {}

    def test_decoder_rejects_empty_layout(self, tiny_model):
        layout = BatchLayout(num_rows=1, row_length=8)
        with pytest.raises(ValueError, match="no requests"):
            IncrementalDecoder(tiny_model, layout, 4)

    def test_uneven_rows(self, tiny_model, tokenized_requests):
        """Rows with different segment counts (padding in the decoder)."""
        reqs = tokenized_requests([3, 3, 3, 9])
        layout = _layout(reqs, rows=2, cap=9)
        full = tiny_model.greedy_decode(layout, max_new_tokens=4)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=4)
        assert full.outputs == inc.outputs

    def test_many_steps_stay_exact(self, tiny_model, tokenized_requests):
        """Cache drift would accumulate over long decodes — assert none."""
        reqs = tokenized_requests([5, 7])
        layout = _layout(reqs, rows=1, cap=12)
        full = tiny_model.greedy_decode(layout, max_new_tokens=16)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=16)
        assert full.outputs == inc.outputs
