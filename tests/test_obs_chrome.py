"""Golden schema + round-trip tests for the Chrome trace exporter.

The ``trace_event`` schema (envelope keys, ``ph`` phase letters,
pid/tid lane conventions, the ``args.t0``/``t1`` raw-sim-time carry) is
a contract with external tooling (``chrome://tracing``, Perfetto) and
with :func:`repro.obs.export.spans_from_chrome_trace`.  These tests pin
it: a change that breaks any of them breaks saved traces in the wild.
"""

from __future__ import annotations

import json

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.faults.engine import FaultyEngine
from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs.export import (
    PID_ENGINES,
    PID_REQUESTS,
    PID_SCHEDULER,
    TIME_SCALE,
    chrome_trace,
    chrome_trace_json,
    spans_from_chrome_trace,
    spans_to_csv,
    validate_chrome_trace,
)
from repro.obs.recorder import Tracer
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

import pytest


@pytest.fixture(scope="module")
def traced_run():
    batch = BatchConfig(num_rows=8, row_length=64)
    tracer = Tracer()
    plan = FaultPlan(FaultConfig.chaos(0.2, downtime=0.2), seed=11)
    sim = ServingSimulator(
        DASScheduler(batch),
        FaultyEngine(ConcatEngine(batch), plan),
        trace=tracer,
    )
    wl = WorkloadGenerator(
        rate=120.0,
        lengths=LengthDistribution(family="normal", mean=12, spread=8, low=3, high=48),
        deadlines=DeadlineModel(base_slack=2.0),
        horizon=2.0,
        seed=11,
    )
    metrics = sim.run(wl).metrics
    return tracer, metrics


class TestChromeSchema:
    """Golden pins: keys, phase letters, lane conventions."""

    def test_envelope(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["generator"] == "repro.obs"
        assert set(doc["otherData"]["outcomes"]) == {
            "served", "expired", "rejected", "abandoned",
        }

    def test_event_required_keys_and_phases(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        phases_seen = set()
        for ev in doc["traceEvents"]:
            assert {"name", "cat", "ph", "ts", "pid", "tid", "args"} <= set(ev)
            assert ev["ph"] in ("M", "X", "i")
            phases_seen.add(ev["ph"])
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] == "t"  # thread-scoped instant
        # A fault-injected run exercises all three phase letters.
        assert phases_seen == {"M", "X", "i"}

    def test_lane_conventions(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        assert (PID_REQUESTS, PID_ENGINES, PID_SCHEDULER) == (1, 2, 3)
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        assert [ev["args"]["name"] for ev in meta] == [
            "requests", "engines", "scheduler",
        ]
        for ev in doc["traceEvents"]:
            if ev["cat"] == "request":
                assert ev["pid"] == PID_REQUESTS
                assert ev["tid"] == ev["args"]["request_id"]
            elif ev["cat"] == "engine":
                assert ev["pid"] == PID_ENGINES
            elif ev["cat"] == "scheduler":
                assert ev["pid"] == PID_SCHEDULER
                assert ev["tid"] == 0

    def test_timestamps_are_scaled_microseconds(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        for ev in doc["traceEvents"]:
            if ev["cat"] == "request":
                assert ev["ts"] == ev["args"]["t0"] * TIME_SCALE

    def test_batch_events_carry_engine_annotations(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        batches = [
            ev
            for ev in doc["traceEvents"]
            if ev["cat"] == "engine" and ev["name"] == "batch"
        ]
        assert batches
        for ev in batches:
            args = ev["args"]
            assert "padding_efficiency" in args
            assert "memory_watermark_bytes" in args
            assert "cost_total" in args

    def test_scheduler_events_carry_das_decision(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        decisions = [
            ev for ev in doc["traceEvents"] if ev["cat"] == "scheduler"
        ]
        assert decisions
        for ev in decisions:
            assert ev["name"] == "das"
            assert "eta" in ev["args"]
            assert "q" in ev["args"]
            assert "num_utility_dominant" in ev["args"]
            assert "num_deadline_aware" in ev["args"]

    def test_validator_accepts_export_and_rejects_mutations(self, traced_run):
        tracer, _ = traced_run
        doc = chrome_trace(tracer)
        validate_chrome_trace(doc)

        bad = json.loads(chrome_trace_json(tracer))
        del bad["traceEvents"][0]["name"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(bad)

        bad = json.loads(chrome_trace_json(tracer))
        bad["traceEvents"][3]["ph"] = "B"
        with pytest.raises(ValueError, match="unknown ph"):
            validate_chrome_trace(bad)

        bad = json.loads(chrome_trace_json(tracer))
        bad["traceEvents"][3]["pid"] = 9
        with pytest.raises(ValueError, match="unknown pid"):
            validate_chrome_trace(bad)

        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})


class TestRoundTrip:
    def test_export_parse_reconstruct_is_exact(self, traced_run):
        tracer, _ = traced_run
        # Through actual JSON text, not just the dict: the contract is
        # with the serialized artifact.
        doc = json.loads(chrome_trace_json(tracer))
        rebuilt = spans_from_chrome_trace(doc)
        original = sorted(
            tracer.spans(),
            key=lambda s: (s.request_id, s.t_start, s.t_end, s.phase),
        )
        assert len(rebuilt) == len(original)
        for a, b in zip(rebuilt, original):
            assert a.request_id == b.request_id
            assert a.phase == b.phase
            assert a.t_start == b.t_start  # exact float equality
            assert a.t_end == b.t_end
            assert a.duration == b.duration

    def test_csv_has_one_row_per_span(self, traced_run):
        tracer, _ = traced_run
        lines = spans_to_csv(tracer).strip().splitlines()
        assert lines[0] == "request_id,phase,t_start,t_end,duration,attrs"
        assert len(lines) == 1 + len(tracer.spans())
