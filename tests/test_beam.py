"""Tests for beam-search decoding under ConcatBatching."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core.layout import BatchLayout
from repro.core.masks import NEG_INF
from repro.core.packing import pack_first_fit
from repro.model.beam import BeamResult, beam_decode, mapped_cross_attention_mask
from repro.model.seq2seq import Seq2SeqModel
from repro.types import Request


def _layout(reqs, rows=1, cap=16):
    res = pack_first_fit(reqs, num_rows=rows, row_length=cap)
    assert not res.rejected
    return res.layout


class TestMappedCrossMask:
    def test_beams_map_to_request_segments(self):
        dec = np.array([[100, 100, 101, -1]])  # two beams
        enc = np.array([[7, 7, 8]])
        mask = mapped_cross_attention_mask(dec, enc, {100: 7, 101: 8})
        assert mask[0, 0].tolist() == [0.0, 0.0, NEG_INF]
        assert mask[0, 2].tolist() == [NEG_INF, NEG_INF, 0.0]
        assert np.all(mask[0, 3] == NEG_INF)  # padding sees nothing

    def test_unmapped_ids_blocked(self):
        dec = np.array([[5]])
        enc = np.array([[7]])
        mask = mapped_cross_attention_mask(dec, enc, {})
        assert mask[0, 0, 0] == NEG_INF

    def test_batch_mismatch(self):
        with pytest.raises(ValueError, match="batch"):
            mapped_cross_attention_mask(
                np.zeros((1, 2), dtype=int), np.zeros((2, 2), dtype=int), {}
            )


class TestBeamDecode:
    def test_beam_one_equals_greedy(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 3, 6])
        layout = _layout(reqs)
        greedy = tiny_model.greedy_decode(layout, max_new_tokens=5)
        beam = beam_decode(tiny_model, layout, max_new_tokens=5, beam_width=1)
        assert beam.outputs == greedy.outputs

    def test_wider_beam_never_scores_worse(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 4])
        layout = _layout(reqs, cap=12)
        b1 = beam_decode(tiny_model, layout, max_new_tokens=6, beam_width=1)
        b4 = beam_decode(tiny_model, layout, max_new_tokens=6, beam_width=4)
        for rid in b1.scores:
            assert b4.scores[rid] >= b1.scores[rid] - 1e-9

    def test_beam_strictly_improves_somewhere(self):
        """Found offline: model seed 0, data seed 0 has requests where
        beam-4 finds a strictly better sequence than greedy."""
        cfg = ModelConfig.tiny()
        model = Seq2SeqModel(cfg, seed=0)
        rng = np.random.default_rng(0)
        reqs = [
            Request(
                request_id=i,
                length=l,
                tokens=tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=l)),
            )
            for i, l in enumerate([5, 4])
        ]
        layout = _layout(reqs, cap=12)
        b1 = beam_decode(model, layout, max_new_tokens=6, beam_width=1)
        b4 = beam_decode(model, layout, max_new_tokens=6, beam_width=4)
        assert any(
            b4.scores[rid] > b1.scores[rid] + 1e-6 for rid in b1.scores
        )

    def test_concat_beams_match_isolated_beams(self, tiny_model, tokenized_requests):
        """Beam search over a concatenated batch equals per-request beam
        search — the ConcatBatching correctness property extended."""
        reqs = tokenized_requests([5, 3, 6])
        layout = _layout(reqs)
        joint = beam_decode(tiny_model, layout, max_new_tokens=5, beam_width=3)
        for r in reqs:
            solo_layout = BatchLayout.naive([r])
            solo = beam_decode(
                tiny_model, solo_layout, max_new_tokens=5, beam_width=3
            )
            assert joint.outputs[r.request_id] == solo.outputs[r.request_id]
            assert joint.scores[r.request_id] == pytest.approx(
                solo.scores[r.request_id], abs=1e-9
            )

    def test_length_penalty_changes_normalisation(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5])
        layout = _layout(reqs, cap=8)
        raw = beam_decode(tiny_model, layout, beam_width=2, length_penalty=0.0)
        norm = beam_decode(tiny_model, layout, beam_width=2, length_penalty=1.0)
        rid = reqs[0].request_id
        if raw.outputs[rid]:
            assert norm.scores[rid] == pytest.approx(
                raw.scores[rid] / len(raw.outputs[rid])
                if norm.outputs[rid] == raw.outputs[rid]
                else norm.scores[rid]
            )

    def test_invalid_beam_width(self, tiny_model, tokenized_requests):
        layout = _layout(tokenized_requests([4]))
        with pytest.raises(ValueError, match="beam_width"):
            beam_decode(tiny_model, layout, beam_width=0)

    def test_empty_layout(self, tiny_model):
        layout = BatchLayout(num_rows=1, row_length=8)
        res = beam_decode(tiny_model, layout)
        assert res.outputs == {}

    def test_budget_respected(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 5])
        layout = _layout(reqs, cap=12)
        res = beam_decode(tiny_model, layout, max_new_tokens=3, beam_width=2)
        assert all(len(v) <= 3 for v in res.outputs.values())
