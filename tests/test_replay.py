"""Tests for workload trace persistence."""

import math

import pytest

from repro.types import Request, make_requests
from repro.workload.generator import WorkloadGenerator
from repro.workload.replay import (
    load_trace,
    save_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)


class TestTraceRoundtrip:
    def test_basic_roundtrip(self):
        reqs = make_requests(
            [3, 7], arrivals=[0.5, 0.1], deadlines=[2.0, 3.0], start_id=0
        )
        back = trace_from_jsonl(trace_to_jsonl(reqs))
        # Output is arrival-sorted.
        assert [r.request_id for r in back] == [1, 0]
        assert {r.request_id: r.length for r in back} == {0: 3, 1: 7}
        assert all(isinstance(r, Request) for r in back)

    def test_infinite_deadline_roundtrip(self):
        reqs = make_requests([4], start_id=0)
        back = trace_from_jsonl(trace_to_jsonl(reqs))
        assert math.isinf(back[0].deadline)

    def test_tokens_and_weight_roundtrip(self):
        r = Request(request_id=5, length=3, tokens=(7, 8, 9), weight=2.5)
        back = trace_from_jsonl(trace_to_jsonl([r]))[0]
        assert back.tokens == (7, 8, 9)
        assert back.weight == 2.5

    def test_generated_workload_roundtrip(self):
        reqs = WorkloadGenerator(rate=40.0, horizon=2.0, seed=3).generate()
        back = trace_from_jsonl(trace_to_jsonl(reqs))
        assert [(r.arrival, r.length, r.deadline) for r in back] == [
            (r.arrival, r.length, r.deadline) for r in reqs
        ]

    def test_file_roundtrip(self, tmp_path):
        reqs = make_requests([3, 4, 5], start_id=10)
        path = tmp_path / "trace.jsonl"
        save_trace(reqs, path)
        assert load_trace(path) == sorted(
            reqs, key=lambda r: (r.arrival, r.request_id)
        )

    def test_bad_line_reported_with_number(self):
        with pytest.raises(ValueError, match="line 2"):
            trace_from_jsonl('{"id":0,"length":3,"arrival":0.0}\nnot json')

    def test_blank_lines_skipped(self):
        text = trace_to_jsonl(make_requests([3], start_id=0)) + "\n\n"
        assert len(trace_from_jsonl(text)) == 1

    def test_replayable_through_simulator(self):
        from repro.config import BatchConfig
        from repro.engine.concat import ConcatEngine
        from repro.scheduling.baselines import FCFSScheduler
        from repro.serving.simulator import ServingSimulator

        wl = WorkloadGenerator(rate=60.0, horizon=2.0, seed=1)
        original = wl.generate()
        replayed = trace_from_jsonl(trace_to_jsonl(original))
        batch = BatchConfig(num_rows=4, row_length=50)
        m1 = ServingSimulator(FCFSScheduler(batch), ConcatEngine(batch)).run(
            list(original), horizon=2.0
        ).metrics
        m2 = ServingSimulator(FCFSScheduler(batch), ConcatEngine(batch)).run(
            replayed, horizon=2.0
        ).metrics
        assert m1.num_served == m2.num_served
        assert m1.total_utility == pytest.approx(m2.total_utility)
