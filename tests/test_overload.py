"""Unit + property tests for the overload plane (repro.overload).

Four layers, bottom-up:

1. backpressure — ``QueueLimits`` validation and the typed
   ``QueuePressure`` reading,
2. shedding — policy ordering, victim selection until both excesses
   clear, ``RandomShed`` replay determinism,
3. breaker — the closed → open → half-open state machine on the
   simulated clock, including probe semantics,
4. controller — hysteresis degradation, brownout capping, conservation
   under shedding in all three serving loops, and the determinism
   property the ISSUE pins: same seed + same fault plan ⇒ identical
   transition log.
"""

from __future__ import annotations

import pytest

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.faults.engine import FaultyEngine
from repro.faults.plan import FaultConfig, FaultPlan
from repro.overload import (
    BackpressureError,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    DegradationConfig,
    LatestDeadlineFirst,
    LowestUtilityFirst,
    OverloadConfig,
    OverloadController,
    QueueLimits,
    QueuePressure,
    RandomShed,
    make_shedder,
)
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator
from repro.types import Request
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=8, row_length=64)


def _stable_summary(metrics: ServingMetrics) -> dict:
    """Metrics summary minus wall-clock scheduler overhead.

    ``sched_overhead`` is real decision-loop time (the sanctioned
    TCB003 exception for Fig. 16), so it is the one summary entry that
    legitimately differs between two otherwise identical runs.
    """
    out = metrics.summary()
    out.pop("sched_overhead")
    return out


def _req(rid: int, length: int = 4, arrival: float = 0.0, deadline: float = 100.0):
    return Request(request_id=rid, length=length, arrival=arrival, deadline=deadline)


def _workload(seed: int, rate: float = 300.0, horizon: float = 1.5):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=12, spread=8, low=3, high=48),
        deadlines=DeadlineModel(base_slack=2.0, jitter=1.0),
        horizon=horizon,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Backpressure: limits + pressure reading
# ---------------------------------------------------------------------- #


class TestQueueLimits:
    def test_default_is_unbounded(self):
        assert QueueLimits().unbounded
        assert not QueueLimits(max_tokens=100).unbounded
        assert not QueueLimits(max_requests=10).unbounded

    @pytest.mark.parametrize(
        "kwargs", [{"max_requests": 0}, {"max_tokens": 0}, {"max_requests": -1}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QueueLimits(**kwargs)

    def test_pressure_excess(self):
        limits = QueueLimits(max_requests=2, max_tokens=20)
        p = QueuePressure(queued_requests=5, queued_tokens=28, limits=limits)
        assert p.excess_requests == 3
        assert p.excess_tokens == 8
        assert p.overloaded

    def test_pressure_under_limits(self):
        p = QueuePressure(
            queued_requests=1, queued_tokens=5, limits=QueueLimits(max_tokens=20)
        )
        assert p.excess_requests == 0
        assert p.excess_tokens == 0
        assert not p.overloaded

    def test_queue_pressure_is_o1_and_tracked(self):
        q = RequestQueue()
        q.extend([_req(0, 5), _req(1, 7)])
        assert q.queued_tokens == 12
        q.expire(200.0)  # deadline 100 < 200: both expire
        assert q.queued_tokens == 0
        p = q.pressure(QueueLimits(max_tokens=10))
        assert p.queued_tokens == 0 and not p.overloaded

    def test_backpressure_error_carries_reason_and_pressure(self):
        p = QueuePressure(3, 30, QueueLimits(max_tokens=10))
        err = BackpressureError("queue-full", p)
        assert err.reason == "queue-full"
        assert err.pressure is p
        assert "queue-full" in str(err) and "30 tokens" in str(err)


# ---------------------------------------------------------------------- #
# Shedding policies
# ---------------------------------------------------------------------- #


class TestSheddingPolicies:
    WAITING = [
        _req(0, length=2, deadline=10.0),  # utility 0.5
        _req(1, length=8, deadline=30.0),  # utility 0.125
        _req(2, length=4, deadline=20.0),  # utility 0.25
    ]

    def test_lowest_utility_order(self):
        order = LowestUtilityFirst().order(self.WAITING, 0.0)
        assert [r.request_id for r in order] == [1, 2, 0]

    def test_latest_deadline_order(self):
        order = LatestDeadlineFirst().order(self.WAITING, 0.0)
        assert [r.request_id for r in order] == [1, 2, 0]
        # Tie on deadline breaks on request_id.
        tied = [_req(5, deadline=9.0), _req(3, deadline=9.0)]
        assert [r.request_id for r in LatestDeadlineFirst().order(tied, 0.0)] == [3, 5]

    def test_select_victims_clears_both_excesses(self):
        limits = QueueLimits(max_requests=2, max_tokens=6)
        # 3 requests / 14 tokens queued: excess = 1 request, 8 tokens.
        p = QueuePressure(3, 14, limits)
        victims = LowestUtilityFirst().select_victims(self.WAITING, p, 0.0)
        # Shedding id=1 (8 tokens) clears both excesses at once.
        assert [r.request_id for r in victims] == [1]

    def test_select_victims_token_pressure_takes_several(self):
        p = QueuePressure(3, 14, QueueLimits(max_tokens=4))
        victims = LatestDeadlineFirst().select_victims(self.WAITING, p, 0.0)
        # Needs 10 tokens: id=1 frees 8, id=2 frees 4 more.
        assert [r.request_id for r in victims] == [1, 2]

    def test_select_victims_no_pressure_is_empty(self):
        p = QueuePressure(3, 14, QueueLimits())
        assert LowestUtilityFirst().select_victims(self.WAITING, p, 0.0) == []

    def test_random_shed_replays_exactly(self):
        a, b = RandomShed(seed=7), RandomShed(seed=7)
        seq_a = [
            [r.request_id for r in a.order(self.WAITING, 0.0)] for _ in range(3)
        ]
        seq_b = [
            [r.request_id for r in b.order(self.WAITING, 0.0)] for _ in range(3)
        ]
        assert seq_a == seq_b
        a.reset()
        assert [r.request_id for r in a.order(self.WAITING, 0.0)] == seq_a[0]

    def test_random_shed_ignores_caller_order(self):
        fwd, rev = RandomShed(seed=3), RandomShed(seed=3)
        got_fwd = [r.request_id for r in fwd.order(self.WAITING, 0.0)]
        got_rev = [r.request_id for r in rev.order(self.WAITING[::-1], 0.0)]
        assert got_fwd == got_rev

    def test_random_shed_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RandomShed(seed=-1)

    def test_make_shedder(self):
        assert make_shedder("lowest-utility").name == "lowest-utility"
        assert make_shedder("latest-deadline").name == "latest-deadline"
        rs = make_shedder("random", seed=5)
        assert isinstance(rs, RandomShed) and rs.seed == 5
        with pytest.raises(ValueError, match="unknown shedding policy"):
            make_shedder("coin-flip")


# ---------------------------------------------------------------------- #
# Circuit breaker state machine
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)

    def test_trips_after_consecutive_failures_only(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=3, recovery_time=1.0))
        br.record_failure(0.1)
        br.record_failure(0.2)
        br.record_success(0.3)  # resets the streak
        br.record_failure(0.4)
        br.record_failure(0.5)
        assert br.state is BreakerState.CLOSED
        br.record_failure(0.6)
        assert br.is_open
        assert br.retry_at == pytest.approx(1.6)

    def test_open_blocks_until_recovery_then_half_opens(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=1, recovery_time=0.5))
        br.record_failure(1.0, kind="crash")
        assert br.is_open
        assert not br.allow(1.2)
        assert br.state is BreakerState.OPEN
        # The allow() check at retry_at IS the probe admission.
        assert br.allow(1.5)
        assert br.state is BreakerState.HALF_OPEN

    def test_probe_success_closes_after_required_probes(self):
        br = CircuitBreaker(
            BreakerConfig(failure_threshold=1, recovery_time=0.5, half_open_probes=2)
        )
        br.record_failure(0.0)
        assert br.allow(0.5)
        br.record_success(0.6)
        assert br.state is BreakerState.HALF_OPEN  # one probe is not enough
        assert br.allow(0.7)
        br.record_success(0.8)
        assert br.state is BreakerState.CLOSED

    def test_probe_failure_reopens_immediately(self):
        br = CircuitBreaker(BreakerConfig(failure_threshold=2, recovery_time=0.5))
        br.record_failure(0.0)
        br.record_failure(0.1)
        assert br.allow(0.6)  # half-open
        br.record_failure(0.7, kind="oom")
        assert br.is_open
        assert br.retry_at == pytest.approx(1.2)
        # A single failure must NOT re-trip after the next probe closes
        # it — the consecutive-failure counter was reset.
        assert br.allow(1.2)
        br.record_success(1.3)
        assert br.state is BreakerState.CLOSED
        br.record_failure(1.4)
        assert br.state is BreakerState.CLOSED

    def test_transition_log_records_full_history(self):
        br = CircuitBreaker(
            BreakerConfig(failure_threshold=1, recovery_time=0.5), engine=3
        )
        br.record_failure(0.0, kind="crash")
        br.allow(0.5)
        br.record_success(0.6)
        states = [(t.old, t.new) for t in br.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert all(t.engine == 3 for t in br.transitions)
        ts = [t.t for t in br.transitions]
        assert ts == sorted(ts)


# ---------------------------------------------------------------------- #
# Degradation controller
# ---------------------------------------------------------------------- #


def _degradation(**overrides) -> DegradationConfig:
    base = dict(
        shed_enter_delay=1.0,
        shed_exit_delay=0.5,
        brownout_enter_delay=2.0,
        brownout_exit_delay=1.0,
        miss_window=8,
        min_window=4,
        shed_enter_miss=0.4,
        shed_exit_miss=0.2,
        brownout_enter_miss=0.7,
        brownout_exit_miss=0.4,
        shed_min_slack=0.5,
        brownout_min_slack=2.0,
    )
    base.update(overrides)
    return DegradationConfig(**base)


def _aged_queue(age: float, *, now: float) -> RequestQueue:
    q = RequestQueue()
    q.add(_req(0, arrival=now - age, deadline=now + 100.0))
    return q


class TestDegradationConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"shed_exit_delay": 1.5},  # exit above enter
            {"brownout_exit_miss": 0.9},
            {"brownout_enter_delay": 0.5},  # below shed enter
            {"miss_window": 0},
            {"brownout_batch_fraction": 0.0},
            {"shed_min_slack": -1.0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            _degradation(**overrides)


class TestOverloadControllerHysteresis:
    def _controller(self, **overrides) -> OverloadController:
        return OverloadController(
            OverloadConfig(degradation=_degradation(**overrides))
        )

    def test_delay_drives_levels_with_hysteresis(self):
        ov = self._controller()
        assert ov.update(10.0, _aged_queue(0.2, now=10.0)).label == "normal"
        # 0.7 is between exit (0.5) and enter (1.0): stays NORMAL.
        assert ov.update(11.0, _aged_queue(0.7, now=11.0)).label == "normal"
        assert ov.update(12.0, _aged_queue(1.2, now=12.0)).label == "shed"
        # ... and the same 0.7 now stays SHED — that gap is the hysteresis.
        assert ov.update(13.0, _aged_queue(0.7, now=13.0)).label == "shed"
        assert ov.update(14.0, _aged_queue(2.5, now=14.0)).label == "brownout"
        # Between brownout exit (1.0) and enter (2.0): stays BROWNOUT.
        assert ov.update(15.0, _aged_queue(1.5, now=15.0)).label == "brownout"
        # Below every exit threshold: straight back to NORMAL.
        assert ov.update(16.0, RequestQueue()).label == "normal"
        labels = [(t.old, t.new) for t in ov.transitions]
        assert labels == [
            ("normal", "shed"),
            ("shed", "brownout"),
            ("brownout", "normal"),
        ]

    def test_miss_rate_needs_min_window(self):
        ov = self._controller()
        ov.observe_outcomes(missed=3)  # 3 < min_window=4: not trusted
        assert ov.miss_rate == 0.0
        assert ov.update(0.0, RequestQueue()).label == "normal"
        ov.observe_outcomes(missed=1)
        assert ov.miss_rate == 1.0
        assert ov.update(0.1, RequestQueue()).label == "brownout"

    def test_miss_window_is_rolling(self):
        ov = self._controller()
        ov.observe_outcomes(missed=8)
        assert ov.miss_rate == 1.0
        ov.observe_outcomes(served=8)  # window (maxlen 8) fully displaced
        assert ov.miss_rate == 0.0

    def test_level_is_max_of_signals(self):
        ov = self._controller()
        ov.observe_outcomes(served=2, missed=2)  # miss 0.5 >= shed_enter 0.4
        assert ov.update(0.0, RequestQueue()).label == "shed"

    def test_admission_floor_tightens_with_level(self):
        ov = self._controller()
        tight = _req(1, arrival=0.0, deadline=1.0)  # slack 1.0 at t=0
        loose = _req(2, arrival=0.0, deadline=10.0)
        assert ov.admit(tight, 0.0) and ov.admit(loose, 0.0)
        ov.update(5.0, _aged_queue(1.5, now=5.0))  # -> SHED (floor 0.5)
        assert not ov.admit(_req(3, deadline=5.2), 5.0)  # slack 0.2 < 0.5
        assert ov.admit(_req(4, deadline=6.0), 5.0)  # slack 1.0 >= 0.5
        ov.update(6.0, _aged_queue(2.5, now=6.0))  # -> BROWNOUT (floor 2.0)
        assert not ov.admit(_req(5, deadline=7.0), 6.0)  # slack 1.0 < 2.0
        assert ov.admit(_req(6, deadline=9.0), 6.0)
        assert ov.denied == 2

    def test_brownout_caps_batch_and_budget(self):
        ov = self._controller(brownout_batch_fraction=0.5)
        batch = [_req(i) for i in range(4)]
        assert ov.cap_batch(batch) == batch  # NORMAL: untouched
        assert ov.scale_budget(100) == 100
        ov.update(5.0, _aged_queue(3.0, now=5.0))  # -> BROWNOUT
        assert ov.cap_batch(batch) == batch[:2]
        assert ov.cap_batch([batch[0]]) == [batch[0]]  # never below 1
        assert ov.scale_budget(100) == 50
        assert ov.scale_budget(1) == 1

    def test_begin_run_resets_everything(self):
        ov = self._controller()
        ov.observe_outcomes(missed=8)
        ov.update(5.0, _aged_queue(3.0, now=5.0))
        ov.admit(_req(1, deadline=5.1), 5.0)
        assert ov.level.label == "brownout" and ov.denied == 1
        ov.begin_run()
        assert ov.level.label == "normal"
        assert ov.transitions == [] and ov.denied == 0 and ov.miss_rate == 0.0


class TestOverloadControllerShedding:
    def test_maybe_shed_restores_limits_and_ledgers(self):
        ov = OverloadController(
            OverloadConfig(
                limits=QueueLimits(max_requests=2),
                shedding=LowestUtilityFirst(),
            )
        )
        q, metrics = RequestQueue(), ServingMetrics()
        reqs = [_req(i, length=2 * (i + 1)) for i in range(4)]
        q.extend(reqs)
        metrics.arrived = 4
        shed = ov.maybe_shed(q, metrics, 0.0)
        # Longest two (lowest utility) go: ids 3 then 2.
        assert [r.request_id for r in shed] == [3, 2]
        assert len(q) == 2
        assert metrics.shed == 2 and metrics.num_rejected == 2
        assert ov.shed_total == 2
        # Back under limits: a second call is a no-op.
        assert ov.maybe_shed(q, metrics, 0.1) == []

    def test_unbounded_never_sheds(self):
        ov = OverloadController(OverloadConfig())
        q, metrics = RequestQueue(), ServingMetrics()
        q.extend([_req(i) for i in range(100)])
        assert ov.maybe_shed(q, metrics, 0.0) == []
        assert len(q) == 100

    def test_inert_flag(self):
        assert OverloadConfig().inert
        assert not OverloadConfig(limits=QueueLimits(max_tokens=1)).inert
        assert not OverloadConfig(breaker=BreakerConfig()).inert
        assert not OverloadConfig(degradation=DegradationConfig()).inert


# ---------------------------------------------------------------------- #
# End-to-end: loops under overload
# ---------------------------------------------------------------------- #


def _full_controller(seed: int = 0) -> OverloadController:
    return OverloadController(
        OverloadConfig(
            limits=QueueLimits(max_tokens=BATCH.capacity_tokens),
            shedding=make_shedder("latest-deadline", seed=seed),
            breaker=BreakerConfig(failure_threshold=2, recovery_time=0.2),
            degradation=_degradation(),
        )
    )


class TestLoopsUnderOverload:
    def test_single_loop_sheds_and_conserves(self):
        sim = ServingSimulator(
            FCFSScheduler(BATCH),
            ConcatEngine(BATCH),
            overload=_full_controller(),
        )
        metrics = sim.run(_workload(0, rate=500.0)).metrics
        metrics.assert_conservation()
        assert metrics.shed > 0
        assert metrics.shed <= metrics.num_rejected

    def test_cluster_loop_sheds_and_conserves(self):
        sim = ClusterSimulator(
            DASScheduler(BATCH),
            [ConcatEngine(BATCH) for _ in range(2)],
            overload=_full_controller(),
        )
        metrics = sim.run(_workload(1, rate=600.0)).metrics
        metrics.assert_conservation()
        assert metrics.shed > 0

    def test_continuous_loop_sheds_and_conserves(self):
        sim = ContinuousBatchingSimulator(
            BATCH, seed=2, overload=_full_controller()
        )
        metrics = sim.run(_workload(2, rate=600.0))
        metrics.assert_conservation()
        assert metrics.shed > 0

    def test_inert_controller_is_bit_identical(self):
        def run(overload):
            sim = ServingSimulator(
                DASScheduler(BATCH), ConcatEngine(BATCH), overload=overload
            )
            return sim.run(_workload(3, rate=250.0)).metrics

        plain = run(None)
        inert = run(OverloadController(OverloadConfig()))
        assert _stable_summary(inert) == _stable_summary(plain)
        assert inert.finish_times == plain.finish_times
        assert [r.request_id for r in inert.served] == [
            r.request_id for r in plain.served
        ]

    def test_transition_log_is_deterministic(self):
        # Failure/crash-weighted chaos (stragglers would just slow the
        # clock) so the breaker genuinely trips, recovers and re-trips.
        def run(seed: int):
            ov = _full_controller(seed=0)
            plan = FaultPlan(
                FaultConfig(failure_rate=0.5, crash_rate=0.2, downtime=0.3),
                seed=seed,
            )
            sim = ServingSimulator(
                FCFSScheduler(BATCH),
                FaultyEngine(ConcatEngine(BATCH), plan),
                overload=ov,
            )
            metrics = sim.run(_workload(4, rate=400.0, horizon=4.0)).metrics
            return ov, metrics

        ov_a, m_a = run(seed=11)
        ov_b, m_b = run(seed=11)
        log_a, log_b = ov_a.transition_log(), ov_b.transition_log()
        assert log_a == log_b
        assert any(r[0] == "breaker" for r in log_a)
        assert any(r[0] == "level" for r in log_a)
        assert _stable_summary(m_a) == _stable_summary(m_b)
        # A different fault plan produces a different breaker history.
        ov_c, _ = run(seed=12)
        assert ov_c.transition_log() != log_a

    def test_transition_log_merges_and_sorts(self):
        ov = _full_controller()
        ov.update(1.0, _aged_queue(1.5, now=1.0))  # level: normal -> shed
        ov.record_result(1, 0.5, ok=False, kind="crash")
        ov.record_result(1, 0.6, ok=False, kind="crash")  # engine 1 opens
        rows = ov.transition_log()
        kinds = [(r[0], r[2]) for r in rows]
        assert ("level", -1) in kinds and ("breaker", 1) in kinds
        ts = [r[1] for r in rows]
        assert ts == sorted(ts)
