"""Tests for baseline schedulers and the request queue."""

import pytest

from repro.config import BatchConfig
from repro.scheduling.baselines import (
    DEFScheduler,
    FCFSScheduler,
    GreedyOrderScheduler,
    SJFScheduler,
)
from repro.scheduling.queue import RequestQueue
from repro.types import Request, make_requests


def _batch(rows=2, L=10):
    return BatchConfig(num_rows=rows, row_length=L)


class TestOrderingPolicies:
    def test_fcfs_takes_earliest_arrivals(self):
        reqs = make_requests([3, 3, 3], arrivals=[2.0, 0.0, 1.0], start_id=0)
        d = FCFSScheduler(_batch(rows=1, L=6)).select(reqs)
        assert [r.request_id for r in d.selected()] == [1, 2]

    def test_sjf_takes_shortest(self):
        reqs = make_requests([5, 2, 4, 3], start_id=0)
        d = SJFScheduler(_batch(rows=1, L=5)).select(reqs)
        assert [r.request_id for r in d.selected()] == [1, 3]

    def test_def_takes_earliest_deadline(self):
        reqs = make_requests(
            [3, 3, 3], deadlines=[9.0, 1.0, 5.0], start_id=0
        )
        d = DEFScheduler(_batch(rows=1, L=6)).select(reqs)
        assert [r.request_id for r in d.selected()] == [1, 2]

    def test_concat_aware_fills_rows(self):
        reqs = make_requests([4] * 6, start_id=0)
        d = SJFScheduler(_batch(rows=2, L=8)).select(reqs)
        assert d.num_selected == 4  # two per row

    def test_concat_unaware_one_per_row(self):
        reqs = make_requests([4] * 6, start_id=0)
        d = SJFScheduler(_batch(rows=2, L=8), concat_aware=False).select(reqs)
        assert d.num_selected == 2
        assert all(len(row) == 1 for row in d.rows)

    def test_oversize_never_selected(self):
        reqs = make_requests([20, 3], start_id=0)
        d = FCFSScheduler(_batch(rows=2, L=10)).select(reqs)
        assert [r.request_id for r in d.selected()] == [reqs[1].request_id]

    def test_decisions_validate(self):
        reqs = make_requests([3, 7, 2, 9, 5, 1], start_id=0)
        for sched in (
            FCFSScheduler(_batch()),
            SJFScheduler(_batch()),
            DEFScheduler(_batch()),
            SJFScheduler(_batch(), concat_aware=False),
        ):
            d = sched.select(reqs)
            d.validate(sched.batch)


class TestRequestQueue:
    def test_add_and_waiting(self):
        q = RequestQueue()
        q.extend(make_requests([3, 4], arrivals=[0.0, 5.0], start_id=0))
        assert len(q) == 2
        assert [r.request_id for r in q.waiting(1.0)] == [0]
        assert len(q.waiting(6.0)) == 2

    def test_duplicate_rejected(self):
        q = RequestQueue()
        r = Request(request_id=1, length=3)
        q.add(r)
        with pytest.raises(ValueError, match="duplicate"):
            q.add(r)

    def test_expire_is_strict(self):
        q = RequestQueue()
        q.add(Request(request_id=0, length=3, deadline=5.0))
        assert q.expire(5.0) == []  # closed interval: still schedulable
        dead = q.expire(5.01)
        assert [r.request_id for r in dead] == [0]
        assert len(q) == 0
        assert len(q.expired) == 1

    def test_remove_served(self):
        q = RequestQueue()
        reqs = make_requests([3, 4], start_id=0)
        q.extend(reqs)
        q.remove_served([reqs[0]])
        assert len(q) == 1
        assert reqs[0].request_id in q.served_ids

    def test_remove_unknown_raises(self):
        q = RequestQueue()
        with pytest.raises(KeyError):
            q.remove_served([Request(request_id=9, length=3)])

    def test_served_id_cannot_reenter(self):
        q = RequestQueue()
        r = Request(request_id=0, length=3)
        q.add(r)
        q.remove_served([r])
        with pytest.raises(ValueError, match="duplicate"):
            q.add(r)

    def test_drop_records_failures(self):
        q = RequestQueue()
        reqs = make_requests([3, 4], start_id=0)
        q.extend(reqs)
        q.drop([reqs[1]])
        assert len(q) == 1
        assert [r.request_id for r in q.expired] == [reqs[1].request_id]

    def test_drop_ignores_missing(self):
        q = RequestQueue()
        q.drop([Request(request_id=5, length=3)])
        assert q.expired == []
