"""Tests for the autoscaling cluster simulator."""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.scheduling.das import DASScheduler
from repro.serving.autoscale import AutoscalingSimulator
from repro.serving.cluster import ClusterSimulator
from repro.workload.burst import BurstyWorkload
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


BATCH = BatchConfig(num_rows=8, row_length=50)


def _sim(**kw):
    defaults = dict(
        min_engines=1,
        max_engines=6,
        high_watermark=800.0,
        low_watermark=100.0,
        startup_delay=0.2,
    )
    defaults.update(kw)
    return AutoscalingSimulator(
        DASScheduler(BATCH, SchedulerConfig()),
        lambda: ConcatEngine(BATCH),
        **defaults,
    )


def _workload(rate, seed=0, horizon=6.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=15, spread=8, low=3, high=50),
        deadlines=DeadlineModel(base_slack=3.0, jitter=1.0),
        horizon=horizon,
        seed=seed,
    )


class TestAutoscaling:
    def test_scales_up_under_load(self):
        sim = _sim()
        sim.run(_workload(rate=800.0))
        assert any(ev.action == "up" for ev in sim.events)
        assert sim.peak_engines > 1

    def test_never_exceeds_max(self):
        sim = _sim(max_engines=3)
        sim.run(_workload(rate=2000.0))
        assert sim.peak_engines <= 3

    def test_quiet_load_stays_at_min(self):
        sim = _sim()
        sim.run(_workload(rate=10.0))
        assert sim.peak_engines == 1
        assert not sim.events

    def test_scales_down_after_burst(self):
        wl = BurstyWorkload(
            rate=400.0,
            burst_factor=8.0,
            mean_state_duration=1.0,
            lengths=LengthDistribution(family="normal", mean=15, spread=8, low=3, high=50),
            deadlines=DeadlineModel(base_slack=3.0, jitter=1.0),
            horizon=8.0,
            seed=3,
        )
        sim = _sim(low_watermark=300.0)
        sim.run(wl)
        actions = [ev.action for ev in sim.events]
        assert "up" in actions
        assert "down" in actions

    def test_beats_fixed_min_cluster_under_load(self):
        wl = _workload(rate=1000.0)
        fixed = ClusterSimulator(
            DASScheduler(BATCH, SchedulerConfig()), [ConcatEngine(BATCH)]
        ).run(wl).metrics
        auto_sim = _sim(max_engines=6)
        auto = auto_sim.run(wl)
        assert auto.num_served > fixed.num_served

    def test_conservation(self):
        wl = _workload(rate=600.0)
        n = len(wl.generate())
        m = _sim().run(wl)
        assert m.num_served + m.num_expired == n

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            _sim(min_engines=0)
        with pytest.raises(ValueError):
            _sim(min_engines=5, max_engines=2)
        with pytest.raises(ValueError):
            _sim(high_watermark=100.0, low_watermark=200.0)
        with pytest.raises(ValueError):
            _sim(startup_delay=-1.0)
