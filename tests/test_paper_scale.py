"""Paper-scale smoke tests (cost-model mode — no weights materialised).

Runs the serving stack at the paper's actual parameters — batch size 64,
row length up to 400, rates up to 1500 req/s, d_model 3072 folded into
the calibrated cost model — to guard against scale-dependent bugs
(overflow, quadratic blowups in host code, scheduler slowdowns).
"""

import time

import pytest

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.engine import ConcatEngine, NaiveEngine, SlottedConcatEngine, TurboEngine
from repro.scheduling import DASScheduler, SlottedDASScheduler
from repro.serving.simulator import ServingSimulator
from repro.experiments.serving_sweeps import make_workload
from repro.types import make_requests


class TestPaperScale:
    def test_paper_model_config_valid(self):
        cfg = ModelConfig.paper()
        assert cfg.d_model == 3072 and cfg.max_len == 400
        assert cfg.head_dim * cfg.num_heads == cfg.d_model

    def test_full_rate_serving_sweep_is_fast(self):
        """One slot-based run at 1500 req/s must finish in seconds."""
        batch = BatchConfig(num_rows=64, row_length=100)
        t0 = time.perf_counter()
        m = ServingSimulator(
            DASScheduler(batch, SchedulerConfig()), ConcatEngine(batch)
        ).run(make_workload(1500.0, horizon=10.0, seed=0)).metrics
        elapsed = time.perf_counter() - t0
        assert m.num_served > 1000
        assert elapsed < 30.0

    def test_row_length_400_batches(self):
        batch = BatchConfig(num_rows=64, row_length=400)
        reqs = make_requests([380, 200, 95, 13] * 40, start_id=0)
        for engine in (
            NaiveEngine(batch),
            TurboEngine(batch),
            ConcatEngine(batch),
            SlottedConcatEngine(batch, num_slots=4),
        ):
            result = engine.serve(list(reqs))
            assert result.num_served + len(result.rejected) == len(reqs)
            assert result.latency > 0

    def test_slotted_das_at_scale(self):
        batch = BatchConfig(num_rows=64, row_length=400)
        sched = SlottedDASScheduler(batch, SchedulerConfig())
        reqs = make_requests(
            [(i % 97) + 3 for i in range(3000)],
            deadlines=[1e9] * 3000,
            start_id=0,
        )
        decision = sched.select(reqs)
        decision.validate(batch)
        assert decision.num_selected > 500
        # Scheduler stays fast even with 3000 waiting requests (Fig. 16).
        assert decision.runtime < 1.0

    def test_das_overhead_stays_small_at_scale(self):
        batch = BatchConfig(num_rows=64, row_length=100)
        m = ServingSimulator(
            DASScheduler(batch, SchedulerConfig()), ConcatEngine(batch)
        ).run(make_workload(400.0, horizon=10.0, seed=0)).metrics
        assert m.scheduler_overhead_ratio < 0.10
