"""Tests for the mask builders (Eq. 6 and companions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.layout import BatchLayout
from repro.core.masks import (
    NEG_INF,
    block_diagonal_mask,
    causal_block_mask,
    cross_attention_mask,
    layout_attention_mask,
    padding_key_mask,
)
from repro.types import Request


def _segments(*rows):
    return np.array(rows, dtype=np.int64)


class TestBlockDiagonalMask:
    def test_two_segments(self):
        seg = _segments([0, 0, 1, 1, -1])
        m = block_diagonal_mask(seg)[0]
        # Within-segment entries are open.
        assert m[0, 1] == 0.0 and m[1, 0] == 0.0
        assert m[2, 3] == 0.0 and m[3, 2] == 0.0
        # Cross-segment entries are masked (Eq. 6's off-diagonal blocks).
        assert m[0, 2] == NEG_INF and m[2, 0] == NEG_INF
        # Padding interacts with nothing — not even itself.
        assert m[4, 4] == NEG_INF and m[0, 4] == NEG_INF

    def test_mask_is_symmetric(self):
        seg = _segments([3, 3, 5, 5, 5, -1])
        m = block_diagonal_mask(seg)[0]
        assert np.array_equal(m, m.T)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="B, W"):
            block_diagonal_mask(np.zeros(4, dtype=np.int64))

    @given(
        st.lists(
            st.integers(min_value=-1, max_value=3), min_size=1, max_size=12
        )
    )
    def test_allowed_iff_same_nonneg_id(self, ids):
        seg = _segments(ids)
        m = block_diagonal_mask(seg)[0]
        for i, a in enumerate(ids):
            for j, b in enumerate(ids):
                expected = 0.0 if (a == b and a >= 0) else NEG_INF
                assert m[i, j] == expected


class TestCausalBlockMask:
    def test_causality_within_segment(self):
        seg = _segments([0, 0, 0])
        m = causal_block_mask(seg)[0]
        assert m[0, 0] == 0.0
        assert m[1, 0] == 0.0 and m[0, 1] == NEG_INF
        assert m[2, 1] == 0.0 and m[1, 2] == NEG_INF

    def test_blocks_cross_segment_even_backwards(self):
        seg = _segments([0, 0, 1, 1])
        m = causal_block_mask(seg)[0]
        # Token of segment 1 may not look back into segment 0.
        assert m[2, 1] == NEG_INF
        assert m[3, 2] == 0.0

    def test_is_subset_of_block_diagonal(self):
        seg = _segments([0, 0, 1, 1, -1, 2])
        blk = block_diagonal_mask(seg)[0]
        cau = causal_block_mask(seg)[0]
        # Everywhere causal allows, block-diagonal must allow too.
        assert np.all((cau == 0.0) <= (blk == 0.0))


class TestCrossAttentionMask:
    def test_decoder_attends_only_own_encoder_segment(self):
        dec = _segments([0, 1, -1])
        enc = _segments([0, 0, 1, -1])
        m = cross_attention_mask(dec, enc)[0]
        assert m.shape == (3, 4)
        assert m[0].tolist() == [0.0, 0.0, NEG_INF, NEG_INF]
        assert m[1].tolist() == [NEG_INF, NEG_INF, 0.0, NEG_INF]
        assert np.all(m[2] == NEG_INF)

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch mismatch"):
            cross_attention_mask(_segments([0]), np.zeros((2, 3), dtype=np.int64))


class TestPaddingKeyMask:
    def test_hides_padding_keys_only(self):
        seg = _segments([0, 1, -1])
        m = padding_key_mask(seg)
        assert m.shape == (1, 1, 3)
        assert m[0, 0].tolist() == [0.0, 0.0, NEG_INF]


class TestLayoutAttentionMask:
    def test_from_layout(self):
        layout = BatchLayout(num_rows=1, row_length=6)
        layout.rows[0].add(Request(request_id=0, length=2))
        layout.rows[0].add(Request(request_id=1, length=2))
        m = layout_attention_mask(layout)
        assert m.shape == (1, 4, 4)
        assert m[0, 0, 1] == 0.0
        assert m[0, 1, 2] == NEG_INF

    def test_causal_flag(self):
        layout = BatchLayout(num_rows=1, row_length=4)
        layout.rows[0].add(Request(request_id=0, length=3))
        m = layout_attention_mask(layout, causal=True)
        assert m[0, 0, 1] == NEG_INF
        assert m[0, 1, 0] == 0.0
