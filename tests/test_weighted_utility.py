"""Tests for weighted utility (multi-tenant priority extension)."""

import pytest

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.das import DASScheduler
from repro.types import Request


class TestWeightedRequests:
    def test_default_weight_reproduces_paper(self):
        r = Request(request_id=0, length=4)
        assert r.weight == 1.0
        assert r.utility == pytest.approx(0.25)

    def test_weighted_utility(self):
        r = Request(request_id=0, length=4, weight=3.0)
        assert r.utility == pytest.approx(0.75)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Request(request_id=0, length=4, weight=0.0)
        with pytest.raises(ValueError, match="weight"):
            Request(request_id=0, length=4, weight=-1.0)

    def test_with_tokens_preserves_weight(self):
        r = Request(request_id=0, length=2, weight=2.5)
        assert r.with_tokens([5, 6]).weight == 2.5


class TestWeightedScheduling:
    def test_das_prefers_premium_tenant(self):
        """Same lengths, one premium request: DAS must take it first
        when capacity only fits some."""
        batch = BatchConfig(num_rows=1, row_length=10)
        sched = DASScheduler(batch, SchedulerConfig())
        reqs = [
            Request(request_id=i, length=5, weight=1.0) for i in range(3)
        ] + [Request(request_id=99, length=5, weight=10.0)]
        chosen = {r.request_id for r in sched.select(reqs).selected()}
        assert 99 in chosen
        assert len(chosen) == 2  # only two 5-token requests fit

    def test_weight_can_outrank_shortness(self):
        """A weighted long request can beat unweighted short ones."""
        batch = BatchConfig(num_rows=1, row_length=8)
        sched = DASScheduler(batch, SchedulerConfig())
        reqs = [
            Request(request_id=0, length=8, weight=16.0),  # utility 2.0
            Request(request_id=1, length=2, weight=1.0),  # utility 0.5
            Request(request_id=2, length=2, weight=1.0),
        ]
        chosen = {r.request_id for r in sched.select(reqs).selected()}
        # The premium 8-token request saturates the row alone.
        assert chosen == {0}

    def test_total_weighted_utility_objective(self):
        from repro.types import total_utility

        reqs = [
            Request(request_id=0, length=2, weight=2.0),
            Request(request_id=1, length=4, weight=1.0),
        ]
        assert total_utility(reqs) == pytest.approx(1.0 + 0.25)
