"""Tests for the cost-model sensitivity harness."""

import pytest

from repro.engine.cost_model import GPUCostModel
from repro.experiments.sensitivity import (
    PERTURBABLE,
    headline_metrics,
    sensitivity_sweep,
)


class TestHeadlineMetrics:
    def test_baseline_values_sane(self):
        m = headline_metrics(GPUCostModel.calibrated(), horizon=4.0, seeds=(0,))
        assert m["fig10_gap"] > 1.0
        assert m["tcb_wins_fcfs"] in (0.0, 1.0)
        assert m["fig14_speedup"] > 1.5
        assert abs(m["fig14_plateau"]) < 1.0


class TestSensitivitySweep:
    def test_single_constant_sweep(self):
        out = sensitivity_sweep(
            factors=(0.5,), constants=("per_token",), horizon=4.0, seeds=(0,)
        )
        assert out["perturbation"] == ["baseline", "per_token ×0.5"]
        assert len(out["fig10_gap"]) == 2

    def test_unknown_constant_rejected(self):
        with pytest.raises(ValueError, match="unknown cost constant"):
            sensitivity_sweep(constants=("warp_speed",))

    def test_perturbable_matches_model_fields(self):
        cm = GPUCostModel.calibrated()
        for name in PERTURBABLE:
            assert hasattr(cm, name)
