"""Tests for sampled decoding over layouts."""

import numpy as np
import pytest

from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit
from repro.model.sampling import sample_decode


def _layout(reqs, rows=1, cap=16):
    res = pack_first_fit(reqs, num_rows=rows, row_length=cap)
    assert not res.rejected
    return res.layout


class TestSampleDecode:
    def test_zero_temperature_equals_greedy(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 3, 4])
        layout = _layout(reqs)
        greedy = tiny_model.greedy_decode(layout, max_new_tokens=5)
        sampled = sample_decode(
            tiny_model, layout, max_new_tokens=5, temperature=0.0
        )
        assert greedy.outputs == sampled.outputs

    def test_top_k_one_equals_greedy(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 6])
        layout = _layout(reqs)
        greedy = tiny_model.greedy_decode(layout, max_new_tokens=4)
        sampled = sample_decode(
            tiny_model, layout, max_new_tokens=4, temperature=1.0, top_k=1
        )
        assert greedy.outputs == sampled.outputs

    def test_deterministic_by_seed(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5, 5])
        layout = _layout(reqs)
        a = sample_decode(tiny_model, layout, max_new_tokens=6, seed=3)
        b = sample_decode(tiny_model, layout, max_new_tokens=6, seed=3)
        assert a.outputs == b.outputs

    def test_high_temperature_diversifies(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([5])
        layout = _layout(reqs)
        outs = {
            tuple(
                sample_decode(
                    tiny_model, layout, max_new_tokens=8, temperature=5.0, seed=s
                ).outputs[reqs[0].request_id]
            )
            for s in range(6)
        }
        assert len(outs) > 1

    def test_top_k_restricts_support(self, tiny_model, tokenized_requests):
        """Every top-1 sampled token equals the greedy argmax stepwise —
        already covered — here check top_k validation."""
        reqs = tokenized_requests([4])
        layout = _layout(reqs)
        with pytest.raises(ValueError, match="top_k"):
            sample_decode(tiny_model, layout, top_k=0, temperature=1.0)

    def test_negative_temperature_rejected(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4])
        layout = _layout(reqs)
        with pytest.raises(ValueError, match="temperature"):
            sample_decode(tiny_model, layout, temperature=-1.0)

    def test_empty_layout(self, tiny_model):
        layout = BatchLayout(num_rows=1, row_length=8)
        res = sample_decode(tiny_model, layout)
        assert res.outputs == {}

    def test_budget_respected(self, tiny_model, tokenized_requests):
        reqs = tokenized_requests([4, 3])
        layout = _layout(reqs)
        res = sample_decode(tiny_model, layout, max_new_tokens=3, seed=1)
        assert all(len(v) <= 3 for v in res.outputs.values())
