"""Tests for the analytic GPU cost model."""

import pytest

from repro.core.layout import BatchLayout
from repro.core.slotting import pack_into_slots, slot_size_fixed_count
from repro.engine.cost_model import GPUCostModel
from repro.types import make_requests


@pytest.fixture()
def cm():
    return GPUCostModel.calibrated()


class TestComponents:
    def test_linear_time_proportional(self, cm):
        assert cm.linear_time(2000) == pytest.approx(2 * cm.linear_time(1000))

    def test_linear_time_rejects_negative(self, cm):
        with pytest.raises(ValueError):
            cm.linear_time(-1)

    def test_attention_floor_binds_small_work(self, cm):
        assert cm.attention_time(1) == pytest.approx(cm.attn_floor)

    def test_attention_work_dominates_large(self, cm):
        entries = int(cm.attn_rate * cm.attn_floor * 10)
        assert cm.attention_time(entries) == pytest.approx(
            entries / cm.attn_rate
        )

    def test_per_slot_overhead(self, cm):
        base = cm.attention_time(100, num_slots=1)
        assert cm.attention_time(100, num_slots=5) == pytest.approx(
            base + 4 * cm.per_slot
        )

    def test_attention_rejects_bad_args(self, cm):
        with pytest.raises(ValueError):
            cm.attention_time(-1)
        with pytest.raises(ValueError):
            cm.attention_time(1, num_slots=0)

    def test_decode_factor(self, cm):
        enc = cm.encode_time(1000, 1000)
        assert cm.batch_time(1000, 1000) == pytest.approx(
            enc * (1 + cm.decode_factor)
        )
        assert cm.batch_time(1000, 1000, include_decode=False) == pytest.approx(enc)

    def test_with_override(self, cm):
        cm2 = cm.with_(per_token=1.0)
        assert cm2.per_token == 1.0
        assert cm2.attn_rate == cm.attn_rate


class TestLayoutTime:
    def test_naive_layout_width_is_longest_request(self, cm):
        layout = BatchLayout.naive(make_requests([10, 40], start_id=0))
        t = cm.layout_time(layout, include_decode=False)
        expected = cm.encode_time(2 * 40, 2 * 40 * 40, 1)
        assert t == pytest.approx(expected)

    def test_slotted_layout_reduces_attention_entries(self, cm):
        # Large enough that attention is compute-bound, not floor-bound.
        reqs = make_requests([100] * 128, start_id=0)
        pure = pack_into_slots(reqs, 32, 400, 400).layout
        slotted = pack_into_slots(reqs, 32, 400, 100).layout
        assert cm.layout_time(slotted) < cm.layout_time(pure)

    def test_slotting_not_beneficial_below_attention_floor(self, cm):
        # Small batches are floor-bound: slot overhead makes slotting a
        # slight loss — the mechanism behind Fig. 13's modest gains.
        reqs = make_requests([100] * 8, start_id=0)
        pure = pack_into_slots(reqs, 2, 400, 400).layout
        slotted = pack_into_slots(reqs, 2, 400, 100).layout
        assert cm.layout_time(slotted) >= cm.layout_time(pure)

    def test_empty_rows_do_not_crash(self, cm):
        layout = BatchLayout(num_rows=4, row_length=100)
        layout.rows[0].add(make_requests([10], start_id=0)[0])
        assert cm.layout_time(layout) > 0


class TestCalibrationShapes:
    """The paper-shape assertions the calibration must preserve."""

    def _speedups(self, cm, batch_size, slot_counts):
        times = {}
        for n in slot_counts:
            z = slot_size_fixed_count(n, 400)
            reqs = make_requests([z] * (400 // z) * batch_size, start_id=0)
            res = pack_into_slots(reqs, batch_size, 400, z)
            times[n] = cm.layout_time(res.layout)
        base = times[1]
        return {n: base / t for n, t in times.items()}

    def test_fig14_speedup_grows_then_plateaus(self, cm):
        s = self._speedups(cm, 32, (1, 2, 4, 5, 7, 10, 20))
        assert s[2] > 1.2
        assert s[7] > s[2]
        assert s[7] > 2.0  # paper: 2.31x at 7 slots
        # Plateau: no big growth past 7 slots (paper's observation).
        assert abs(s[20] - s[7]) < 0.4

    def test_fig13_vs_fig14_batch_size_ordering(self, cm):
        """Paper §6.2.3: slotting helps more at larger batch size."""
        s10 = self._speedups(cm, 10, (1, 7))
        s32 = self._speedups(cm, 32, (1, 7))
        assert s32[7] > s10[7] > 1.0

    def test_single_slot_speedup_is_one(self, cm):
        s = self._speedups(cm, 10, (1,))
        assert s[1] == pytest.approx(1.0)
