"""Tests for repro.types (Request and helpers)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.types import Request, make_requests, total_tokens, total_utility


class TestRequest:
    def test_utility_is_inverse_length(self):
        assert Request(request_id=0, length=4).utility == pytest.approx(0.25)

    def test_length_must_be_positive(self):
        with pytest.raises(ValueError, match="length"):
            Request(request_id=0, length=0)

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(request_id=0, length=3, arrival=5.0, deadline=4.0)

    def test_deadline_equal_arrival_allowed(self):
        r = Request(request_id=0, length=3, arrival=5.0, deadline=5.0)
        assert r.is_available(5.0)

    def test_token_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="tokens"):
            Request(request_id=0, length=3, tokens=(1, 2))

    def test_availability_window_is_closed(self):
        r = Request(request_id=0, length=3, arrival=1.0, deadline=2.0)
        assert not r.is_available(0.99)
        assert r.is_available(1.0)
        assert r.is_available(1.5)
        assert r.is_available(2.0)
        assert not r.is_available(2.01)

    def test_with_tokens_preserves_metadata(self):
        r = Request(request_id=9, length=3, arrival=1.0, deadline=4.0)
        r2 = r.with_tokens([5, 6, 7])
        assert r2.tokens == (5, 6, 7)
        assert (r2.request_id, r2.arrival, r2.deadline) == (9, 1.0, 4.0)

    def test_requests_are_hashable(self):
        a = Request(request_id=0, length=3)
        b = Request(request_id=0, length=3)
        assert a == b
        assert len({a, b}) == 1


class TestMakeRequests:
    def test_defaults(self):
        reqs = make_requests([3, 5], start_id=100)
        assert [r.request_id for r in reqs] == [100, 101]
        assert all(r.arrival == 0.0 for r in reqs)
        assert all(math.isinf(r.deadline) for r in reqs)

    def test_explicit_times(self):
        reqs = make_requests([3], arrivals=[1.0], deadlines=[2.0], start_id=0)
        assert reqs[0].arrival == 1.0
        assert reqs[0].deadline == 2.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal sizes"):
            make_requests([3, 5], arrivals=[1.0])

    def test_global_counter_never_collides(self):
        a = make_requests([3, 3])
        b = make_requests([3, 3])
        ids = {r.request_id for r in a + b}
        assert len(ids) == 4

    @given(st.lists(st.integers(min_value=1, max_value=500), max_size=30))
    def test_totals(self, lengths):
        reqs = make_requests(lengths, start_id=0)
        assert total_tokens(reqs) == sum(lengths)
        assert total_utility(reqs) == pytest.approx(sum(1.0 / l for l in lengths))
