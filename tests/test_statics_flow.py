"""Flow-sensitive tcblint tests: CFG shapes, dataflow verdicts, the
TCB009–TCB012 fixtures, seeded mutations of real serving code, and the
CLI's SARIF / baseline / changed-only / unused-suppression modes."""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.statics import lint_source
from repro.statics.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.statics.callgraph import build_call_graph
from repro.statics.cfg import CFG, build_cfg, module_cfgs
from repro.statics.dataflow import run_forward
from repro.statics.engine import LintReport, lint_paths
from repro.statics.rules import make_context

FIXTURES = Path(__file__).parent / "fixtures" / "tcblint"
SRC = Path(__file__).parent.parent / "src" / "repro"


def _cfg(src: str, name=None) -> CFG:
    tree = ast.parse(textwrap.dedent(src))
    cfgs = module_cfgs(tree)
    if name is None:
        assert len(cfgs) == 1, [q for q, _, _ in cfgs]
        return cfgs[0][2]
    for qual, _, cfg in cfgs:
        if qual == name:
            return cfg
    raise AssertionError(f"no function {name!r} in {[q for q, _, _ in cfgs]}")


def _lint_fixture(name: str, as_path: str, rules=None):
    source = (FIXTURES / name).read_text()
    return lint_source(source, as_path, rules=rules)


def _lines(findings, rule):
    return [f.line for f in findings if f.rule == rule]


# ---------------------------------------------------------------------- #
# CFG shape
# ---------------------------------------------------------------------- #


class TestCfgShapes:
    def test_if_else_edge_kinds(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        test = next(n for n in cfg.nodes if n.label == "test")
        assert sorted(e.kind for e in test.succs) == ["false", "true"]
        # Both branches reconverge on the return node.
        ret = next(n for n in cfg.nodes if n.label == "return")
        assert cfg.has_path(test.idx, ret.idx)
        assert [e.kind for e in ret.succs] == ["return"]

    def test_while_else_break_bypasses_else(self):
        cfg = _cfg(
            """
            def f(xs, flag):
                while flag:
                    if xs:
                        break
                    flag = xs.pop()
                else:
                    xs.close()
                return 0
            """
        )
        brk = next(
            n for n in cfg.nodes if isinstance(n.stmt, ast.Break)
        )
        ret = next(n for n in cfg.nodes if n.label == "return")
        els = next(
            n
            for n in cfg.nodes
            if n.label == "stmt"
            and isinstance(n.stmt, ast.Expr)
            and "close" in ast.dump(n.stmt)
        )
        # break jumps straight past the else clause to the return.
        assert any(e.dst == ret.idx and e.kind == "break" for e in brk.succs)
        assert not cfg.has_path(brk.idx, els.idx)
        # The else clause is reached only through the loop test's false
        # edge (normal loop exhaustion).
        assert all(e.kind == "false" for e in els.preds)

    def test_try_finally_reraise_paths(self):
        cfg = _cfg(
            """
            def f(q):
                try:
                    q.step()
                except ValueError:
                    raise
                finally:
                    q.close()
            """
        )
        body = next(
            n
            for n in cfg.nodes
            if n.label == "stmt" and "step" in ast.dump(n.stmt)
        )
        handler = next(n for n in cfg.nodes if n.label == "except")
        fin = next(n for n in cfg.nodes if n.label == "finally")
        close = next(
            n
            for n in cfg.nodes
            if n.label == "stmt" and "close" in ast.dump(n.stmt)
        )
        # Exceptions in the body land at the handler; the handler's
        # re-raise routes to the finally node, never skipping it.
        assert any(e.dst == handler.idx and e.kind == "exc" for e in body.succs)
        assert cfg.has_path(handler.idx, fin.idx)
        # The finally body reaches exit on both the normal path and the
        # propagating-exception path (a "raise"-kind edge).
        kinds = {e.kind for e in close.succs if e.dst == CFG.EXIT}
        assert "raise" in kinds and "" in kinds

    def test_with_block_is_linear(self):
        cfg = _cfg(
            """
            def f(lock, q):
                with lock:
                    q.step()
                return q
            """
        )
        w = next(n for n in cfg.nodes if n.label == "with")
        body = next(
            n
            for n in cfg.nodes
            if n.label == "stmt" and "step" in ast.dump(n.stmt)
        )
        assert any(e.dst == body.idx for e in w.succs)
        assert cfg.has_path(CFG.ENTRY, CFG.EXIT)

    def test_nested_function_is_one_def_node(self):
        src = """
            def outer(q):
                def inner(x):
                    q.close()
                    return x
                return inner
            """
        outer = _cfg(src, "outer")
        # inner's statements are not statements of outer's graph ...
        assert sum(1 for n in outer.nodes if n.label == "def") == 1
        assert not any(
            n.label == "stmt" and "close" in ast.dump(n.stmt)
            for n in outer.nodes
            if n.stmt is not None and n.label == "stmt"
        )
        # ... but inner gets its own CFG under a dotted qualname.
        inner = _cfg(src, "outer.inner")
        assert any(
            n.label == "stmt" and "close" in ast.dump(n.stmt)
            for n in inner.nodes
            if n.stmt is not None and n.label == "stmt"
        )

    def test_comprehension_is_a_single_node(self):
        cfg = _cfg(
            """
            def f(xs):
                ys = [x + 1 for x in xs if x]
                return ys
            """
        )
        # The comprehension (its own scope) adds no CFG nodes: entry,
        # exit, the assignment, the return.
        assert len(cfg.nodes) == 4

    def test_describe_is_stable(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        desc = "\n".join(cfg.describe())
        assert "test@3" in desc and "[true]" in desc and "[false]" in desc

    def test_rpo_starts_at_entry(self):
        cfg = _cfg(
            """
            def f(xs):
                for x in xs:
                    x()
                return xs
            """
        )
        order = cfg.rpo()
        assert order[0] == CFG.ENTRY
        assert set(order) == {n.idx for n in cfg.nodes}


class TestDataflowEngine:
    def test_loop_reaches_fixpoint(self):
        cfg = _cfg(
            """
            def f(xs):
                seen = 0
                while xs:
                    seen = seen + 1
                return seen
            """
        )

        def transfer(node, state):
            if isinstance(node.stmt, ast.Assign):
                return frozenset(state | {node.stmt.targets[0].id})
            return state

        _, out = run_forward(
            cfg,
            init=frozenset(),
            bottom=frozenset(),
            transfer=transfer,
            join=lambda a, b: a | b,
        )
        assert "seen" in out[CFG.EXIT]


# ---------------------------------------------------------------------- #
# CFG shapes drive real verdicts
# ---------------------------------------------------------------------- #


class TestShapeVerdicts:
    def test_tcb009_finally_ledger_covers_all_paths(self):
        src = (
            "def f(queue, metrics, victims):\n"
            "    taken = queue.take(victims)\n"
            "    try:\n"
            "        metrics.observe(taken)\n"
            "    finally:\n"
            "        metrics.rejected.extend(taken)\n"
        )
        assert lint_source(src, "repro/serving/x.py", rules=["TCB009"]) == []

    def test_tcb009_while_else_only_ledger_fires(self):
        found = _lint_fixture(
            "bad_tcb009.py", "repro/serving/x.py", rules=["TCB009"]
        )
        assert 21 in _lines(found, "TCB009")  # leak_after_loop_break

    def test_tcb009_nested_def_does_not_discharge(self):
        src = (
            "def f(queue, metrics, victims):\n"
            "    taken = queue.take(victims)\n"
            "    def later():\n"
            "        metrics.rejected.extend(taken)\n"
            "    return later\n"
        )
        found = lint_source(src, "repro/serving/x.py", rules=["TCB009"])
        assert _lines(found, "TCB009") == [2]

    def test_tcb009_comprehension_does_not_discharge(self):
        src = (
            "def f(queue, victims):\n"
            "    taken = queue.take(victims)\n"
            "    return [r.request_id for r in taken]\n"
        )
        found = lint_source(src, "repro/serving/x.py", rules=["TCB009"])
        assert _lines(found, "TCB009") == [2]

    def test_tcb010_taint_flows_through_with_block(self):
        src = (
            "import time\n"
            "def f(queue, lock, now):\n"
            "    stamp = time.perf_counter()\n"
            "    with lock:\n"
            "        queue.expire(stamp)\n"
        )
        found = lint_source(src, "repro/scheduling/x.py", rules=["TCB010"])
        assert _lines(found, "TCB010") == [5]

    def test_tcb010_branch_local_rebind_still_fires_on_other_path(self):
        src = (
            "import time\n"
            "def f(queue, now, flag):\n"
            "    t = time.perf_counter()\n"
            "    if flag:\n"
            "        t = now\n"
            "    queue.expire(t)\n"
        )
        # On the flag-false path t is still wall-tainted at the sink.
        found = lint_source(src, "repro/scheduling/x.py", rules=["TCB010"])
        assert _lines(found, "TCB010") == [6]


# ---------------------------------------------------------------------- #
# Fixture verdicts
# ---------------------------------------------------------------------- #


class TestRuleTCB009:
    def test_fires_on_escaping_removals_only(self):
        found = _lint_fixture(
            "bad_tcb009.py", "repro/serving/x.py", rules=["TCB009"]
        )
        # branch leak, discarded take, break-past-else leak; the
        # guarded/requeue/element-handoff functions stay clean.
        assert _lines(found, "TCB009") == [9, 16, 21]

    def test_scoped_to_serving_trees(self):
        found = _lint_fixture(
            "bad_tcb009.py", "repro/analysis/x.py", rules=["TCB009"]
        )
        assert found == []


class TestRuleTCB010:
    def test_fires_on_domain_mixing_only(self):
        found = _lint_fixture(
            "bad_tcb010.py", "repro/scheduling/x.py", rules=["TCB010"]
        )
        # mix, wall->sim sink, sim->wall sink, cross-domain compare;
        # the overhead-measurement and rebinding functions stay clean.
        assert _lines(found, "TCB010") == [12, 17, 21, 26]

    def test_catches_what_tcb003_waives(self):
        # On the fig16 scheduler path TCB003 is policy-waived, but the
        # leak of a wall reading into sim time still fails the lint.
        found = _lint_fixture("bad_tcb010.py", "repro/scheduling/das.py")
        assert _lines(found, "TCB003") == []
        assert 17 in _lines(found, "TCB010")

    def test_scoped(self):
        found = _lint_fixture(
            "bad_tcb010.py", "repro/analysis/x.py", rules=["TCB010"]
        )
        assert found == []


class TestRuleTCB011:
    def test_fires_on_aliased_keys_only(self):
        found = _lint_fixture(
            "bad_tcb011.py", "repro/faults/x.py", rules=["TCB011"]
        )
        # Both aliasing sites are reported, cross-referencing each
        # other; the domain-tagged site is clean.
        assert _lines(found, "TCB011") == [13, 19]
        assert all("aliases" in f.message for f in found)

    def test_scoped_to_repro(self):
        found = _lint_fixture(
            "bad_tcb011.py", "tools/x.py", rules=["TCB011"]
        )
        assert found == []


class TestRuleTCB013:
    def test_fires_on_both_parity_directions(self):
        found = _lint_fixture(
            "bad_tcb013.py", "repro/durability/restore.py", rules=["TCB013"]
        )
        # Direction A: the never-restored field, reported at its
        # declaration; direction B: the undeclared-attribute read.
        assert _lines(found, "TCB013") == [17, 39]
        msgs = [f.message for f in found]
        assert any("never read back" in m for m in msgs)
        assert any("not a declared Snapshot field" in m for m in msgs)

    def test_method_access_is_not_a_field_read(self):
        found = _lint_fixture(
            "bad_tcb013.py", "repro/durability/restore.py", rules=["TCB013"]
        )
        # snap.describe() resolves to a class member: never reported.
        assert not any("describe" in f.message for f in found)

    def test_real_durability_package_is_parity_clean(self):
        report = lint_paths([SRC / "durability"], rules=["TCB013"])
        assert report.findings == []
        assert report.files_scanned > 0

    def test_silent_without_a_snapshot_class(self):
        src = (
            "def restore(journal):\n"
            "    snap = journal.latest_snapshot\n"
            "    return snap.anything\n"
        )
        assert lint_source(
            src, "repro/durability/x.py", rules=["TCB013"]
        ) == []


class TestRuleTCB012:
    def test_fires_on_swallow_and_escape_only(self):
        found = _lint_fixture(
            "bad_tcb012.py", "repro/serving/x.py", rules=["TCB012"]
        )
        # the undocumented escaping raise and the payload-swallowing
        # handler; the ledgered handler and documented escape are clean.
        assert _lines(found, "TCB012") == [15, 21]

    def test_scoped(self):
        found = _lint_fixture(
            "bad_tcb012.py", "repro/analysis/x.py", rules=["TCB012"]
        )
        assert found == []


# ---------------------------------------------------------------------- #
# Seeded mutations of real serving code: the flow rules catch breakage
# the syntactic rules cannot see.
# ---------------------------------------------------------------------- #


class TestSeededMutations:
    def test_ledger_shed_requests_is_flow_clean(self):
        src = (SRC / "overload" / "ledger.py").read_text()
        found = lint_source(
            src, "repro/overload/ledger.py", rules=["TCB009"]
        )
        assert found == []

    def test_dropping_the_ledger_line_is_caught(self):
        src = (SRC / "overload" / "ledger.py").read_text()
        assert "metrics.rejected.extend(taken)" in src
        mutated = src.replace(
            "metrics.rejected.extend(taken)", "pass  # forgot to ledger"
        )
        found = lint_source(
            mutated, "repro/overload/ledger.py", rules=["TCB009"]
        )
        assert _lines(found, "TCB009") == [43]  # the queue.take line

    def test_ledgering_only_one_branch_is_caught(self):
        src = (SRC / "overload" / "ledger.py").read_text()
        # TCB008 (syntactic) only checks the call *site*; guarding the
        # terminal behind an unrelated condition is invisible to it but
        # leaves a path where the batch escapes.
        mutated = src.replace(
            "    metrics.rejected.extend(taken)",
            "    if tracer is not None:\n"
            "        metrics.rejected.extend(taken)",
        )
        found = lint_source(
            mutated, "repro/overload/ledger.py", rules=["TCB009"]
        )
        assert _lines(found, "TCB009") == [43]

    def test_recovery_swallowing_mutation_is_caught(self):
        src = (SRC / "faults" / "recovery.py").read_text()
        assert lint_source(
            src, "repro/faults/recovery.py", rules=["TCB012"]
        ) == []
        # Unbinding the exception silently drops failure.requests — the
        # exact bug class TCB012's handler check exists for.
        mutated = src.replace(
            "except BatchFailure as failure:",
            "except BatchFailure:\n            continue\n"
            "        except OSError as failure:",
            1,
        )
        found = lint_source(
            mutated, "repro/faults/recovery.py", rules=["TCB012"]
        )
        assert len(_lines(found, "TCB012")) >= 1


# ---------------------------------------------------------------------- #
# Call graph
# ---------------------------------------------------------------------- #


class TestCallGraph:
    def test_resolves_calls_and_transitive_callers(self):
        src = textwrap.dedent(
            """
            def leaf():
                return 1

            def mid():
                return leaf()

            def top():
                return mid()
            """
        )
        ctx = make_context(src, "repro/serving/g.py")
        graph = build_call_graph([ctx])
        mod = "repro.serving.g"
        assert f"{mod}.leaf" in graph.calls[f"{mod}.mid"]
        callers = graph.transitive_callers(f"{mod}.leaf")
        assert {f"{mod}.mid", f"{mod}.top"} <= callers

    def test_resolves_annotated_receiver_and_overrides(self):
        src = textwrap.dedent(
            """
            class Engine:
                def serve(self, batch):
                    return batch

            class Faulty(Engine):
                def serve(self, batch):
                    raise RuntimeError(batch)

            def drive(engine: Engine, batch):
                return engine.serve(batch)
            """
        )
        ctx = make_context(src, "repro/engine/g.py")
        graph = build_call_graph([ctx])
        mod = "repro.engine.g"
        calls = graph.calls[f"{mod}.drive"]
        # Virtual dispatch: both the annotated class and its override.
        assert f"{mod}.Engine.serve" in calls
        assert f"{mod}.Faulty.serve" in calls


# ---------------------------------------------------------------------- #
# CLI: formats, exit codes, baseline, changed-only, unused suppressions
# ---------------------------------------------------------------------- #


class TestCliFormats:
    BAD = str(FIXTURES / "bad_tcb005.py")

    def _run(self, capsys, *argv):
        from repro.cli import main

        rc = main(["lint", *argv])
        return rc, capsys.readouterr().out

    def test_exit_codes_identical_across_formats(self, capsys, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("def f(x):\n    return x\n")
        for fmt in ("text", "json", "sarif"):
            rc, _ = self._run(capsys, self.BAD, "--format", fmt)
            assert rc == 1, fmt
            rc, _ = self._run(capsys, str(clean), "--format", fmt)
            assert rc == 0, fmt

    def test_sarif_shape(self, capsys):
        rc, out = self._run(capsys, self.BAD, "--format", "sarif")
        assert rc == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "tcblint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"TCB001", "TCB009", "TCB012"} <= rule_ids
        assert [r["ruleId"] for r in run["results"]] == ["TCB005"] * 3
        loc = run["results"][0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad_tcb005.py")
        assert loc["region"]["startLine"] == 4

    def test_sarif_parse_error_is_not_green(self, capsys, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        rc, out = self._run(capsys, str(broken), "--format", "sarif")
        assert rc == 1
        inv = json.loads(out)["runs"][0]["invocations"][0]
        assert inv["executionSuccessful"] is False


class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = lint_paths([FIXTURES / "bad_tcb005.py"])
        n = len(report.findings)
        assert n == 3
        bl = tmp_path / "bl.json"
        write_baseline(report, bl)
        budgets = load_baseline(bl)
        assert sum(budgets.values()) == n
        fresh = lint_paths([FIXTURES / "bad_tcb005.py"])
        apply_baseline(fresh, budgets)
        assert fresh.findings == [] and fresh.baselined == n

    def test_new_findings_still_fail(self, tmp_path):
        report = lint_paths([FIXTURES / "bad_tcb005.py"])
        bl = tmp_path / "bl.json"
        write_baseline(report, bl)
        budgets = load_baseline(bl)
        both = lint_paths(
            [FIXTURES / "bad_tcb005.py", FIXTURES / "bad_tcb001.py"]
        )
        apply_baseline(both, budgets)
        # The baselined TCB005s are absorbed; bad_tcb001's own TCB005-
        # free findings (and any new rule hits) remain.
        assert both.baselined == 3
        assert all(fingerprint(f) not in budgets for f in both.findings)

    def test_cli_write_then_check(self, capsys, tmp_path):
        from repro.cli import main

        bl = tmp_path / "bl.json"
        bad = str(FIXTURES / "bad_tcb005.py")
        assert main(["lint", bad, "--write-baseline", str(bl)]) == 0
        capsys.readouterr()
        assert main(["lint", bad, "--baseline", str(bl)]) == 0
        out = capsys.readouterr().out
        assert "3 baselined" in out

    def test_cli_rejects_bad_baseline(self, capsys, tmp_path):
        from repro.cli import main

        bl = tmp_path / "bl.json"
        bl.write_text('{"tool": "other"}')
        assert main(["lint", str(FIXTURES), "--baseline", str(bl)]) == 2


class TestChangedOnly:
    def test_report_only_restricts_findings_not_analysis(self):
        from repro.statics.policy import canonical_path

        key = canonical_path(str(FIXTURES / "bad_tcb001.py"))
        report = lint_paths(
            [FIXTURES / "bad_tcb005.py", FIXTURES / "bad_tcb001.py"],
            report_only={key},
        )
        assert report.files_scanned == 1
        assert {f.path for f in report.findings} == {key}

    def test_cli_changed_only_uses_git_diff(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main
        from repro.statics import cli as cli_mod

        changed = tmp_path / "changed.py"
        changed.write_text("def f(x, acc=[]):\n    return acc\n")
        unchanged = tmp_path / "same.py"
        unchanged.write_text("def g(x, acc=[]):\n    return acc\n")

        def fake_git(*argv):
            if argv[0] == "rev-parse":
                return ""
            if argv[0] == "merge-base":
                return "abc123\n"
            if argv[0] == "diff":
                return f"{changed}\n"
            if argv[0] == "ls-files":
                return ""
            return None

        monkeypatch.setattr(cli_mod, "_git", fake_git)
        rc = main(
            ["lint", str(tmp_path), "--changed-only", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["files_scanned"] == 1
        assert {f["path"] for f in payload["findings"]} == {
            cli_mod.canonical_path(str(changed))
        }

    def test_cli_changed_only_degrades_without_git(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.cli import main
        from repro.statics import cli as cli_mod

        (tmp_path / "a.py").write_text("def f(x, acc=[]):\n    return acc\n")
        monkeypatch.setattr(cli_mod, "_git", lambda *a: None)
        rc = main(
            ["lint", str(tmp_path), "--changed-only", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        # No git answer -> lint everything rather than hide findings.
        assert rc == 1 and payload["files_scanned"] == 1


class TestUnusedSuppressions:
    def test_engine_reports_stale_directive(self):
        report = LintReport()
        src = (
            "import numpy as np\n"
            "x = 1  # tcblint: disable=TCB001\n"
        )
        lint_source(src, "repro/model/x.py", report=report)
        assert report.unused_suppressions == [
            {"path": "repro/model/x.py", "line": 2, "rule": "TCB001"}
        ]

    def test_live_directive_is_not_reported(self):
        report = LintReport()
        src = (FIXTURES / "suppressed.py").read_text()
        lint_source(src, "repro/model/x.py", report=report)
        assert report.suppressed == 3
        assert report.unused_suppressions == []

    def test_partial_rule_run_does_not_misjudge(self):
        # A TCB001 directive cannot be called stale by a run that never
        # executed TCB001.
        report = LintReport()
        src = "NEG = -1e9  # tcblint: disable=TCB001\n"
        lint_source(src, "repro/model/x.py", rules=["TCB005"], report=report)
        assert report.unused_suppressions == []

    def test_cli_flag_gates_exit_code(self, capsys, tmp_path):
        from repro.cli import main

        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # tcblint: disable=TCB005\n")
        assert main(["lint", str(stale)]) == 0
        capsys.readouterr()
        rc = main(["lint", str(stale), "--report-unused-suppressions"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "unused suppression" in out and "TCB005" in out

    def test_package_tree_has_no_stale_directives(self):
        from repro.statics import lint_package

        report = lint_package()
        assert report.clean
        assert report.unused_suppressions == []
