"""Unit tests for the microbenchmark plane (small inputs — the full
suite runs via ``python -m repro bench``; CI runs ``--quick``)."""

import json

from repro.bench import (
    BENCH_VERSION,
    bench_cost_model,
    bench_queue_churn,
    bench_requests,
    bench_select,
    check_regression,
    format_bench_table,
    write_bench,
)


def _leaf_keys(entry):
    return {"fast_s", "reference_s", "speedup"} <= set(entry)


class TestWorkloads:
    def test_deterministic_per_seed(self):
        a = bench_requests(50, seed=3)
        b = bench_requests(50, seed=3)
        assert a == b
        assert a != bench_requests(50, seed=4)

    def test_shapes(self):
        reqs = bench_requests(100, seed=0, max_length=16)
        assert len(reqs) == 100
        assert all(1 <= r.length <= 16 for r in reqs)
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)
        assert all(r.deadline > r.arrival for r in reqs)


class TestMicrobenches:
    def test_select_reports(self):
        entry = bench_select(200, seed=0, repeats=1)
        assert entry["n"] == 200
        assert _leaf_keys(entry)
        assert entry["fast_s"] > 0 and entry["reference_s"] > 0

    def test_queue_churn_reports(self):
        entry = bench_queue_churn(400, seed=0, repeats=1)
        assert entry["ops"] == 400
        assert _leaf_keys(entry)

    def test_cost_model_reports(self):
        entry = bench_cost_model(500, seed=0, repeats=1, shapes=4)
        assert entry["evals"] == 500
        assert _leaf_keys(entry)


def _report(steps_per_s, cal):
    return {
        "version": BENCH_VERSION,
        "quick": True,
        "calibration_s": cal,
        "select": {
            "1000": {"n": 1000, "fast_s": 1e-3, "reference_s": 5e-3, "speedup": 5.0}
        },
        "queue_churn": {"ops": 10, "fast_s": 1e-3, "reference_s": 2e-3, "speedup": 2.0},
        "cost_model": {"evals": 10, "fast_s": 1e-3, "reference_s": 2e-3, "speedup": 2.0},
        "serving": {
            "simulator": {
                "steps": 100,
                "fast_s": 0.1,
                "reference_s": 0.1,
                "steps_per_s": steps_per_s,
                "speedup": 1.0,
            }
        },
    }


class TestRegressionGate:
    def test_identical_passes(self):
        base = _report(1000.0, 0.05)
        assert check_regression(_report(1000.0, 0.05), base) == []

    def test_within_threshold_passes(self):
        base = _report(1000.0, 0.05)
        assert check_regression(_report(950.0, 0.05), base) == []

    def test_regression_fails(self):
        base = _report(1000.0, 0.05)
        failures = check_regression(_report(800.0, 0.05), base)
        assert failures and "simulator" in failures[0]

    def test_machine_speed_normalizes_out(self):
        # Same work on a machine 2x slower: raw steps/sec halves but the
        # calibration probe doubles, so the gate must not fire.
        base = _report(1000.0, 0.05)
        slower = _report(500.0, 0.10)
        assert check_regression(slower, base) == []

    def test_missing_loop_reported(self):
        base = _report(1000.0, 0.05)
        current = _report(1000.0, 0.05)
        current["serving"] = {}
        failures = check_regression(current, base)
        assert failures and "missing" in failures[0]

    def test_missing_calibration_reported(self):
        base = _report(1000.0, 0.05)
        del base["calibration_s"]
        assert check_regression(_report(1000.0, 0.05), base)


class TestReportRendering:
    def test_table_and_json_roundtrip(self, tmp_path):
        report = _report(1000.0, 0.05)
        text = format_bench_table(report)
        assert f"BENCH v{BENCH_VERSION}" in text
        assert "simulator" in text
        path = tmp_path / "BENCH.json"
        write_bench(report, str(path))
        assert json.loads(path.read_text()) == report
