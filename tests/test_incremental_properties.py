"""Hypothesis property tests: KV-cached decoding ≡ recompute, always.

Random request sets, random packing geometries, random decode budgets —
the incremental decoder must agree with the recompute decoder
token-for-token on every one.  This is the strongest guard against
cache-indexing bugs (off-by-one positions, stale K/V, mask drift).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packing import pack_first_fit
from repro.model.incremental import greedy_decode_incremental


@st.composite
def decode_cases(draw):
    n = draw(st.integers(1, 6))
    lengths = [draw(st.integers(1, 8)) for _ in range(n)]
    rows = draw(st.integers(1, 3))
    budget = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**16))
    return lengths, rows, budget, seed


class TestIncrementalProperties:
    @given(case=decode_cases())
    @settings(max_examples=20, deadline=None)
    def test_always_matches_recompute(self, tiny_model, case):
        lengths, rows, budget, seed = case
        rng = np.random.default_rng(seed)
        cfg = tiny_model.config
        from repro.types import Request

        reqs = [
            Request(
                request_id=i,
                length=l,
                tokens=tuple(
                    int(t) for t in rng.integers(4, cfg.vocab_size, size=l)
                ),
            )
            for i, l in enumerate(lengths)
        ]
        cap = max(lengths) * ((len(lengths) + rows - 1) // rows + 1)
        res = pack_first_fit(reqs, num_rows=rows, row_length=cap)
        layout = res.layout
        if layout.num_requests == 0:
            return
        full = tiny_model.greedy_decode(layout, max_new_tokens=budget)
        inc = greedy_decode_incremental(tiny_model, layout, max_new_tokens=budget)
        assert full.outputs == inc.outputs
        assert full.completion_step == inc.completion_step
