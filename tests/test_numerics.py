"""Tests for the numeric primitives in repro.numerics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.numerics import gelu, layer_norm, linear, log_softmax, relu, softmax


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(size=(3, 5))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(4,))
        assert np.allclose(softmax(x), softmax(x + 1000.0))

    def test_large_negative_mask_underflows_to_zero(self):
        x = np.array([0.0, 0.0, -1e9])
        s = softmax(x)
        assert s[2] == 0.0
        assert np.allclose(s[:2], 0.5)

    def test_no_overflow_on_huge_inputs(self):
        x = np.array([1e8, 1e8 + 1.0])
        s = softmax(x)
        assert np.isfinite(s).all()

    def test_axis_argument(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(1, 6)),
            elements=st.floats(-50, 50),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistent(self, x):
        assert np.allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-12)


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gelu_limits(self):
        assert gelu(np.array([0.0]))[0] == 0.0
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_gelu_midpoint(self):
        # gelu(1) ≈ 0.8412 (tanh approximation)
        assert gelu(np.array([1.0]))[0] == pytest.approx(0.8412, abs=1e-3)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(2, 4, 8))
        out = layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        x = rng.normal(size=(3, 4))
        out = layer_norm(x, 2.0 * np.ones(4), 3.0 * np.ones(4))
        base = layer_norm(x, np.ones(4), np.zeros(4))
        assert np.allclose(out, 2.0 * base + 3.0)


class TestLinear:
    def test_matches_matmul(self, rng):
        x = rng.normal(size=(2, 3))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=(5,))
        assert np.allclose(linear(x, w, b), x @ w + b)

    def test_bias_optional(self, rng):
        x = rng.normal(size=(2, 3))
        w = rng.normal(size=(3, 5))
        assert np.allclose(linear(x, w), x @ w)
