"""Remaining coverage: small constructors and accounting helpers."""

import pytest

from repro.core.layout import BatchLayout, RowLayout, Segment
from repro.core.packing import PackingResult
from repro.types import Request, RequestBatchStats, make_requests


class TestSinglePerRow:
    def test_fixed_width_rows(self):
        reqs = make_requests([5, 3], start_id=0)
        layout = BatchLayout.single_per_row(reqs, row_length=10)
        assert layout.scheme == "turbo"
        assert layout.num_rows == 2
        assert layout.rows[0].capacity == 10
        assert layout.effective_width == 5

    def test_oversize_rejected(self):
        reqs = make_requests([20], start_id=0)
        with pytest.raises(ValueError, match="exceeds"):
            BatchLayout.single_per_row(reqs, row_length=10)


class TestRowExtent:
    def test_extent_vs_used_with_slot_offsets(self):
        row = RowLayout(capacity=12)
        # Segment manually placed at an offset (as slotting does).
        row.segments.append(Segment(Request(request_id=0, length=3), start=6))
        assert row.used == 3
        assert row.extent == 9

    def test_empty_row_extent(self):
        assert RowLayout(capacity=5).extent == 0


class TestRequestBatchStats:
    def test_padding_ratio(self):
        s = RequestBatchStats(useful_tokens=60, padded_tokens=40)
        assert s.total_tokens == 100
        assert s.padding_ratio == pytest.approx(0.4)
        assert s.utilisation == pytest.approx(0.6)

    def test_empty_ratio_zero(self):
        s = RequestBatchStats()
        assert s.padding_ratio == 0.0
        assert s.utilisation == 1.0


class TestPackingResult:
    def test_counts(self):
        layout = BatchLayout(num_rows=1, row_length=10)
        res = PackingResult(
            layout=layout,
            packed=make_requests([2], start_id=0),
            rejected=make_requests([3, 4], start_id=10),
        )
        assert res.num_packed == 1
        assert res.num_rejected == 2


class TestSegment:
    def test_positions(self):
        seg = Segment(Request(request_id=0, length=4), start=7)
        assert seg.positions().tolist() == [0, 1, 2, 3]
        assert (seg.start, seg.end, seg.length) == (7, 11, 4)
