"""Tests for the TurboBatching DP splitter (TTB baseline)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.turbo import dp_split


def brute_force_split(lengths, cost_fn, max_group=None):
    """Enumerate all contiguous partitions; return the minimum cost."""
    n = len(lengths)
    cap = n if max_group is None else max_group
    best = float("inf")
    # Cut points are subsets of positions 1..n-1.
    for k in range(n):
        for cuts in itertools.combinations(range(1, n), k):
            bounds = [0, *cuts, n]
            ok = all(b - a <= cap for a, b in zip(bounds, bounds[1:]))
            if not ok:
                continue
            cost = sum(
                cost_fn(b - a, lengths[b - 1]) for a, b in zip(bounds, bounds[1:])
            )
            best = min(best, cost)
    return best


def _cost(fixed):
    def fn(count, width):
        return fixed + count * width

    return fn


class TestDPSplit:
    def test_empty(self):
        assert dp_split([], _cost(1.0)) == []

    def test_single(self):
        assert dp_split([5], _cost(1.0)) == [(0, 1)]

    def test_groups_cover_input(self):
        lengths = [1, 2, 2, 8, 9]
        groups = dp_split(lengths, _cost(1.0))
        flat = [i for a, b in groups for i in range(a, b)]
        assert flat == list(range(len(lengths)))

    def test_high_fixed_cost_merges_everything(self):
        groups = dp_split([1, 2, 3, 50], _cost(1e9))
        assert groups == [(0, 4)]

    def test_zero_fixed_cost_splits_everything(self):
        groups = dp_split([1, 5, 9], _cost(0.0))
        assert groups == [(0, 1), (1, 2), (2, 3)]

    def test_splits_at_length_jump(self):
        # [2,2,2, 100]: padding the three 2s to 100 costs 294 extra;
        # a split costs one extra `fixed`.
        groups = dp_split([2, 2, 2, 100], _cost(10.0))
        assert groups == [(0, 3), (3, 4)]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            dp_split([3, 1], _cost(1.0))

    def test_max_group_cap(self):
        groups = dp_split([1, 1, 1, 1], _cost(1e9), max_group=2)
        assert all(b - a <= 2 for a, b in groups)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            dp_split([1], _cost(1.0), max_group=0)

    @given(
        lengths=st.lists(st.integers(1, 50), min_size=1, max_size=8),
        fixed=st.floats(0.0, 100.0),
        cap=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_dp_is_optimal(self, lengths, fixed, cap):
        lengths = sorted(lengths)
        cost_fn = _cost(fixed)
        groups = dp_split(lengths, cost_fn, max_group=cap)
        dp_cost = sum(cost_fn(b - a, lengths[b - 1]) for a, b in groups)
        assert all(b - a <= cap for a, b in groups)
        best = brute_force_split(lengths, cost_fn, max_group=cap)
        assert dp_cost == pytest.approx(best)
