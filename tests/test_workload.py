"""Tests for workload generation (Poisson arrivals, length families)."""

import numpy as np
import pytest

from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator
from repro.workload.traces import glue_dia_like, paper_default, paracrawl_like


class TestLengthDistribution:
    @pytest.mark.parametrize(
        "family", ["normal", "uniform", "lognormal", "bimodal", "constant"]
    )
    def test_bounds_respected(self, family, rng):
        dist = LengthDistribution(family=family, mean=20, spread=30, low=3, high=100)
        samples = dist.sample(5000, rng)
        assert samples.min() >= 3
        assert samples.max() <= 100
        assert samples.dtype == np.int64

    def test_normal_mean_approximate(self, rng):
        dist = LengthDistribution(family="normal", mean=20, spread=5, low=3, high=100)
        samples = dist.sample(20000, rng)
        assert abs(samples.mean() - 20) < 0.5

    def test_spread_increases_dispersion(self, rng):
        lo = LengthDistribution(family="normal", mean=20, spread=5).sample(10000, rng)
        hi = LengthDistribution(family="normal", mean=20, spread=50).sample(10000, rng)
        assert hi.std() > lo.std()

    def test_constant(self, rng):
        dist = LengthDistribution(family="constant", mean=17, low=3, high=100)
        assert set(dist.sample(100, rng).tolist()) == {17}

    def test_bimodal_has_two_modes(self, rng):
        dist = LengthDistribution(family="bimodal", mean=50, spread=6, low=3, high=100)
        s = dist.sample(10000, rng)
        short = (s < 40).mean()
        long_ = (s > 60).mean()
        assert short > 0.3 and long_ > 0.3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LengthDistribution(low=0)
        with pytest.raises(ValueError):
            LengthDistribution(low=10, high=5)

    def test_zero_samples(self, rng):
        assert LengthDistribution().sample(0, rng).size == 0
        with pytest.raises(ValueError):
            LengthDistribution().sample(-1, rng)


class TestDeadlineModel:
    def test_deadline_after_arrival(self, rng):
        dm = DeadlineModel(base_slack=1.0, slack_per_token=0.1, jitter=0.5)
        d = dm.deadline(arrival=10.0, length=5, rng=rng)
        assert 11.5 <= d <= 12.0

    def test_no_jitter_deterministic(self, rng):
        dm = DeadlineModel(base_slack=2.0, slack_per_token=0.0, jitter=0.0)
        assert dm.deadline(1.0, 10, rng) == 3.0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            DeadlineModel(base_slack=-1.0)


class TestWorkloadGenerator:
    def test_poisson_rate_approximate(self):
        wl = WorkloadGenerator(rate=200.0, horizon=20.0, seed=3)
        reqs = wl.generate()
        assert abs(len(reqs) - 4000) < 4000 * 0.1

    def test_arrivals_sorted_within_horizon(self):
        reqs = WorkloadGenerator(rate=50.0, horizon=5.0, seed=0).generate()
        arr = [r.arrival for r in reqs]
        assert arr == sorted(arr)
        assert all(0 <= a < 5.0 for a in arr)

    def test_deterministic_by_seed(self):
        a = WorkloadGenerator(rate=50.0, horizon=2.0, seed=9).generate()
        b = WorkloadGenerator(rate=50.0, horizon=2.0, seed=9).generate()
        assert [(r.arrival, r.length) for r in a] == [
            (r.arrival, r.length) for r in b
        ]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(rate=50.0, horizon=2.0, seed=1).generate()
        b = WorkloadGenerator(rate=50.0, horizon=2.0, seed=2).generate()
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_start_id_offsets(self):
        reqs = WorkloadGenerator(rate=10.0, horizon=1.0, seed=0).generate(start_id=100)
        assert all(r.request_id >= 100 for r in reqs)

    def test_ids_unique(self):
        reqs = WorkloadGenerator(rate=100.0, horizon=3.0, seed=0).generate()
        assert len({r.request_id for r in reqs}) == len(reqs)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(rate=1.0, horizon=0.0)

    def test_low_rate_long_gap_covered(self):
        # Rate low enough that the first arrival batch may not reach the
        # horizon — the generator must extend until it does.
        reqs = WorkloadGenerator(rate=0.5, horizon=30.0, seed=4).generate()
        assert all(r.arrival < 30.0 for r in reqs)


class TestNamedTraces:
    def test_paper_default_matches_section_6(self):
        wl = paper_default(rate=100.0, seed=0)
        reqs = wl.generate()
        lengths = np.array([r.length for r in reqs])
        assert lengths.min() >= 3 and lengths.max() <= 100
        assert abs(lengths.mean() - 20) < 5

    def test_paracrawl_like_heavy_tail(self):
        reqs = paracrawl_like(rate=300.0, seed=0).generate()
        lengths = np.array([r.length for r in reqs])
        # Heavy right tail: mean well above median.
        assert lengths.mean() > np.median(lengths) * 1.15

    def test_glue_dia_like_bimodal(self):
        reqs = glue_dia_like(rate=300.0, seed=0).generate()
        lengths = np.array([r.length for r in reqs])
        assert (lengths < 40).mean() > 0.25
        assert (lengths > 70).mean() > 0.25
