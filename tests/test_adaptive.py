"""Tests for AdaptiveEngine (cost-guided plan selection)."""

import pytest

from repro.config import BatchConfig
from repro.engine.adaptive import AdaptiveEngine
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.engine.turbo import TurboEngine
from repro.types import make_requests


@pytest.fixture()
def batch():
    return BatchConfig(num_rows=32, row_length=400)


class TestAdaptiveEngine:
    def test_never_slower_than_pure_concat(self, batch):
        reqs = make_requests([100] * 128, start_id=0)
        adaptive = AdaptiveEngine(batch).serve(list(reqs))
        pure = ConcatEngine(batch).serve(list(reqs))
        assert adaptive.num_served == pure.num_served
        assert adaptive.latency <= pure.latency + 1e-12

    def test_never_slower_than_turbo(self, batch):
        reqs = make_requests([10] * 20 + [390] * 10, start_id=0)
        adaptive = AdaptiveEngine(batch).serve(list(reqs))
        turbo = TurboEngine(batch).serve(list(reqs))
        assert adaptive.num_served >= turbo.num_served
        if adaptive.num_served == turbo.num_served:
            assert adaptive.latency <= turbo.latency + 1e-12

    def test_picks_slotted_for_uniform_full_batch(self, batch):
        # Uniform 100-token requests filling 400-token rows: slotting is
        # strictly cheaper (Fig. 14's regime).
        reqs = make_requests([100] * 128, start_id=0)
        eng = AdaptiveEngine(batch)
        eng.serve(list(reqs))
        assert eng.last_choice == "slotted"

    def test_prefers_serving_everyone(self, batch):
        # 300-token requests don't fit 50-token slots; a complete plan
        # (pure concat / turbo) must win over a rejecting slotted plan.
        reqs = make_requests([300] * 8, start_id=0)
        result = AdaptiveEngine(batch, slot_counts=(8,)).serve(list(reqs))
        assert result.num_served == 8
        assert not result.rejected

    def test_all_oversize(self, batch):
        reqs = make_requests([500] * 3, start_id=0)
        result = AdaptiveEngine(batch).serve(list(reqs))
        assert result.num_served == 0
        assert len(result.rejected) == 3

    def test_empty(self, batch):
        assert AdaptiveEngine(batch).serve([]).num_served == 0

    def test_beats_every_fixed_scheme_somewhere(self, batch):
        """Adaptivity pays: across two workload shapes, adaptive matches
        the per-shape winner while each fixed scheme loses one."""
        uniform = make_requests([100] * 128, start_id=0)
        mixed = make_requests([15] * 40 + [380] * 12, start_id=1000)
        engines = {
            "concat": ConcatEngine(batch),
            "slotted8": SlottedConcatEngine(batch, num_slots=8),
        }
        for workload in (uniform, mixed):
            adaptive = AdaptiveEngine(batch).serve(list(workload))
            for eng in engines.values():
                fixed = eng.serve(list(workload))
                if fixed.num_served == adaptive.num_served:
                    assert adaptive.latency <= fixed.latency + 1e-12
                else:
                    assert adaptive.num_served >= fixed.num_served
