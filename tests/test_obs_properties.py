"""Property tests for the tracing layer (repro.obs).

Three invariants must hold for *any* traced serving run, fault-injected
or healthy, across all three serving loops:

1. every request reaches exactly one terminal state (served / expired /
   rejected / abandoned) — the span stream's conservation ledger,
2. each request's event timestamps are monotone non-decreasing,
3. the trace-derived outcome counts equal the run's
   :class:`~repro.serving.metrics.ServingMetrics` exactly
   (:meth:`~repro.obs.recorder.Tracer.reconcile` is called by the loops
   themselves, so these runs double-check it end to end).

The fault plans reuse ``faults/plan.py`` seeding, so every scenario is
replayable from its ``(chaos_rate, seed)`` pair.
"""

from __future__ import annotations

import pytest

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.faults.engine import FaultyEngine
from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs.recorder import NO_TRACE, Tracer
from repro.obs.spans import TERMINAL_KINDS, EventKind
from repro.overload import (
    BreakerConfig,
    DegradationConfig,
    OverloadConfig,
    OverloadController,
    QueueLimits,
    make_shedder,
)
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.admission import AdmissionController
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

BATCH = BatchConfig(num_rows=8, row_length=64)

SCENARIOS = [
    # (loop, chaos_rate, seed)
    ("single", 0.0, 0),
    ("single", 0.2, 1),
    ("single", 0.4, 2),
    ("cluster", 0.0, 3),
    ("cluster", 0.25, 4),
    ("continuous", 0.0, 5),
    ("continuous", 0.3, 6),
    ("slotted", 0.2, 7),
    # "+ov" runs the same loop with the full overload plane active
    # (bounded queue + shedding + degradation + breaker) — combined
    # overload and fault injection must keep every invariant exact.
    ("single+ov", 0.0, 8),
    ("single+ov", 0.3, 9),
    ("cluster+ov", 0.25, 10),
    ("continuous+ov", 0.3, 11),
]


def _workload(seed: int) -> WorkloadGenerator:
    return WorkloadGenerator(
        rate=150.0,
        lengths=LengthDistribution(family="normal", mean=12, spread=8, low=3, high=48),
        deadlines=DeadlineModel(base_slack=2.0, jitter=1.0),
        horizon=2.0,
        seed=seed,
    )


def _faulty(engine, rate: float, seed: int):
    if rate == 0.0:
        return engine
    return FaultyEngine(
        engine, FaultPlan(FaultConfig.chaos(rate, downtime=0.2), seed=seed)
    )


def _overload_controller(seed: int) -> OverloadController:
    return OverloadController(
        OverloadConfig(
            limits=QueueLimits(max_tokens=BATCH.capacity_tokens),
            shedding=make_shedder("random", seed=seed),
            breaker=BreakerConfig(failure_threshold=2, recovery_time=0.2),
            degradation=DegradationConfig(
                shed_enter_delay=0.3,
                shed_exit_delay=0.1,
                brownout_enter_delay=0.8,
                brownout_exit_delay=0.3,
                min_window=8,
                shed_min_slack=0.5,
                brownout_min_slack=1.0,
            ),
        )
    )


def _run_traced(loop: str, rate: float, seed: int):
    tracer = Tracer()
    wl = _workload(seed)
    loop, _, suffix = loop.partition("+")
    ov = _overload_controller(seed) if suffix == "ov" else None
    if loop == "single":
        sim = ServingSimulator(
            DASScheduler(BATCH),
            _faulty(ConcatEngine(BATCH), rate, seed),
            admission=AdmissionController(BATCH),
            trace=tracer,
            overload=ov,
        )
        metrics = sim.run(wl).metrics
    elif loop == "slotted":
        sim = ServingSimulator(
            SlottedDASScheduler(BATCH),
            _faulty(SlottedConcatEngine(BATCH), rate, seed),
            trace=tracer,
        )
        metrics = sim.run(wl).metrics
    elif loop == "cluster":
        sim = ClusterSimulator(
            DASScheduler(BATCH),
            [_faulty(ConcatEngine(BATCH), rate, seed + i) for i in range(2)],
            trace=tracer,
            overload=ov,
        )
        metrics = sim.run(wl).metrics
    else:
        sim = ContinuousBatchingSimulator(
            BATCH,
            seed=seed,
            fault_plan=(
                FaultPlan(FaultConfig.chaos(rate, downtime=0.2), seed=seed)
                if rate
                else None
            ),
            trace=tracer,
            overload=ov,
        )
        metrics = sim.run(wl)
    return tracer, metrics


@pytest.mark.parametrize("loop,rate,seed", SCENARIOS)
class TestTraceIntegrity:
    def test_exactly_one_terminal_span_per_request(self, loop, rate, seed):
        tracer, metrics = _run_traced(loop, rate, seed)
        assert tracer.num_requests == metrics.arrived
        outcomes = tracer.outcomes()
        assert len(outcomes) == metrics.arrived
        for rid, events in tracer.events.items():
            terminals = [e for e in events if e.kind in TERMINAL_KINDS]
            assert len(terminals) == 1, f"request {rid}"
            assert terminals[-1] is events[-1], (
                f"request {rid}: terminal event is not last"
            )

    def test_timestamps_monotone_per_request(self, loop, rate, seed):
        tracer, _ = _run_traced(loop, rate, seed)
        for rid, events in tracer.events.items():
            ts = [e.t for e in events]
            assert ts == sorted(ts), f"request {rid}: {ts}"
            assert events[0].kind is EventKind.ARRIVE

    def test_counts_reconcile_with_metrics(self, loop, rate, seed):
        tracer, metrics = _run_traced(loop, rate, seed)
        counts = tracer.outcome_counts()
        assert counts["served"] == metrics.num_served
        assert counts["expired"] == len(metrics.expired)
        assert counts["rejected"] == len(metrics.rejected)
        assert counts["abandoned"] == len(metrics.abandoned)
        # reconcile() re-checks the same and must not raise.
        tracer.reconcile(metrics)

    def test_spans_cover_every_request(self, loop, rate, seed):
        tracer, metrics = _run_traced(loop, rate, seed)
        spans = tracer.spans()
        by_request: dict[int, list] = {}
        for s in spans:
            by_request.setdefault(s.request_id, []).append(s)
        assert len(by_request) == metrics.arrived
        for rid, ss in by_request.items():
            # Spans tile the lifetime: contiguous, ending in a terminal.
            for a, b in zip(ss, ss[1:]):
                assert a.t_end == b.t_start, f"request {rid}: gap"
            assert ss[-1].is_terminal
            assert ss[-1].duration == 0.0


class TestTracerDiscipline:
    def test_no_trace_is_inert(self):
        assert NO_TRACE.enabled is False
        # Arbitrary method access is a no-op, not an error.
        NO_TRACE.arrive(None, 0.0)
        NO_TRACE.anything_at_all(1, 2, 3)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        sim = ServingSimulator(
            DASScheduler(BATCH), ConcatEngine(BATCH), trace=tracer
        )
        sim.run(_workload(0))
        assert tracer.events == {}
        assert tracer.batches == []
        assert tracer.decisions == []

    def test_terminal_dedupe(self):
        from repro.types import Request

        tracer = Tracer()
        r = Request(request_id=1, length=4, arrival=0.0, deadline=5.0)
        tracer.arrive(r, 0.0)
        tracer.served([r], 1.0)
        tracer.expired([r], 2.0)  # duplicate terminal: must be dropped
        assert tracer.outcomes() == {1: "served"}
        assert tracer.duplicate_terminals == 1
        assert len(tracer.events[1]) == 2

    def test_terminal_clamp_keeps_timestamps_monotone(self):
        from repro.types import Request

        tracer = Tracer()
        r = Request(request_id=2, length=4, arrival=3.0, deadline=5.0)
        tracer.arrive(r, 3.0)
        # Terminal timestamp earlier than the last recorded event (a
        # post-horizon arrival expired "at the horizon"): clamp to 3.0.
        tracer.expired([r], 2.0)
        ts = [e.t for e in tracer.events[2]]
        assert ts == sorted(ts)
        assert ts[-1] == 3.0
