"""Tests for the fault-tolerance layer: plans, engine wrapper, recovery
policies, and the conservation invariant under chaos in every loop."""

import numpy as np
import pytest

from repro.config import BatchConfig
from repro.engine.base import MIN_SLOT
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.faults import (
    BatchFailure,
    EngineDown,
    FaultConfig,
    FaultConfigError,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultyEngine,
    RetryPolicy,
    requeue_failed,
    serve_slot,
)
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.types import Request, make_requests
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


def _batch(rows=4, L=20):
    return BatchConfig(num_rows=rows, row_length=L)


def _workload(rate=200.0, horizon=3.0, seed=0, base_slack=1.0):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(family="normal", mean=8, spread=4, low=3, high=20),
        deadlines=DeadlineModel(base_slack=base_slack, jitter=0.5),
        horizon=horizon,
        seed=seed,
    )


def _faulty(config, seed=0, batch=None):
    batch = batch or _batch()
    return FaultyEngine(ConcatEngine(batch), FaultPlan(config, seed=seed))


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultConfig(failure_rate=-0.1)
        with pytest.raises(ValueError, match="sum"):
            FaultConfig(failure_rate=0.6, crash_rate=0.6)

    def test_shape_parameters_validated(self):
        with pytest.raises(ValueError, match="straggler_multiplier"):
            FaultConfig(straggler_multiplier=(0.5, 2.0))
        with pytest.raises(ValueError, match="downtime"):
            FaultConfig(downtime=0.0)
        with pytest.raises(ValueError, match="oom_threshold"):
            FaultConfig(oom_threshold=0.0)

    def test_is_zero(self):
        assert FaultConfig().is_zero
        assert not FaultConfig(failure_rate=0.1).is_zero

    def test_chaos_preset_splits_rate(self):
        c = FaultConfig.chaos(0.5)
        assert c.failure_rate == pytest.approx(0.2)
        assert c.straggler_rate == pytest.approx(0.15)
        assert c.oom_rate == pytest.approx(0.1)
        assert c.crash_rate == pytest.approx(0.05)
        assert FaultConfig.chaos(0.0).is_zero
        with pytest.raises(ValueError):
            FaultConfig.chaos(1.5)


class TestTypedValidation:
    """ISSUE 9 satellite: ill-formed plans raise FaultConfigError (a
    ValueError subclass) instead of silently degrading."""

    def test_error_type_is_value_error_subclass(self):
        assert issubclass(FaultConfigError, ValueError)
        with pytest.raises(FaultConfigError):
            FaultConfig(failure_rate=2.0)

    def test_inverted_straggler_range(self):
        with pytest.raises(FaultConfigError, match="lo <= hi"):
            FaultConfig(straggler_multiplier=(6.0, 2.0))

    def test_negative_straggler_range(self):
        with pytest.raises(FaultConfigError, match="straggler_multiplier"):
            FaultConfig(straggler_multiplier=(-2.0, 6.0))

    def test_non_finite_parameters(self):
        with pytest.raises(FaultConfigError, match="finite"):
            FaultConfig(straggler_multiplier=(1.0, float("inf")))
        with pytest.raises(FaultConfigError, match="finite"):
            FaultConfig(downtime=float("nan"))

    def test_zero_probability_event_cannot_carry_payload(self):
        """A NONE event claiming a multiplier or downtime is a plan bug
        — the slot says 'no fault' while smuggling in fault shape."""
        with pytest.raises(FaultConfigError, match="multiplier"):
            FaultEvent(kind=FaultKind.NONE, multiplier=4.0)
        with pytest.raises(FaultConfigError, match="downtime"):
            FaultEvent(kind=FaultKind.NONE, downtime=1.0)
        with pytest.raises(FaultConfigError, match="multiplier"):
            FaultEvent(kind=FaultKind.FAILURE, multiplier=2.0)

    def test_event_kind_shape_pairing(self):
        with pytest.raises(FaultConfigError, match=">= 1"):
            FaultEvent(kind=FaultKind.STRAGGLER, multiplier=0.5)
        with pytest.raises(FaultConfigError, match="positive"):
            FaultEvent(kind=FaultKind.CRASH, downtime=0.0)
        # Well-formed events are untouched.
        FaultEvent(kind=FaultKind.STRAGGLER, multiplier=3.0)
        FaultEvent(kind=FaultKind.CRASH, downtime=0.5)
        FaultEvent()

    def test_chaos_zero_rate_still_valid(self):
        assert FaultConfig.chaos(0.0, downtime=0.5).is_zero


class TestFaultPlan:
    def test_same_seed_same_events(self):
        cfg = FaultConfig.chaos(0.5)
        a = FaultPlan(cfg, seed=7)
        b = FaultPlan(cfg, seed=7)
        assert a.events(200) == b.events(200)

    def test_query_order_is_irrelevant(self):
        cfg = FaultConfig.chaos(0.5)
        forward = FaultPlan(cfg, seed=3)
        backward = FaultPlan(cfg, seed=3)
        fwd = [forward.event(i) for i in range(50)]
        bwd = [backward.event(i) for i in reversed(range(50))]
        assert fwd == list(reversed(bwd))

    def test_seeds_differ(self):
        cfg = FaultConfig.chaos(0.5)
        assert FaultPlan(cfg, seed=0).events(100) != FaultPlan(cfg, seed=1).events(100)

    def test_counts_track_rates(self):
        n = 4000
        counts = FaultPlan(FaultConfig.chaos(0.4), seed=0).counts(n)
        assert counts["failure"] / n == pytest.approx(0.16, abs=0.03)
        assert counts["straggler"] / n == pytest.approx(0.12, abs=0.03)
        assert counts["oom"] / n == pytest.approx(0.08, abs=0.03)
        assert counts["crash"] / n == pytest.approx(0.04, abs=0.02)
        assert sum(counts.values()) == n

    def test_zero_config_is_all_healthy(self):
        plan = FaultPlan(FaultConfig(), seed=0)
        assert all(e.kind is FaultKind.NONE for e in plan.events(32))

    def test_validation(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(FaultConfig(), seed=-1)
        with pytest.raises(ValueError, match="index"):
            FaultPlan(FaultConfig()).event(-1)


class TestFaultyEngine:
    def _requests(self, lengths=(5, 6, 7)):
        return make_requests(list(lengths), deadlines=[100.0] * len(lengths))

    def test_zero_fault_passthrough_is_bit_identical(self):
        reqs = self._requests()
        plain = ConcatEngine(_batch())
        wrapped = _faulty(FaultConfig())
        a = plain.serve(reqs)
        b = wrapped.serve(reqs, now=1.0)
        assert b.latency == a.latency
        assert [r.request_id for r in b.served] == [r.request_id for r in a.served]
        assert wrapped.serve_calls == 0  # passthrough consumes no plan events

    def test_failure_consumes_latency(self):
        wrapped = _faulty(FaultConfig(failure_rate=1.0))
        baseline = ConcatEngine(_batch()).serve(self._requests())
        with pytest.raises(BatchFailure) as exc:
            wrapped.serve(self._requests())
        assert exc.value.kind == "failure"
        assert exc.value.latency == pytest.approx(baseline.latency)

    def test_straggler_multiplies_latency(self):
        wrapped = _faulty(FaultConfig(straggler_rate=1.0))
        baseline = ConcatEngine(_batch()).serve(self._requests())
        result = wrapped.serve(self._requests())
        assert result.latency >= 2.0 * baseline.latency
        assert wrapped.straggler_events == 1

    def test_oom_only_above_threshold(self):
        cfg = FaultConfig(oom_rate=1.0, oom_threshold=0.5)
        wrapped = _faulty(cfg)
        # 4x20 batch: capacity 80 tokens, threshold 40.
        big = make_requests([18, 18, 18], deadlines=[100.0] * 3)
        with pytest.raises(BatchFailure) as exc:
            wrapped.serve(big)
        assert exc.value.kind == "oom"
        assert exc.value.latency == pytest.approx(wrapped.cost_model.fixed_per_batch)
        # A small batch survives the same draw.
        small = make_requests([5], deadlines=[100.0])
        assert wrapped.serve(small).served

    def test_crash_refuses_until_recovery(self):
        wrapped = _faulty(FaultConfig(crash_rate=1.0, downtime=2.0))
        with pytest.raises(EngineDown) as exc:
            wrapped.serve(self._requests(), now=10.0)
        down_until = exc.value.down_until
        assert down_until > 10.0
        assert exc.value.downtime == pytest.approx(down_until - 10.0)
        # Refused while recovering — and the refusal opens no new outage.
        with pytest.raises(EngineDown) as exc2:
            wrapped.serve(self._requests(), now=down_until - 1e-3)
        assert exc2.value.down_until == down_until
        assert exc2.value.downtime == 0.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_exhausted_budget_abandons(self):
        policy = RetryPolicy(max_retries=1)
        r = Request(request_id=0, length=5, deadline=100.0)
        cm = GPUCostModel.calibrated()
        retained, lost = policy.triage([r], 0.0, cm, {0: 1})
        assert retained == [r]
        retained, lost = policy.triage([r], 0.0, cm, {0: 2})
        assert lost == [r]

    def test_infeasible_deadline_abandons(self):
        policy = RetryPolicy()
        cm = GPUCostModel.calibrated()
        quickest = cm.batch_time(5, 25)
        tight = Request(request_id=0, length=5, deadline=quickest / 2)
        loose = Request(request_id=1, length=5, deadline=quickest * 10)
        retained, lost = policy.triage([tight, loose], 0.0, cm, {})
        assert retained == [loose]
        assert lost == [tight]

    def test_requeue_failed_updates_queue_ledgers(self):
        queue = RequestQueue()
        reqs = make_requests([5, 5], deadlines=[100.0, 1e-9])
        queue.extend(reqs)
        retained, lost = requeue_failed(
            queue, RetryPolicy(), GPUCostModel.calibrated(), reqs, now=0.0
        )
        assert retained == [reqs[0]]
        assert queue.abandoned == [reqs[1]]
        assert queue.attempts == {reqs[0].request_id: 1, reqs[1].request_id: 1}
        # The retained request is still waiting; the abandoned one is not.
        assert len(queue) == 1


class TestServeSlot:
    def test_healthy_slot_is_transparent(self):
        engine = ConcatEngine(_batch())
        reqs = make_requests([5, 6], deadlines=[100.0, 100.0])
        outcome = serve_slot(engine, reqs, now=0.0)
        assert outcome.ok
        assert outcome.wasted == 0.0
        assert outcome.failures == 0

    def test_oom_split_retry_converges(self):
        engine = _faulty(FaultConfig(oom_rate=1.0, oom_threshold=0.5))
        reqs = make_requests([15, 15, 15, 15], deadlines=[100.0] * 4)
        outcome = serve_slot(engine, reqs, now=0.0)
        assert outcome.ok
        assert outcome.failures >= 1
        assert outcome.split_retries >= 1
        assert len(outcome.batch) < len(reqs)
        assert outcome.wasted > 0.0

    def test_crash_surfaces_downtime(self):
        engine = _faulty(FaultConfig(crash_rate=1.0, downtime=1.0))
        reqs = make_requests([5], deadlines=[100.0])
        outcome = serve_slot(engine, reqs, now=3.0)
        assert not outcome.ok
        assert outcome.down_until is not None and outcome.down_until > 3.0
        assert outcome.downtime > 0.0
        assert outcome.failed == list(reqs)


class TestConservationUnderChaos:
    """Every loop must land every arrived request in one terminal bucket."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("rate", [0.1, 0.3])
    def test_simulator(self, seed, rate):
        plan = FaultPlan(FaultConfig.chaos(rate, downtime=0.2), seed=seed)
        sim = ServingSimulator(
            DASScheduler(_batch()),
            FaultyEngine(ConcatEngine(_batch()), plan),
        )
        m = sim.run(_workload(seed=seed)).metrics
        assert m.conservation_ok

    def test_simulator_under_certain_failure(self):
        """failure_rate=1: every batch fails, everything is abandoned or
        expires — and the books still balance."""
        plan = FaultPlan(FaultConfig(failure_rate=1.0), seed=0)
        sim = ServingSimulator(
            FCFSScheduler(_batch()),
            FaultyEngine(ConcatEngine(_batch()), plan),
        )
        m = sim.run(_workload()).metrics
        assert m.num_served == 0
        assert m.failed_batches > 0
        assert m.retries > 0
        assert m.num_abandoned > 0
        assert m.conservation_ok

    @pytest.mark.parametrize("seed", [0, 1])
    def test_cluster(self, seed):
        cfg = FaultConfig.chaos(0.3, downtime=0.2)
        engines = [
            FaultyEngine(ConcatEngine(_batch()), FaultPlan(cfg, seed=100 + g))
            for g in range(3)
        ]
        sim = ClusterSimulator(FCFSScheduler(_batch()), engines)
        m = sim.run(_workload(rate=400.0, seed=seed)).metrics
        assert m.conservation_ok
        assert m.num_served > 0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_continuous(self, seed):
        sim = ContinuousBatchingSimulator(
            _batch(),
            fault_plan=FaultPlan(FaultConfig.chaos(0.3, downtime=0.2), seed=seed),
            seed=seed,
        )
        m = sim.run(_workload(seed=seed))
        assert m.conservation_ok
        assert m.failed_batches > 0  # hundreds of iterations at rate 0.3

    def test_identical_seeds_identical_metrics(self):
        def run():
            plan = FaultPlan(FaultConfig.chaos(0.25), seed=5)
            sim = ServingSimulator(
                DASScheduler(_batch()),
                FaultyEngine(ConcatEngine(_batch()), plan),
            )
            summary = sim.run(_workload(seed=5)).metrics.summary()
            # Scheduler overhead is wall-clock (Fig. 16's quantity) and
            # legitimately varies run to run; everything else must not.
            summary.pop("sched_overhead")
            return summary

        assert run() == run()


class TestFailover:
    def test_crashed_engine_rejoins_and_cluster_survives(self):
        crashy = FaultConfig(crash_rate=0.3, downtime=0.3)
        engines = [
            FaultyEngine(ConcatEngine(_batch()), FaultPlan(crashy, seed=g))
            for g in range(2)
        ]
        m = ClusterSimulator(FCFSScheduler(_batch()), engines).run(
            _workload(rate=300.0)
        ).metrics
        assert m.num_served > 0
        assert m.downtime > 0.0
        assert m.conservation_ok

    def test_survivor_picks_up_crashed_engines_work(self):
        wl = _workload(rate=300.0)
        crashy = FaultConfig(crash_rate=0.5, downtime=1.0)

        def faulty():
            return FaultyEngine(ConcatEngine(_batch()), FaultPlan(crashy, seed=9))

        solo = ClusterSimulator(FCFSScheduler(_batch()), [faulty()]).run(wl).metrics
        pair = ClusterSimulator(
            FCFSScheduler(_batch()), [faulty(), ConcatEngine(_batch())]
        ).run(wl).metrics
        assert pair.num_served > solo.num_served


class TestNoFaultEquivalence:
    def test_wrapped_simulator_matches_plain(self):
        wl = _workload()
        plain = ServingSimulator(
            DASScheduler(_batch()), ConcatEngine(_batch())
        ).run(wl).metrics
        wrapped = ServingSimulator(
            DASScheduler(_batch()),
            FaultyEngine(ConcatEngine(_batch()), FaultPlan(FaultConfig())),
        ).run(wl).metrics
        a, b = wrapped.summary(), plain.summary()
        a.pop("sched_overhead"), b.pop("sched_overhead")  # wall-clock
        assert a == b
        assert wrapped.finish_times == plain.finish_times

    def test_cluster_of_one_wrapped_matches_plain_simulator(self):
        wl = _workload()
        single = ServingSimulator(
            FCFSScheduler(_batch()), ConcatEngine(_batch())
        ).run(wl).metrics
        cluster = ClusterSimulator(
            FCFSScheduler(_batch()),
            [FaultyEngine(ConcatEngine(_batch()), FaultPlan(FaultConfig()))],
        ).run(wl).metrics
        assert cluster.num_served == single.num_served
        assert cluster.total_utility == pytest.approx(single.total_utility)
        assert cluster.finish_times == single.finish_times

    def test_continuous_without_plan_has_no_fault_metrics(self):
        m = ContinuousBatchingSimulator(_batch()).run(_workload())
        assert m.failed_batches == 0
        assert m.retries == 0
        assert m.downtime == 0.0
        assert m.conservation_ok


class TestBreakerFaultComposition:
    """The circuit breaker (PR 4) composes with the fault plane (PR 2):
    typed fault outcomes drive the breaker, the breaker gates dispatch,
    and the conservation ledger stays exact throughout."""

    def _controller(self, threshold=2, recovery=0.3):
        from repro.overload import (
            BreakerConfig,
            OverloadConfig,
            OverloadController,
        )

        return OverloadController(
            OverloadConfig(
                breaker=BreakerConfig(
                    failure_threshold=threshold, recovery_time=recovery
                )
            )
        )

    def test_certain_failure_trips_breaker_without_livelock(self):
        """failure_rate=1 with a breaker: the run must still terminate,
        with the breaker open and the books balanced."""
        ov = self._controller()
        plan = FaultPlan(FaultConfig(failure_rate=1.0), seed=0)
        sim = ServingSimulator(
            FCFSScheduler(_batch()),
            FaultyEngine(ConcatEngine(_batch()), plan),
            overload=ov,
        )
        m = sim.run(_workload()).metrics
        assert m.num_served == 0
        assert m.conservation_ok
        trips = [
            t for t in ov.transition_log() if t[0] == "breaker" and t[4] == "open"
        ]
        assert trips, "certain failure must trip the breaker"
        # Quarantine means far fewer wasted batches than breaker-less
        # certain failure (every probe re-opens immediately).
        bare = ServingSimulator(
            FCFSScheduler(_batch()),
            FaultyEngine(ConcatEngine(_batch()), FaultPlan(FaultConfig(failure_rate=1.0), seed=0)),
        ).run(_workload()).metrics
        assert m.failed_batches < bare.failed_batches

    def test_cluster_breaker_quarantines_sick_engine(self):
        """One healthy + one crash-prone engine: per-engine breakers
        trip only the sick engine's, and the cluster keeps serving."""
        ov = self._controller(threshold=1, recovery=0.5)
        crashy = FaultConfig(crash_rate=0.8, downtime=0.3)
        engines = [
            ConcatEngine(_batch()),
            FaultyEngine(ConcatEngine(_batch()), FaultPlan(crashy, seed=4)),
        ]
        sim = ClusterSimulator(FCFSScheduler(_batch()), engines, overload=ov)
        m = sim.run(_workload(rate=300.0)).metrics
        assert m.conservation_ok
        assert m.num_served > 0
        tripped = {t[2] for t in ov.transition_log() if t[0] == "breaker"}
        assert tripped == {1}, "only the crash-prone engine may trip"

    def test_continuous_breaker_composes_with_fault_plan(self):
        ov = self._controller(threshold=1, recovery=0.2)
        sim = ContinuousBatchingSimulator(
            _batch(),
            fault_plan=FaultPlan(
                FaultConfig(failure_rate=0.5, crash_rate=0.2, downtime=0.2),
                seed=3,
            ),
            seed=3,
            overload=ov,
        )
        m = sim.run(_workload(seed=3))
        assert m.conservation_ok
        assert any(t[0] == "breaker" for t in ov.transition_log())

    def test_breaker_preserves_fault_replay_determinism(self):
        def run():
            ov = self._controller()
            plan = FaultPlan(FaultConfig.chaos(0.4, downtime=0.2), seed=8)
            sim = ServingSimulator(
                DASScheduler(_batch()),
                FaultyEngine(ConcatEngine(_batch()), plan),
                overload=ov,
            )
            summary = sim.run(_workload(seed=8)).metrics.summary()
            summary.pop("sched_overhead")  # wall-clock (Fig. 16)
            return summary, ov.transition_log()

        assert run() == run()


class _OOMUntil:
    """Fake engine: raises OOM while the batch is larger than ``fits``.

    Records every attempted batch size so tests can pin the exact
    halving ladder serve_slot walks.
    """

    def __init__(self, inner, fits):
        self.inner = inner
        self.fits = fits
        self.sizes: list[int] = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def serve(self, requests, now=0.0):
        self.sizes.append(len(requests))
        if len(requests) > self.fits:
            raise BatchFailure("oom", MIN_SLOT, requests)
        return self.inner.serve(requests, now=now)


class TestSplitRetryLadder:
    """Ceil-halving regression: odd batches keep their larger half."""

    def _ladder(self, n, fits=1):
        engine = _OOMUntil(ConcatEngine(_batch(rows=8)), fits)
        reqs = make_requests([3] * n, deadlines=[100.0] * n)
        outcome = serve_slot(engine, reqs, now=0.0)
        assert outcome.ok
        return engine.sizes, outcome

    def test_odd_batch_keeps_larger_half(self):
        sizes, outcome = self._ladder(5)
        assert sizes == [5, 3, 2, 1]
        assert len(outcome.batch) == 1

    def test_three_retries_two_not_one(self):
        # Floor halving turned 3 into 1, skipping the feasible size 2.
        sizes, _ = self._ladder(3, fits=2)
        assert sizes == [3, 2]

    def test_even_batch_ladder_unchanged(self):
        sizes, _ = self._ladder(8)
        assert sizes == [8, 4, 2, 1]

    def test_ladder_terminates_at_singleton(self):
        # fits=0 can never succeed by shrinking; the singleton attempt
        # must come back as a terminal failure, not an infinite loop.
        engine = _OOMUntil(ConcatEngine(_batch(rows=8)), 0)
        reqs = make_requests([3] * 4, deadlines=[100.0] * 4)
        outcome = serve_slot(engine, reqs, now=0.0)
        assert not outcome.ok
        assert engine.sizes == [4, 2, 1]
        assert len(outcome.failed) == 1

    def test_split_retries_count_resurvived_requests(self):
        sizes, outcome = self._ladder(5)
        # Each re-serve counts the requests it retried: 3 + 2 + 1.
        assert outcome.split_retries == 6


class TestTriageBoundaries:
    """RetryPolicy.triage at its decision boundaries."""

    def test_zero_retry_budget_abandons_after_first_attempt(self):
        policy = RetryPolicy(max_retries=0)
        cm = GPUCostModel.calibrated()
        r = Request(request_id=0, length=5, deadline=100.0)
        # No recorded attempt yet: still allowed to queue once.
        retained, lost = policy.triage([r], 0.0, cm, {})
        assert retained == [r]
        # One failed attempt recorded: budget exhausted.
        retained, lost = policy.triage([r], 0.0, cm, {0: 1})
        assert lost == [r]

    def test_exactly_feasible_solo_batch_is_retained(self):
        """slack == quickest is kept: the abandon test is strictly <."""
        policy = RetryPolicy()
        cm = GPUCostModel.calibrated()
        quickest = cm.batch_time(5, 25)
        exact = Request(request_id=0, length=5, deadline=quickest)
        retained, lost = policy.triage([exact], 0.0, cm, {})
        assert retained == [exact]
        # An epsilon less slack flips it to abandoned.
        tight = Request(
            request_id=1, length=5, deadline=quickest * (1 - 1e-9)
        )
        retained, lost = policy.triage([tight], 0.0, cm, {})
        assert lost == [tight]

    def test_stale_attempt_entries_are_harmless(self):
        """Attempts for ids no longer queued must not affect triage."""
        policy = RetryPolicy(max_retries=1)
        cm = GPUCostModel.calibrated()
        r = Request(request_id=7, length=5, deadline=100.0)
        attempts = {1: 99, 2: 5, 7: 1}  # 1 and 2 left the queue long ago
        retained, lost = policy.triage([r], 0.0, cm, attempts)
        assert retained == [r]
        assert lost == []

    def test_requeue_failed_with_stale_attempts_map(self):
        queue = RequestQueue()
        reqs = make_requests([5], deadlines=[100.0])
        queue.extend(reqs)
        queue.attempts[12345] = 99  # debris from a request served long ago
        retained, lost = requeue_failed(
            queue, RetryPolicy(), GPUCostModel.calibrated(), reqs, now=0.0
        )
        assert retained == list(reqs)
        assert queue.attempts[12345] == 99  # untouched
