"""Extension bench: robustness of conclusions to cost-model error.

Halves and doubles every calibrated cost constant (±100 % calibration
error) and asserts that the paper-level *conclusions* survive each
perturbation: TCB beats the baselines, slotting speeds up large batches
substantially and still plateaus.  This is the due-diligence check for
the GPU→cost-model substitution documented in DESIGN.md.
"""

from repro.experiments.sensitivity import sensitivity_sweep
from repro.experiments.tables import format_series_table


def test_ext_cost_model_sensitivity(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: sensitivity_sweep(factors=(0.5, 2.0), seeds=(0,)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "ext_sensitivity",
        format_series_table(out, "Extension — cost-model sensitivity (±2× each constant)"),
    )
    n = len(out["perturbation"])
    for i in range(n):
        label = out["perturbation"][i]
        # TCB beats TNB under DAS for every perturbation.
        assert out["fig10_gap"][i] > 1.3, label
        # TCB beats both baselines under FCFS for every perturbation.
        assert out["tcb_wins_fcfs"][i] == 1.0, label
        # Slotting always pays off at batch 32 and never explodes at 20
        # slots (plateau within ±0.7 of the 7-slot speedup).
        assert out["fig14_speedup"][i] > 1.3, label
        assert abs(out["fig14_plateau"][i]) < 0.7, label