"""Fig. 15(c): utility under different batch row lengths L.

Paper result: DAS-TCB stays ≈40% above SJF-TCB and more above the rest
across L ∈ {100, 200, 300}.
"""

from repro.experiments import format_series_table, run_fig15c_row_length


def test_fig15c_row_length(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig15c_row_length((100, 200, 300), horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig15c", format_series_table(out, "Fig. 15c — utility vs row length")
    )

    for i in range(3):
        das = out["DAS-TCB"][i]
        for other in ("SJF-TCB", "FCFS-TCB", "DEF-TCB"):
            assert das > out[other][i]
