"""Extension bench: multi-tenant QoS plane — inertness, overhead, isolation.

Three properties of the tenancy plane (docs/tenancy.md):

1. **Inert by default** — ``tenancy=None`` and an all-default
   single-tenant ``TenancyPlane()`` produce bit-identical ledger and
   trace digests on an untagged workload: the plane must not perturb
   the paper's tenant-blind results.
2. **Single-tenant overhead** — with every request in one tenant class
   (the fast path: one set-build per scheduling decision, then straight
   to the underlying scheduler), the plane costs ≤ 2% wall time over
   the tenancy=None baseline, min-of-repeats.
3. **Noisy-neighbor isolation** — with a batch tenant ramped to 8x its
   token-bucket quota, the premium tenant keeps ≥ 90% of its solo
   on-time rate while the cluster keeps ≥ 85% of the tenant-blind
   aggregate served tokens — isolation without giving up concatenation
   efficiency.
"""

from __future__ import annotations

import time

from repro.config import BatchConfig
from repro.durability.digest import ledger_digest, trace_digest
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_workload
from repro.experiments.tenancy import (
    SMOKE_PREMIUM_MARGIN,
    SMOKE_THROUGHPUT_MARGIN,
    tenancy_point,
)
from repro.obs.recorder import Tracer
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.tenancy import TenancyPlane

BATCH = BatchConfig(num_rows=16, row_length=100)
REPEATS = 15
MAX_SINGLE_TENANT_OVERHEAD = 1.02  # ≤ 2%
SEEDS = (0, 1, 2)


def _run_once(wl, tenancy) -> float:
    sim = ServingSimulator(
        DASScheduler(BATCH), ConcatEngine(BATCH), tenancy=tenancy
    )
    # CPU time, not wall time: the gate is a 2% differential, well
    # under this container's wall-clock scheduling jitter.
    t0 = time.process_time()
    sim.run(wl, horizon=30.0)
    return time.process_time() - t0


def _best_pair() -> tuple[float, float]:
    # One shared pre-generated workload (generation cost must not
    # dilute the ratio), interleaved min-of-repeats: alternating
    # baseline/plane runs shed machine drift, and the best observation
    # per config is the least noise-polluted estimate of the loop's
    # intrinsic cost.  Long deadlines keep the queue deep so the run
    # measures a scheduler doing real work, not expiry bookkeeping.
    wl = make_workload(100.0, horizon=30.0, seed=0, base_slack=12.0).generate()
    _run_once(wl, None)
    _run_once(wl, TenancyPlane())  # warmup: caches, allocator
    base, plane = [], []
    for _ in range(REPEATS):
        base.append(_run_once(wl, None))
        plane.append(_run_once(wl, TenancyPlane()))
    return min(base), min(plane)


def test_ext_tenancy_inert_by_default(benchmark, save_table):
    def measure():
        rows = []
        for seed in SEEDS:
            wl = make_workload(60.0, horizon=8.0, seed=seed).generate()
            digests = []
            for tenancy in (None, TenancyPlane()):
                tr = Tracer()
                sim = ServingSimulator(
                    DASScheduler(BATCH),
                    ConcatEngine(BATCH),
                    trace=tr,
                    tenancy=tenancy,
                )
                m = sim.run(wl, horizon=8.0).metrics
                digests.append((ledger_digest(m), trace_digest(tr)))
            rows.append(
                {
                    "seed": seed,
                    "ledger_match": digests[0][0] == digests[1][0],
                    "trace_match": digests[0][1] == digests[1][1],
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for row in rows:
        assert row["ledger_match"], f"seed {row['seed']}: ledger digest drift"
        assert row["trace_match"], f"seed {row['seed']}: trace digest drift"

    out = {
        "seed": [float(r["seed"]) for r in rows],
        "ledger_match": [float(r["ledger_match"]) for r in rows],
        "trace_match": [float(r["trace_match"]) for r in rows],
    }
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_tenancy_inert",
        format_series_table(
            out, "Extension — tenancy=None vs default plane digest parity"
        ),
    )


def test_ext_tenancy_single_tenant_overhead(benchmark, save_table):
    def measure():
        # Up to five independent measurement blocks, best ratio wins:
        # a 2% differential sits inside this container's minute-scale
        # CPU noise, so one noisy window must not fail the gate — while
        # a real 3%+ regression keeps every window above the budget.
        ratios, times = [], []
        for _ in range(5):
            baseline, plane = _best_pair()
            ratios.append(plane / baseline)
            times.append((baseline, plane))
            if ratios[-1] <= MAX_SINGLE_TENANT_OVERHEAD:
                break
        best = min(range(len(ratios)), key=lambda i: ratios[i])
        baseline, plane = times[best]
        return {
            "config": ["baseline", "single-tenant plane"],
            "cpu_s": [baseline, plane],
            "ratio": [1.0, ratios[best]],
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = out["ratio"][1]
    assert ratio <= MAX_SINGLE_TENANT_OVERHEAD, (
        f"single-tenant tenancy plane costs {100 * (ratio - 1):.2f}% "
        f"(budget {100 * (MAX_SINGLE_TENANT_OVERHEAD - 1):.0f}%)"
    )
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_tenancy_overhead",
        format_series_table(
            out, "Extension — tenancy plane overhead (single tenant ≤ 2%)"
        ),
    )


def test_ext_tenancy_noisy_neighbor(benchmark, save_table):
    def measure():
        return [tenancy_point(seed) for seed in SEEDS]

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)

    for cell in cells:
        assert cell["plane"]["batch_quota_rejected"] > 0, cell
        assert cell["premium_retention"] >= 1.0 - SMOKE_PREMIUM_MARGIN, (
            f"seed {cell['seed']}: premium kept only "
            f"{cell['premium_retention']:.0%} of its solo on-time rate"
        )
        assert cell["throughput_retention"] >= 1.0 - SMOKE_THROUGHPUT_MARGIN, (
            f"seed {cell['seed']}: cluster kept only "
            f"{cell['throughput_retention']:.0%} of tenant-blind tokens"
        )

    out = {
        "seed": [float(c["seed"]) for c in cells],
        "premium_on_time_solo": [
            c["premium_solo"]["on_time_rate"] for c in cells
        ],
        "premium_on_time_mixed": [
            c["plane"]["premium_on_time_rate"] for c in cells
        ],
        "premium_retention": [c["premium_retention"] for c in cells],
        "throughput_retention": [c["throughput_retention"] for c in cells],
        "batch_quota_rejected": [
            float(c["plane"]["batch_quota_rejected"]) for c in cells
        ],
    }
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_tenancy_isolation",
        format_series_table(
            out, "Extension — noisy-neighbor isolation at 8x quota"
        ),
    )
