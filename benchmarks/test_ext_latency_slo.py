"""Extension bench: response-latency percentiles per system.

The paper reports utility/throughput; operators also watch latency
SLOs.  This bench records mean/p95/p99 response latency (finish −
arrival) for DAS-fed TNB/TTB/TCB at a moderate rate, where all systems
still serve most requests, so percentiles are comparable.

Expected: TCB's denser batches drain the queue faster, so its tail
latency is no worse than the baselines' despite serving more requests.
"""

from repro.experiments.serving_sweeps import serving_point
from repro.experiments.tables import format_series_table


def _series():
    out = {"system": [], "served": [], "mean_s": [], "p95_s": [], "p99_s": []}
    for system in ("TNB", "TTB", "TCB"):
        m = serving_point(system, "das", 120.0, horizon=10.0, seeds=(0, 1))
        out["system"].append(system)
        out["served"].append(float(m.num_served))
        out["mean_s"].append(m.mean_latency)
        out["p95_s"].append(m.latency_percentile(95))
        out["p99_s"].append(m.latency_percentile(99))
    return out


def test_ext_latency_slo(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_latency",
        format_series_table(out, "Extension — response-latency percentiles (DAS, 120 req/s)"),
    )
    data = {
        s: (srv, mean, p99)
        for s, srv, mean, p99 in zip(
            out["system"], out["served"], out["mean_s"], out["p99_s"]
        )
    }
    # TCB serves at least as many requests...
    assert data["TCB"][0] >= data["TNB"][0]
    # ...with finite, sane latencies.
    for system, (_, mean, p99) in data.items():
        assert 0.0 < mean <= p99 < 60.0, system
    # TCB's mean latency is competitive (within 1.5× of the best system).
    best_mean = min(v[1] for v in data.values())
    assert data["TCB"][1] < 1.5 * best_mean