"""Extension bench: chaos sweep — serving quality vs injected fault rate.

The paper assumes a healthy engine; this bench probes its system's
robustness.  A seeded :class:`~repro.faults.plan.FaultPlan` injects
batch failures, stragglers, transient OOMs and engine crashes at
increasing total rates, and the serving loop answers with split-batch
retry, bounded deadline-aware requeue and crash recovery.  Checked:

- at fault rate 0 the wrapped engine is a bit-identical passthrough
  (same metrics as the fault-free simulator),
- utility degrades monotonically (within noise) as chaos rises, for
  both DAS and FCFS — no cliff,
- DAS keeps its utility lead over FCFS at every fault rate (deadline
  awareness matters *more* when retries eat slack),
- identical seeds replay identical fault sequences and metrics,
- the conservation invariant holds on every run (asserted inside the
  serving loop itself).
"""

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.fault_tolerance import (
    FAULT_RATES,
    fault_point,
    run_fault_tolerance,
)
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.experiments.tables import format_series_table
from repro.faults import FaultConfig, FaultPlan
from repro.serving.simulator import ServingSimulator

SEEDS = (0, 1)


def _series():
    return run_fault_tolerance(seeds=SEEDS)


def _summary_without_wallclock(metrics):
    s = metrics.summary()
    s.pop("sched_overhead")  # wall-clock scheduler time, run-dependent
    return s


def test_ext_fault_tolerance(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_fault_tolerance",
        format_series_table(out, "Extension — serving under injected faults"),
    )
    # Healthy baseline: no fault ever fires, all fault counters are zero.
    for policy in ("DAS", "FCFS"):
        for counter in ("abandoned", "retries", "failed", "downtime"):
            assert out[f"{policy}_{counter}"][0] == 0.0
    # Graceful degradation: utility falls monotonically with the fault
    # rate (2% headroom for seed noise), but never collapses outright.
    for policy in ("DAS", "FCFS"):
        u = out[f"{policy}_utility"]
        for a, b in zip(u, u[1:]):
            assert b <= a * 1.02
        assert u[-1] > 0.25 * u[0]
    # Deadline awareness survives chaos: DAS beats FCFS at every rate.
    for i in range(len(FAULT_RATES)):
        assert out["DAS_utility"][i] > out["FCFS_utility"][i]
    # Faults actually bit at the higher rates.
    assert out["DAS_retries"][-1] > 0
    assert out["DAS_abandoned"][-1] > 0


def test_rate_zero_matches_fault_free_simulator():
    batch = BatchConfig(num_rows=16, row_length=100)
    wl = make_workload(150.0, horizon=8.0, seed=0)
    plain = ServingSimulator(
        make_scheduler("das", batch), ConcatEngine(batch)
    ).run(wl).metrics
    chaos_zero = fault_point("das", 0.0, seed=0)
    assert _summary_without_wallclock(chaos_zero) == _summary_without_wallclock(plain)
    assert chaos_zero.finish_times == plain.finish_times


def test_identical_seeds_replay_identical_chaos():
    a = fault_point("das", 0.3, seed=0)
    b = fault_point("das", 0.3, seed=0)
    assert _summary_without_wallclock(a) == _summary_without_wallclock(b)
    assert a.finish_times == b.finish_times
    # And the underlying plan replays event-for-event.
    cfg = FaultConfig.chaos(0.3)
    assert FaultPlan(cfg, seed=1000).events(64) == FaultPlan(cfg, seed=1000).events(64)
