"""Extension bench: tracing layer overhead when disabled.

The repro.obs recorder is wired into every serving loop behind an
``if tr.enabled:`` guard, with ``trace=None`` falling back to the
module-level no-op recorder.  The contract is that an *untraced* run
pays at most one attribute lookup per emission site — measured here as
a ≤ 2% wall-time overhead of the guarded loop (``Tracer(enabled=False)``,
every guard evaluated and skipped) against the ``trace=None`` baseline
(the no-op recorder path, identical guards), min-of-repeats to shed
scheduler noise.  Full tracing cost is reported alongside for scale but
not bounded — tracing is opt-in.
"""

from __future__ import annotations

import time

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_workload
from repro.obs.recorder import Tracer
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator

BATCH = BatchConfig(num_rows=16, row_length=100)
REPEATS = 7
MAX_DISABLED_OVERHEAD = 1.02  # ≤ 2%


def _run_once(trace) -> float:
    wl = make_workload(150.0, horizon=6.0, seed=0)
    sim = ServingSimulator(
        DASScheduler(BATCH), ConcatEngine(BATCH), trace=trace
    )
    t0 = time.perf_counter()
    sim.run(wl)
    return time.perf_counter() - t0


def _best(trace_factory) -> float:
    # Min-of-repeats: the best observation is the least noise-polluted
    # estimate of the loop's intrinsic cost.
    return min(_run_once(trace_factory()) for _ in range(REPEATS))


def test_ext_obs_overhead(benchmark, save_table):
    def measure():
        baseline = _best(lambda: None)
        disabled = _best(lambda: Tracer(enabled=False))
        enabled = _best(lambda: Tracer())
        return {
            "config": ["baseline", "disabled", "enabled"],
            "wall_s": [baseline, disabled, enabled],
            "ratio": [1.0, disabled / baseline, enabled / baseline],
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = out["ratio"][1]
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {100 * (ratio - 1):.2f}% "
        f"(budget {100 * (MAX_DISABLED_OVERHEAD - 1):.0f}%)"
    )
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_obs_overhead",
        format_series_table(out, "Extension — tracing overhead (disabled ≤ 2%)"),
    )
