"""Fig. 12: FCFS throughput vs rate, length spread σ=100.

Paper result: with higher length variance TurboBatching struggles to
find similar-length requests, so TCB's lead over TTB grows (1.52× →
1.72× at the saturation knee).
"""

from repro.experiments import format_series_table, run_fig11_fig12_fcfs
from repro.experiments.serving_sweeps import PAPER_RATES_FCFS


def test_fig12_fcfs_spread100(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig11_fig12_fcfs(100.0, PAPER_RATES_FCFS, horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig12", format_series_table(out, "Fig. 12 — FCFS throughput vs rate (σ=100)")
    )

    # TCB still on top at saturation.
    i = out["rate"].index(1000)
    assert out["FCFS-TCB"][i] > out["FCFS-TTB"][i]
    assert out["FCFS-TCB"][i] > out["FCFS-TNB"][i]

    # Variance effect at the knee (120 req/s): the TCB/TTB gap under
    # σ=100 exceeds the gap under σ=20 (paper: 1.52× → 1.72×).
    lo = run_fig11_fig12_fcfs(20.0, (120,), horizon=10.0, seeds=(0, 1))
    i_knee = out["rate"].index(120)
    gap_hi = out["FCFS-TCB"][i_knee] / out["FCFS-TTB"][i_knee]
    gap_lo = lo["FCFS-TCB"][0] / lo["FCFS-TTB"][0]
    assert gap_hi > gap_lo
