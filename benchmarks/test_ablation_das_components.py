"""Ablation: DAS's two ingredients measured in isolation.

Algorithm 1 mixes a utility-dominant prefix with a deadline-aware set.
Running each ingredient alone (concat-aware SJF ≈ utility part,
concat-aware DEF ≈ deadline part) on a deadline-tight workload shows
where DAS's value sits in this simulator: the utility ordering carries
essentially all of the objective (greedy-by-utility is per-slot optimal
for v = 1/l), the deadline set is cheap insurance that never costs more
than ~2 %, and pure deadline ordering collapses utility — matching the
paper's argument for *mixing* rather than ordering by deadlines alone.
"""

from repro.experiments.ablations import das_components_ablation
from repro.experiments.tables import format_series_table


def test_ablation_das_components(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: das_components_ablation(seeds=(0, 1)), rounds=1, iterations=1
    )
    save_table(
        "ablation_das_components",
        format_series_table(out, "Ablation — DAS ingredient decomposition"),
    )
    util = dict(zip(out["policy"], out["utility"]))
    miss = dict(zip(out["policy"], out["miss_pct"]))
    # Full DAS stays within 2% of the pure utility ordering...
    assert util["DAS"] > 0.98 * util["utility-only"]
    # ...and far above pure deadline ordering.
    assert util["DAS"] > 1.5 * util["deadline-only"]
    # The deadline ingredient never blows up the miss rate.
    assert miss["DAS"] < miss["utility-only"] + 2.0
