"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure's series through the shared
harnesses in :mod:`repro.experiments`, times the run via
pytest-benchmark, prints the series table, and saves it under
``benchmarks/results/`` so EXPERIMENTS.md can reference the exact rows.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
