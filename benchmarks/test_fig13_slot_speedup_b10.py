"""Fig. 13: slotted-over-pure speedup, batch size 10, row length 400.

Paper result: at most ≈1.18× speedup; gains flatten within a few slots
(the batch is too small to keep the GPU compute-bound).  Our cost model
compresses this less aggressively (≈1.6× peak) but reproduces the
ordering vs Fig. 14 and the plateau — see EXPERIMENTS.md.
"""

from repro.experiments import format_series_table, run_fig13_fig14_slot_speedup
from repro.experiments.slot_speedup import PAPER_SLOT_COUNTS


def test_fig13_slot_speedup_batch10(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig13_fig14_slot_speedup(10, 400, PAPER_SLOT_COUNTS),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig13", format_series_table(out, "Fig. 13 — slotted speedup (batch 10, len 400)")
    )

    assert out["speedup"][0] == 1.0
    peak = max(out["speedup"])
    assert 1.0 < peak < 2.0  # modest gains at batch 10
    # No big growth from 7 to 20 slots.
    i7, i20 = out["slots"].index(7), out["slots"].index(20)
    assert out["speedup"][i20] <= out["speedup"][i7] + 0.15
