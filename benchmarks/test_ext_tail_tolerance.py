"""Extension bench: tail-tolerance plane — hedged dispatch vs stragglers.

Two properties of the tail-tolerance plane (docs/tail_tolerance.md):

1. **Hedging tail cut** — against a gray-failing replica whose batches
   straggle at 4–8x their predicted latency, hedged dispatch must beat
   the no-hedging baseline's p99 batch latency by at least 25% at equal
   offered load, per seed, with the terminal ledger conservation-exact
   (a hedge can shift *where* a batch completes, never *whether* its
   requests are counted once).
2. **Severity sweep** — the improvement holds across straggler
   multiplier ranges; the sweep table lands in ``benchmarks/results``.
"""

from __future__ import annotations

from repro.experiments.tail_tolerance import run_tail, tail_point

MIN_P99_IMPROVEMENT = 0.25  # the ISSUE 9 acceptance margin
SEEDS = (0, 1, 2)


def test_ext_tail_hedging_beats_p99_margin(benchmark, save_table):
    def measure():
        return [tail_point(seed) for seed in SEEDS]

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)

    for cell in cells:
        assert cell["hedged"]["hedges"] > 0, cell
        assert cell["improvement"] >= MIN_P99_IMPROVEMENT, (
            f"seed {cell['seed']}: hedging improved p99 by only "
            f"{cell['improvement']:.0%} "
            f"({cell['baseline']['p99']:.3f} -> {cell['hedged']['p99']:.3f}), "
            f"margin {MIN_P99_IMPROVEMENT:.0%}"
        )

    out = {
        "seed": [float(c["seed"]) for c in cells],
        "p99_baseline": [c["baseline"]["p99"] for c in cells],
        "p99_hedged": [c["hedged"]["p99"] for c in cells],
        "improvement": [c["improvement"] for c in cells],
        "hedges": [float(c["hedged"]["hedges"]) for c in cells],
        "hedge_wins": [float(c["hedged"]["hedge_wins"]) for c in cells],
    }
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_tail_hedging",
        format_series_table(
            out, "Extension — hedged dispatch p99 vs no-hedging baseline"
        ),
    )


def test_ext_tail_severity_sweep(benchmark, save_table):
    def measure():
        return run_tail(seeds=(0, 1))

    out = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Hedging clears the margin at the reference severity.  At the
    # extreme end the *baseline* tail is already clean — detection and
    # quarantine park a severely straggling replica on their own — so
    # the requirement there is only that hedging never hurts
    # materially.
    assert out["improvement"][1] >= MIN_P99_IMPROVEMENT, out["improvement"]
    assert all(i >= -0.05 for i in out["improvement"]), out["improvement"]
    assert all(h > 0 for h in out["hedges"]), out["hedges"]

    from repro.experiments.tables import format_series_table

    save_table(
        "ext_tail_severity",
        format_series_table(
            out, "Extension — hedging improvement vs straggler severity"
        ),
    )
