"""Extension bench: length fairness of the schedulers.

The 1/l utility makes short requests first-class citizens; this bench
quantifies the flip side — per-length-quantile service rates and Jain's
index for DAS vs FCFS at overload.  Expected: DAS serves nearly all
short requests and starves the long tail (low Jain index); FCFS is
blinder to length (higher Jain index) but serves far fewer requests
overall.  A deployment picks its point on that trade-off.
"""

from repro.analysis.fairness import jain_index, service_rate_by_length
from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_workload
from repro.experiments.tables import format_series_table
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator


def _series():
    batch = BatchConfig(num_rows=16, row_length=100)
    out = {"policy": [], "bucket_max_len": [], "service_rate": []}
    summary = {"policy": [], "jain": [], "served": []}
    for name, sched in (
        ("DAS", DASScheduler(batch, SchedulerConfig())),
        ("FCFS", FCFSScheduler(batch)),
    ):
        m = (
            ServingSimulator(sched, ConcatEngine(batch))
            .run(make_workload(600.0, horizon=8.0, seed=0))
            .metrics
        )
        rates = service_rate_by_length(m, num_buckets=5)
        for mx, r in zip(rates["max_length"], rates["service_rate"]):
            out["policy"].append(name)
            out["bucket_max_len"].append(mx)
            out["service_rate"].append(r)
        summary["policy"].append(name)
        summary["jain"].append(jain_index(rates["service_rate"]))
        summary["served"].append(float(m.num_served))
    return out, summary


def test_ext_length_fairness(benchmark, save_table):
    detail, summary = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_fairness",
        format_series_table(detail, "Extension — service rate by length bucket")
        + "\n\n"
        + format_series_table(summary, "Jain index & served counts"),
    )
    das = {
        detail["bucket_max_len"][i]: detail["service_rate"][i]
        for i in range(len(detail["policy"]))
        if detail["policy"][i] == "DAS"
    }
    # DAS: short buckets nearly fully served, long tail starved.
    rates = list(das.values())
    assert rates[0] > 0.9
    assert rates[-1] < rates[0]
    # Trade-off: FCFS is fairer per Jain, DAS serves more in total.
    jain = dict(zip(summary["policy"], summary["jain"]))
    served = dict(zip(summary["policy"], summary["served"]))
    assert served["DAS"] > served["FCFS"]
    assert jain["FCFS"] > 0.0
