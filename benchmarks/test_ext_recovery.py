"""Extension bench: durability plane — restart cost and disabled overhead.

Two properties of the crash-consistent serving plane (docs/recovery.md):

1. **Checkpoint-interval sweep** — `recovery_point` kills the scheduler
   mid-run, restores from the journal and finishes.  Sparser snapshots
   mean fewer checkpoint captures but a longer committed-record replay
   at restore; the terminal ledger must be bit-identical to the
   uninterrupted run's (`match == 1.0`) at *every* interval — restart
   cost is tunable, correctness is not.
2. **Disabled-path overhead gate** — mirroring the obs overhead gate:
   a serving run with ``durability=None`` (every ``if dur is not
   None:`` guard evaluated and skipped) stays within 2% wall time of
   the same loop built without the keyword at all, min-of-repeats.
   The journaling cost of an armed plane is reported alongside for
   scale but not bounded — durability is opt-in.
"""

from __future__ import annotations

import time

from repro.config import BatchConfig
from repro.durability import DurabilityConfig, DurabilityPlane
from repro.engine.concat import ConcatEngine
from repro.experiments.recovery import run_recovery
from repro.experiments.serving_sweeps import make_workload
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator

BATCH = BatchConfig(num_rows=16, row_length=100)
REPEATS = 7
MAX_DISABLED_OVERHEAD = 1.02  # ≤ 2%


def test_ext_recovery_checkpoint_sweep(benchmark, save_table):
    def measure():
        return run_recovery(intervals=(1, 2, 5, 10, 0), seeds=(0, 1))

    out = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert all(m == 1.0 for m in out["match"]), (
        "crash/restore ledger diverged from the uninterrupted run: "
        f"match={out['match']}"
    )
    # Sparser checkpoints -> monotonically fewer snapshots; the
    # genesis-only journal (interval 0) replays at least as much as the
    # snapshot-every-step one.
    snaps = out["snapshots"]
    assert all(a >= b for a, b in zip(snaps, snaps[1:])), snaps
    assert out["replayed"][-1] >= out["replayed"][0], out["replayed"]

    from repro.experiments.tables import format_series_table

    save_table(
        "ext_recovery",
        format_series_table(
            out, "Extension — restart cost vs checkpoint interval"
        ),
    )


def _run_once(**kwargs) -> float:
    # ~100ms of serving per observation so a 2% budget is well above
    # timer jitter.
    wl = make_workload(300.0, horizon=10.0, seed=0)
    sim = ServingSimulator(DASScheduler(BATCH), ConcatEngine(BATCH), **kwargs)
    t0 = time.perf_counter()
    sim.run(wl)
    return time.perf_counter() - t0


def _best_interleaved(*factories) -> list[float]:
    # Min-of-repeats, one observation of each config per round: the
    # best observation is the least noise-polluted estimate of the
    # loop's intrinsic cost, and interleaving cancels slow drift
    # (thermal / frequency scaling) that back-to-back blocks pick up.
    best = [float("inf")] * len(factories)
    for _ in range(REPEATS):
        for i, factory in enumerate(factories):
            best[i] = min(best[i], _run_once(**factory()))
    return best


def test_ext_recovery_disabled_overhead(benchmark, save_table):
    def measure():
        baseline, disabled, enabled = _best_interleaved(
            dict,
            lambda: {"durability": None},
            lambda: {
                "durability": DurabilityPlane(
                    DurabilityConfig(checkpoint_every=5)
                )
            },
        )
        return {
            "config": ["baseline", "disabled", "enabled"],
            "wall_s": [baseline, disabled, enabled],
            "ratio": [1.0, disabled / baseline, enabled / baseline],
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = out["ratio"][1]
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled durability costs {100 * (ratio - 1):.2f}% "
        f"(budget {100 * (MAX_DISABLED_OVERHEAD - 1):.0f}%)"
    )
    from repro.experiments.tables import format_series_table

    save_table(
        "ext_recovery_overhead",
        format_series_table(
            out, "Extension — durability overhead (disabled ≤ 2%)"
        ),
    )
