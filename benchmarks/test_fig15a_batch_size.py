"""Fig. 15(a): utility under different batch sizes, DAS vs SJF/FCFS/DEF.

Paper result: utility increases with batch size for every policy and
DAS-TCB outperforms the others at all batch sizes.
"""

from repro.experiments import format_series_table, run_fig15a_batch_size


def test_fig15a_batch_size(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig15a_batch_size((5, 10, 16), horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig15a", format_series_table(out, "Fig. 15a — utility vs batch size")
    )

    for i in range(3):
        das = out["DAS-TCB"][i]
        assert das > out["SJF-TCB"][i] > out["FCFS-TCB"][i] * 0.9
        assert das > out["DEF-TCB"][i]
    # Larger batches accommodate more requests → more utility (paper).
    assert out["DAS-TCB"][2] > out["DAS-TCB"][0]
    assert out["SJF-TCB"][2] > out["SJF-TCB"][0]
