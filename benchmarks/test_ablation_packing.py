"""Ablation: row-packing policy (in-order vs first-fit vs BFD).

Algorithm 1 implies in-order concatenation (each row is built from its
own sorted candidate sequence).  This bench quantifies what stronger
bin-packing would buy: first-fit backfills earlier rows; best-fit-
decreasing approaches the bin-packing optimum.
"""

from repro.experiments.ablations import packing_policy_ablation
from repro.experiments.tables import format_series_table


def test_ablation_packing_policies(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: packing_policy_ablation(seeds=(0, 1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "ablation_packing",
        format_series_table(out, "Ablation — packing policy (padding / rejections)"),
    )
    pol = out["policy"]
    pad = dict(zip(pol, out["padding_pct"]))
    # First-fit strictly reduces padding vs in-order; BFD reduces it further.
    assert pad["first_fit"] <= pad["in_order"]
    assert pad["best_fit_decreasing"] <= pad["first_fit"] + 1e-9
