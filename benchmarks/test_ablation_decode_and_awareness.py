"""Ablations: KV-cached decoding and concat-awareness decomposition.

- ``incremental_decode_ablation`` times the real NumPy model with and
  without KV caches — the cached path must win and widen with decode
  length (it avoids the O(steps²) recompute).
- ``concat_aware_ablation`` decomposes DAS's Fig. 15 advantage: most of
  it comes from *concat-awareness* (filling rows), which classic
  schedulers lack; with awareness granted, SJF's pure-utility ordering
  is competitive — DAS adds the deadline guarantee on top.
"""

from repro.experiments.ablations import (
    concat_aware_ablation,
    incremental_decode_ablation,
)
from repro.experiments.tables import format_series_table


def test_ablation_incremental_decode(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: incremental_decode_ablation((4, 8, 16, 32)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "ablation_incremental_decode",
        format_series_table(out, "Ablation — KV-cached vs recompute decoding"),
    )
    speedups = out["speedup"]
    # KV caching wins at longer decodes, and the advantage grows.
    assert speedups[-1] > 1.5
    assert speedups[-1] > speedups[0]


def test_ablation_concat_awareness(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: concat_aware_ablation(seeds=(0, 1)), rounds=1, iterations=1
    )
    save_table(
        "ablation_concat_aware",
        format_series_table(out, "Ablation — concat-awareness decomposition"),
    )
    util = dict(zip(out["scheduler"], out["utility"]))
    # Concat-awareness is worth several× on its own ...
    assert util["SJF concat-aware"] > 3 * util["SJF classic"]
    # ... and DAS is competitive with the awareness-granted SJF (its
    # extra value is the deadline guarantee, not raw utility).
    assert util["DAS (concat-aware)"] > 0.9 * util["SJF concat-aware"]
