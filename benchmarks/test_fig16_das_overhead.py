"""Fig. 16: DAS running time as a fraction of batch inference time.

Paper result: the ratio grows with arrival rate (more requests to sort
and schedule) but stays ≈2% even at 400 req/s — DAS is cheap enough to
run on the critical path.  Our DAS runtime is *measured* host wall-clock
(the algorithm is identical); only the denominator comes from the cost
model.
"""

from repro.experiments import format_series_table, run_fig16_overhead
from repro.experiments.overhead import PAPER_OVERHEAD_RATES


def test_fig16_das_overhead(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig16_overhead(PAPER_OVERHEAD_RATES, horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig16", format_series_table(out, "Fig. 16 — DAS overhead (% of batch time)")
    )

    pct = out["overhead_percent"]
    # Grows with rate.
    assert pct[-1] > pct[0]
    # Small in absolute terms (paper: ~2% at 400 req/s; allow headroom
    # since Python sorting is slower than theirs).
    assert pct[-1] < 10.0
