"""Ablations: slot-size policy, early memory cleaning, η/q trade-off.

Three of the design choices DESIGN.md calls out, measured end to end:

- Algorithm 2's adaptive slot size vs fixed slot counts (serving utility),
- §4.2.2's early memory cleaning savings as slot granularity varies,
- Theorem 5.1's η/q knobs vs realised utility.
"""

from repro.experiments.ablations import (
    early_cleaning_ablation,
    eta_q_ablation,
    slot_policy_ablation,
)
from repro.experiments.tables import format_series_table


def test_ablation_slot_policy(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: slot_policy_ablation(seeds=(0, 1)), rounds=1, iterations=1
    )
    save_table(
        "ablation_slot_policy",
        format_series_table(out, "Ablation — slot-size policy (serving utility)"),
    )
    util = dict(zip(out["policy"], out["utility"]))
    # The adaptive policy must stay within 15% of the best fixed choice:
    # it trades a little utility for never rejecting utility-dominant
    # requests at ANY workload, without a tuning pass.
    best_fixed = max(v for k, v in util.items() if k.startswith("fixed"))
    assert util["adaptive (Alg. 2)"] > 0.85 * best_fixed


def test_ablation_early_cleaning(benchmark, save_table):
    out = benchmark.pedantic(early_cleaning_ablation, rounds=1, iterations=1)
    save_table(
        "ablation_early_cleaning",
        format_series_table(out, "Ablation — early memory cleaning savings"),
    )
    savings = out["savings_pct"]
    # Finer slots free earlier: savings grow with slot count (§4.2.2).
    assert savings[-1] > savings[0]
    assert all(s >= 0 for s in savings)


def test_ablation_eta_q(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: eta_q_ablation(seeds=(0, 1)), rounds=1, iterations=1
    )
    save_table(
        "ablation_eta_q",
        format_series_table(out, "Ablation — DAS η sweep (q = 1 − η)"),
    )
    # The theoretical bound peaks at η = q = ½ ...
    bounds = dict(zip(out["eta"], out["bound"]))
    assert bounds[0.5] == max(bounds.values())
    # ... while realised utility is fairly flat (DAS is robust to η).
    u = out["utility"]
    assert max(u) < 1.25 * min(u)
