"""Fig. 15(b): utility under different length variances (batch size 16).

Paper result: DAS-TCB shows an obvious improvement over SJF/FCFS/DEF at
every variance — it is aware of variable-length requests.
"""

from repro.experiments import format_series_table, run_fig15b_variance


def test_fig15b_variance(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig15b_variance((10, 50, 100), horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig15b", format_series_table(out, "Fig. 15b — utility vs length spread")
    )

    for i in range(3):
        das = out["DAS-TCB"][i]
        for other in ("SJF-TCB", "FCFS-TCB", "DEF-TCB"):
            assert das > out[other][i]
