"""Extension benches: multi-engine scale-out and DAS-vs-clairvoyant gap.

Neither appears in the paper; both probe its system beyond the published
evaluation:

- **cluster scaling** — throughput of 1/2/4 shared-queue TCB engines
  under overload (near-linear until the offered load is absorbed),
- **oracle gap** — DAS's realised utility against a clairvoyant
  LP-planned schedule on the same trace (how much is lost to being
  online, versus the loose ⅕ worst-case bound).
"""

import numpy as np

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.das import DASScheduler
from repro.scheduling.oracle import OracleScheduler
from repro.serving.cluster import ClusterSimulator
from repro.types import Request
from repro.experiments.serving_sweeps import make_workload


def _cluster_series():
    batch = BatchConfig(num_rows=16, row_length=100)
    sizes = (1, 2, 4)
    thr, tok = [], []
    for g in sizes:
        total = 0.0
        tokens = 0.0
        for seed in (0, 1):
            sim = ClusterSimulator(
                DASScheduler(batch, SchedulerConfig()),
                [ConcatEngine(batch) for _ in range(g)],
            )
            m = sim.run(make_workload(2000.0, horizon=8.0, seed=seed)).metrics
            total += m.throughput
            tokens += sum(r.length for r in m.served) / m.horizon
        thr.append(total / 2)
        tok.append(tokens / 2)
    return {"engines": list(sizes), "resp_per_s": thr, "tokens_per_s": tok}


def test_ext_cluster_scaling(benchmark, save_table):
    out = benchmark.pedantic(_cluster_series, rounds=1, iterations=1)
    save_table(
        "ext_cluster",
        format_series_table(out, "Extension — shared-queue cluster scaling"),
    )
    tok = out["tokens_per_s"]
    # Token throughput scales near-linearly with engines; request
    # throughput is concave because DAS serves shortest-first and extra
    # capacity digs into longer requests.
    assert tok[1] > 1.6 * tok[0]
    assert tok[2] > 1.4 * tok[1]
    assert out["resp_per_s"][2] > out["resp_per_s"][0]


def _oracle_series():
    batch = BatchConfig(num_rows=2, row_length=10)
    slots = [0.25 + t for t in range(4)]
    ratios = []
    for seed in range(15):
        rng = np.random.default_rng(seed)
        reqs = []
        for i in range(14):
            a = float(rng.uniform(0, 3.5))
            reqs.append(
                Request(
                    request_id=i,
                    length=int(rng.integers(1, 9)),
                    arrival=a,
                    deadline=a + float(rng.uniform(0.5, 2.5)),
                )
            )

        def replay(sched):
            served, total = set(), 0.0
            for t in slots:
                waiting = [
                    r for r in reqs if r.request_id not in served and r.is_available(t)
                ]
                for r in sched.select(waiting, t).selected():
                    served.add(r.request_id)
                    total += r.utility
            return total

        das = replay(DASScheduler(batch, SchedulerConfig()))
        oracle = replay(OracleScheduler(batch, reqs, slots))
        if oracle > 0:
            ratios.append(das / oracle)
    return {
        "instances": [len(ratios)],
        "das_over_oracle_mean": [float(np.mean(ratios))],
        "das_over_oracle_min": [float(np.min(ratios))],
        "theorem_bound": [SchedulerConfig().competitive_ratio],
    }


def test_ext_oracle_gap(benchmark, save_table):
    out = benchmark.pedantic(_oracle_series, rounds=1, iterations=1)
    save_table(
        "ext_oracle",
        format_series_table(out, "Extension — DAS vs clairvoyant oracle"),
    )
    # Online DAS should land far above the ⅕ worst-case bound in practice.
    assert out["das_over_oracle_min"][0] > out["theorem_bound"][0]
    assert out["das_over_oracle_mean"][0] > 0.7
