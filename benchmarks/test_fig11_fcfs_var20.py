"""Fig. 11: FCFS throughput vs rate, length spread σ=20.

Paper result: with scheduling influence removed (plain FCFS), the
inference-engine gap shows directly — max TCB/TNB ≈3.33×, TCB/TTB
≈1.52×; all systems saturate earlier than under DAS (Fig. 10).
"""

from repro.experiments import format_series_table, run_fig11_fig12_fcfs
from repro.experiments.serving_sweeps import PAPER_RATES_FCFS


def test_fig11_fcfs_spread20(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig11_fig12_fcfs(20.0, PAPER_RATES_FCFS, horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig11", format_series_table(out, "Fig. 11 — FCFS throughput vs rate (σ=20)")
    )

    i = out["rate"].index(1000)
    assert out["FCFS-TCB"][i] > out["FCFS-TTB"][i] > out["FCFS-TNB"][i]
    # Engine-only gap over TNB ≈3.3× in the paper; accept 2–5×.
    ratio = out["FCFS-TCB"][i] / out["FCFS-TNB"][i]
    assert 2.0 < ratio < 5.0
    # FCFS saturates earlier than DAS did (≤140 vs ≥250 req/s): the
    # throughput at 250 is already ≈ the throughput at 1500.
    i250 = out["rate"].index(250)
    assert out["FCFS-TCB"][-1] < out["FCFS-TCB"][i250] * 1.35
