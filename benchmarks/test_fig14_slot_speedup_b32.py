"""Fig. 14: slotted-over-pure speedup, batch size 32, row length 400.

Paper result: up to ≈2.31× speedup at 7 slots, then no big growth —
slotting removes more redundancy at larger batch sizes.
"""

from repro.experiments import format_series_table, run_fig13_fig14_slot_speedup
from repro.experiments.slot_speedup import PAPER_SLOT_COUNTS


def test_fig14_slot_speedup_batch32(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig13_fig14_slot_speedup(32, 400, PAPER_SLOT_COUNTS),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig14", format_series_table(out, "Fig. 14 — slotted speedup (batch 32, len 400)")
    )

    assert out["speedup"][0] == 1.0
    i7, i20 = out["slots"].index(7), out["slots"].index(20)
    # Paper: 2.31× at 7 slots; accept the 2–2.6 neighbourhood.
    assert 2.0 < out["speedup"][i7] < 2.6
    # Plateau after 7 slots.
    assert abs(out["speedup"][i20] - out["speedup"][i7]) < 0.3
    # Larger batch gains more than Fig. 13's batch 10.
    b10 = run_fig13_fig14_slot_speedup(10, 400, (1, 7))
    assert out["speedup"][i7] > b10["speedup"][1]
