"""Extension bench: autoscaling vs fixed fleets under bursty traffic.

Compares, on the same bursty workload, (a) a fixed 1-engine cluster,
(b) a fixed max-size cluster, and (c) the watermark autoscaler — on
served requests and on *engine-seconds consumed* (the cost axis).  The
autoscaler should approach the big fleet's service at a fraction of its
engine-time when traffic is bursty.
"""

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.das import DASScheduler
from repro.serving.autoscale import AutoscalingSimulator
from repro.serving.cluster import ClusterSimulator
from repro.workload.burst import BurstyWorkload
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution

BATCH = BatchConfig(num_rows=16, row_length=100)
MAX_ENGINES = 4


def _workload(seed: int) -> BurstyWorkload:
    return BurstyWorkload(
        rate=500.0,
        burst_factor=6.0,
        mean_state_duration=1.0,
        lengths=LengthDistribution(family="normal", mean=20, spread=20, low=3, high=100),
        deadlines=DeadlineModel(base_slack=2.0, jitter=1.0),
        horizon=8.0,
        seed=seed,
    )


def _series():
    out = {"fleet": [], "served": [], "engine_seconds": [], "peak_engines": []}

    def record(name, served, engine_s, peak):
        out["fleet"].append(name)
        out["served"].append(served)
        out["engine_seconds"].append(engine_s)
        out["peak_engines"].append(peak)

    for g, name in ((1, "fixed-1"), (MAX_ENGINES, f"fixed-{MAX_ENGINES}")):
        served = engine_s = 0.0
        for seed in (0, 1):
            m = ClusterSimulator(
                DASScheduler(BATCH, SchedulerConfig()),
                [ConcatEngine(BATCH) for _ in range(g)],
            ).run(_workload(seed)).metrics
            served += m.num_served / 2
            engine_s += m.total_engine_time / 2
        record(name, served, engine_s, g)

    served = engine_s = peak = 0.0
    for seed in (0, 1):
        sim = AutoscalingSimulator(
            DASScheduler(BATCH, SchedulerConfig()),
            lambda: ConcatEngine(BATCH),
            min_engines=1,
            max_engines=MAX_ENGINES,
            high_watermark=1500.0,
            low_watermark=200.0,
            startup_delay=0.3,
        )
        m = sim.run(_workload(seed))
        served += m.num_served / 2
        engine_s += m.total_engine_time / 2
        peak = max(peak, sim.peak_engines)
    record("autoscale", served, engine_s, peak)
    return out


def test_ext_autoscale(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_autoscale",
        format_series_table(out, "Extension — autoscaling vs fixed fleets (bursty)"),
    )
    served = dict(zip(out["fleet"], out["served"]))
    peak = dict(zip(out["fleet"], out["peak_engines"]))
    # Autoscaling serves more than the single engine...
    assert served["autoscale"] > served["fixed-1"]
    # ...reaches a decent fraction of the full fleet...
    assert served["autoscale"] > 0.6 * served[f"fixed-{MAX_ENGINES}"]
    # ...and actually scaled beyond one engine to do it.
    assert peak["autoscale"] > 1