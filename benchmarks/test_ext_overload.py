"""Extension bench: goodput vs offered load, overload plane off vs on.

The paper's sweeps (Figs. 9–12) stop where the system saturates; this
bench pushes past it, to 2–4× single-engine capacity, and measures
*on-time goodput* — utility summed over responses that finished by
their deadline.  Checked:

- with the overload plane disabled the serving loop is bit-identical
  to the pre-overload loop (and an inert controller changes nothing),
- without shedding, FCFS goodput collapses under sustained overload;
  with the bounded queue + shedding + degradation it plateaus instead,
- at every rate ≥ 2× capacity, shedding beats no-shedding,
- at 3× capacity goodput stays within 20% of its peak (the ISSUE's
  acceptance bar),
- a chaos run with the breaker enabled keeps the conservation ledger
  and trace reconciliation exact, and emits typed overload spans.
"""

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.experiments.overload import (
    OVERLOAD_RATES,
    default_overload_config,
    overload_point,
    run_overload,
)
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.experiments.tables import format_series_table
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.obs import Tracer
from repro.overload import OverloadConfig, OverloadController
from repro.serving.simulator import ServingSimulator

SEEDS = (0, 1)
BATCH = BatchConfig(num_rows=16, row_length=100)


def _series():
    return run_overload(seeds=SEEDS)


def _summary_without_wallclock(metrics):
    s = metrics.summary()
    s.pop("sched_overhead")  # wall-clock scheduler time, run-dependent
    return s


def test_ext_overload(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_overload",
        format_series_table(
            out, "Extension — goodput vs offered load (shedding OFF / ON)"
        ),
    )
    rates = out["rate"]
    off, on = out["OFF_goodput"], out["ON_goodput"]
    # Below capacity the plane is dormant: nothing shed, same goodput.
    assert out["ON_shed"][0] == 0.0
    assert on[0] == off[0]
    # Collapse without overload management: past saturation, goodput
    # falls to less than half its sub-capacity peak.
    assert max(off[2:]) < 0.55 * max(off[:2])
    # With the overload plane it plateaus: every rate >= 2x capacity
    # beats the unmanaged loop...
    for i, rate in enumerate(rates):
        if rate >= 2 * rates[1]:
            assert on[i] > off[i], f"shedding must win at {rate} req/s"
    # ...and 3x capacity stays within 20% of the sweep's peak.
    i3 = rates.index(3 * rates[1])
    assert on[i3] >= 0.8 * max(on), (
        f"goodput at 3x capacity fell to {on[i3]:.1f} "
        f"vs peak {max(on):.1f}"
    )
    # No outright collapse even at 4x.
    assert on[-1] > 0.6 * max(on)
    # The plateau is bought with explicit, ledgered sheds.
    assert out["ON_shed"][-1] > 0.0


def test_disabled_plane_is_bit_identical():
    wl = make_workload(150.0, horizon=8.0, seed=0)
    plain = ServingSimulator(
        make_scheduler("fcfs", BATCH),
        ConcatEngine(BATCH, cost_model=GPUCostModel.calibrated()),
    ).run(wl).metrics
    off = overload_point(150.0, shedding=False, horizon=8.0, seed=0)
    assert _summary_without_wallclock(off) == _summary_without_wallclock(plain)
    assert off.finish_times == plain.finish_times
    # An attached-but-inert controller must also change nothing.
    inert = ServingSimulator(
        make_scheduler("fcfs", BATCH),
        ConcatEngine(BATCH, cost_model=GPUCostModel.calibrated()),
        overload=OverloadController(OverloadConfig()),
    ).run(wl).metrics
    assert _summary_without_wallclock(inert) == _summary_without_wallclock(plain)
    assert inert.finish_times == plain.finish_times


def test_identical_seeds_replay_identical_sheds():
    a = overload_point(450.0, shedding=True, horizon=6.0, seed=0)
    b = overload_point(450.0, shedding=True, horizon=6.0, seed=0)
    assert _summary_without_wallclock(a) == _summary_without_wallclock(b)
    assert a.shed == b.shed and a.shed > 0


def test_chaos_overload_run_keeps_ledger_and_trace_exact():
    tracer = Tracer()
    ov = OverloadController(
        default_overload_config(BATCH, seed=0, breaker=True)
    )
    plan = FaultPlan(FaultConfig.chaos(0.3, downtime=0.3), seed=7)
    sim = ServingSimulator(
        make_scheduler("fcfs", BATCH),
        FaultyEngine(
            ConcatEngine(BATCH, cost_model=GPUCostModel.calibrated()), plan
        ),
        overload=ov,
        trace=tracer,
    )
    m = sim.run(make_workload(450.0, horizon=8.0, seed=0)).metrics
    # The loop already asserts both; re-assert here so the bench fails
    # loudly if that ever changes.
    m.assert_conservation()
    tracer.reconcile(m)
    assert m.shed > 0
    kinds = {e.kind for e in tracer.overload_events}
    assert "shed" in kinds
