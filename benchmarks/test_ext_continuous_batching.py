"""Extension bench: slot-level TCB vs ORCA-style continuous batching.

The paper predates iteration-level scheduling; this bench puts the two
philosophies side by side on the paper's workload:

- **TCB (slot-level)** — DAS packs a ConcatBatching batch, it runs to
  completion, repeat,
- **continuous** — requests join/leave the running batch every decode
  step (fused prefill), with FCFS or utility-ordered admission.

Expected: continuous batching cuts *latency* (no waiting for batch
boundaries) and utility-ordered admission beats FCFS under overload
(head-of-line blocking); slot-level TCB remains competitive on raw
throughput because its packed batches amortise per-iteration overheads.
"""

from repro.config import BatchConfig
from repro.experiments.serving_sweeps import make_workload, serving_point
from repro.experiments.tables import format_series_table
from repro.serving.continuous import ContinuousBatchingSimulator


def _series():
    batch = BatchConfig(num_rows=64, row_length=100)
    rates = (100, 250, 450, 1000)
    out = {
        "rate": list(rates),
        "slot_tcb_thr": [],
        "cont_util_thr": [],
        "cont_fcfs_thr": [],
        "slot_tcb_lat": [],
        "cont_util_lat": [],
    }
    for rate in rates:
        slot = serving_point("TCB", "das", rate, horizon=8.0, seeds=(0,))
        cu = ContinuousBatchingSimulator(batch, admission="utility").run(
            make_workload(rate, horizon=8.0, seed=0)
        )
        cf = ContinuousBatchingSimulator(batch, admission="fcfs").run(
            make_workload(rate, horizon=8.0, seed=0)
        )
        out["slot_tcb_thr"].append(slot.throughput)
        out["cont_util_thr"].append(cu.throughput)
        out["cont_fcfs_thr"].append(cf.throughput)
        out["slot_tcb_lat"].append(slot.mean_latency)
        out["cont_util_lat"].append(cu.mean_latency)
    return out


def test_ext_continuous_batching(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_continuous",
        format_series_table(out, "Extension — slot-level TCB vs continuous batching"),
    )
    i = out["rate"].index(1000)
    # Utility admission beats FCFS admission under overload.
    assert out["cont_util_thr"][i] > 1.5 * out["cont_fcfs_thr"][i]
    # Both serving philosophies are in the same league at moderate load.
    j = out["rate"].index(250)
    assert out["cont_util_thr"][j] > 0.5 * out["slot_tcb_thr"][j]
    # Latencies are finite and positive where anything was served.
    assert all(l >= 0 for l in out["cont_util_lat"])