"""Extension bench: scheduler robustness under bursty arrivals.

Smooth Poisson traffic (the paper's workload) flatters every scheduler;
real services see bursts.  This bench replays the same average load as
an on/off modulated Poisson process (burst factor 6) and compares
DAS-TCB against FCFS-TCB on utility and deadline misses: during bursts
the queue explodes, and utility/deadline-aware selection matters far
more than under smooth traffic.
"""

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.tables import format_series_table
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.workload.burst import BurstyWorkload
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator


def _series():
    batch = BatchConfig(num_rows=16, row_length=100)
    lengths = LengthDistribution(family="normal", mean=20, spread=20, low=3, high=100)
    deadlines = DeadlineModel(base_slack=1.5, jitter=0.5)
    rows = []
    for traffic in ("smooth", "bursty"):
        for policy in ("DAS", "FCFS"):
            util = miss = 0.0
            for seed in (0, 1):
                if traffic == "smooth":
                    wl = WorkloadGenerator(
                        rate=120.0, lengths=lengths, deadlines=deadlines,
                        horizon=8.0, seed=seed,
                    ).generate()
                else:
                    wl = BurstyWorkload(
                        rate=120.0, burst_factor=6.0, lengths=lengths,
                        deadlines=deadlines, horizon=8.0, seed=seed,
                    ).generate()
                sched = (
                    DASScheduler(batch, SchedulerConfig())
                    if policy == "DAS"
                    else FCFSScheduler(batch)
                )
                m = ServingSimulator(sched, ConcatEngine(batch)).run(
                    wl, horizon=8.0
                ).metrics
                util += m.total_utility / 2
                miss += 100 * m.miss_rate / 2
            rows.append((f"{policy}/{traffic}", util, miss))
    return {
        "setting": [r[0] for r in rows],
        "utility": [r[1] for r in rows],
        "miss_pct": [r[2] for r in rows],
    }


def test_ext_burst_robustness(benchmark, save_table):
    out = benchmark.pedantic(_series, rounds=1, iterations=1)
    save_table(
        "ext_burst",
        format_series_table(out, "Extension — robustness under bursty arrivals"),
    )
    util = dict(zip(out["setting"], out["utility"]))
    # DAS dominates FCFS under both traffic shapes...
    assert util["DAS/smooth"] > util["FCFS/smooth"]
    assert util["DAS/bursty"] > util["FCFS/bursty"]
    # ...and its relative edge grows under bursts (queue spikes reward
    # utility/deadline-aware selection).
    edge_smooth = util["DAS/smooth"] / util["FCFS/smooth"]
    edge_bursty = util["DAS/bursty"] / util["FCFS/bursty"]
    assert edge_bursty > edge_smooth