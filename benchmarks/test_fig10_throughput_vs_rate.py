"""Fig. 10: serving throughput vs request arrival rate (DAS-fed).

Paper result: TCB always on top; maximum gaps ≈2.22× over TNB and
≈1.48× over TTB.
"""

from repro.experiments import format_series_table, run_fig10_throughput
from repro.experiments.serving_sweeps import PAPER_RATES_DAS


def test_fig10_throughput_vs_rate(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig10_throughput(PAPER_RATES_DAS, horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table(
        "fig10", format_series_table(out, "Fig. 10 — throughput vs arrival rate (DAS)")
    )

    # TCB dominates at and after saturation.
    for rate in (450, 1000, 1500):
        i = out["rate"].index(rate)
        assert out["DAS-TCB"][i] >= out["DAS-TTB"][i]
        assert out["DAS-TCB"][i] >= out["DAS-TNB"][i]
    # Maximum gap over TNB lands in the paper's neighbourhood (2.22×).
    gaps = [
        out["DAS-TCB"][i] / out["DAS-TNB"][i]
        for i in range(len(out["rate"]))
        if out["DAS-TNB"][i] > 0
    ]
    assert max(gaps) > 1.8
