"""Fig. 9: total utility vs request arrival rate (DAS-TNB/TTB/TCB).

Paper result: utility grows with rate for all systems; TNB and TTB
flatten around 350 req/s while TCB keeps absorbing load; after
saturation TCB's utility leads TNB by ≈2.2× and TTB by ≈1.3×.
"""

from repro.experiments import format_series_table, run_fig09_utility
from repro.experiments.serving_sweeps import PAPER_RATES_DAS


def test_fig09_utility_vs_rate(benchmark, save_table):
    out = benchmark.pedantic(
        lambda: run_fig09_utility(PAPER_RATES_DAS, horizon=10.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_table("fig09", format_series_table(out, "Fig. 9 — utility vs arrival rate (DAS)"))

    i_sat = out["rate"].index(1000)
    tnb, ttb, tcb = (
        out["DAS-TNB"][i_sat],
        out["DAS-TTB"][i_sat],
        out["DAS-TCB"][i_sat],
    )
    assert tcb > ttb and tcb > tnb
    assert tcb / tnb > 1.5  # paper: 2.20x
    # Utility is monotone-ish in offered load for TCB.
    assert out["DAS-TCB"][-1] > out["DAS-TCB"][0]
