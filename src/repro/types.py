"""Common value types shared across the TCB reproduction.

The central object is :class:`Request`, modelling one inference request as
described in §5.1 of the paper: an arrival time ``a_n``, a deadline ``d_n``,
a sentence of length ``l_n``, and the derived utility ``v_n = 1 / l_n``.

Everything here is a plain frozen dataclass so that requests can be hashed,
stored in sets, and passed freely between the scheduler, the batching
layer and the inference engines without defensive copying.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "Request",
    "RequestBatchStats",
    "make_requests",
    "total_utility",
    "total_tokens",
]

_id_counter = itertools.count()


@dataclass(frozen=True)
class Request:
    """A single inference request (paper §5.1).

    Parameters
    ----------
    request_id:
        Unique id (unique within one workload / simulation run).
    length:
        Number of tokens ``l_n`` in the request's sentence.  Must be >= 1.
    arrival:
        Arrival time ``a_n`` in seconds (simulation clock).
    deadline:
        Response deadline ``d_n`` in seconds.  A request may only be
        scheduled in the window ``[arrival, deadline]``.
    tokens:
        Optional concrete token ids.  Engines running the real NumPy
        transformer need them; the analytic cost model only needs
        ``length``.  Stored as a tuple so the dataclass stays hashable.
    weight:
        Priority weight (extension beyond the paper; default 1.0
        reproduces §5.1 exactly).  Utility becomes ``w_n / l_n``.  The
        tenancy plane (``repro.tenancy``) derives this from the tenant's
        SLO class — ``TenantRegistry.effective_weight`` — so a premium
        tenant's requests carry a higher weight than same-length batch
        ones and outrank them in DAS without any scheduler change.
    tenant:
        Optional tenant identity for the multi-tenant QoS plane
        (``repro.tenancy``).  ``None`` (the default) means the request
        is untenanted and every tenancy feature is a no-op for it.
    """

    request_id: int
    length: int
    arrival: float = 0.0
    deadline: float = float("inf")
    tokens: Optional[tuple[int, ...]] = None
    weight: float = 1.0
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"request length must be >= 1, got {self.length}")
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival {self.arrival}"
            )
        if self.tokens is not None and len(self.tokens) != self.length:
            raise ValueError(
                f"tokens has {len(self.tokens)} entries but length={self.length}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    @property
    def utility(self) -> float:
        """Utility value ``v_n = w_n / l_n`` (paper §5.1 at w=1)."""
        return self.weight / self.length

    def is_available(self, t: float) -> bool:
        """Whether the request may be scheduled at time ``t`` (Eq. 12)."""
        return self.arrival <= t <= self.deadline

    def slack(self, now: float) -> float:
        """Time left until the deadline at ``now`` (negative once past).

        Retry/requeue policies compare this against the quickest
        possible service time: a failed request keeps its deadline but
        has burnt slack, which is what couples fault recovery to
        deadline-aware scheduling.
        """
        return self.deadline - now

    def with_tokens(self, tokens: Sequence[int]) -> "Request":
        """Return a copy carrying concrete token ids."""
        return Request(
            request_id=self.request_id,
            length=self.length,
            arrival=self.arrival,
            deadline=self.deadline,
            tokens=tuple(int(t) for t in tokens),
            weight=self.weight,
            tenant=self.tenant,
        )


@dataclass
class RequestBatchStats:
    """Padding / utilisation accounting for one executed batch."""

    num_requests: int = 0
    useful_tokens: int = 0
    padded_tokens: int = 0
    rows: int = 0
    row_width: int = 0

    @property
    def total_tokens(self) -> int:
        return self.useful_tokens + self.padded_tokens

    @property
    def padding_ratio(self) -> float:
        total = self.total_tokens
        return 0.0 if total == 0 else self.padded_tokens / total

    @property
    def utilisation(self) -> float:
        return 1.0 - self.padding_ratio


def make_requests(
    lengths: Iterable[int],
    *,
    arrivals: Optional[Iterable[float]] = None,
    deadlines: Optional[Iterable[float]] = None,
    start_id: Optional[int] = None,
) -> list[Request]:
    """Convenience constructor for a list of requests.

    ``arrivals`` / ``deadlines`` default to 0 / +inf.  ``start_id`` pins the
    first id (otherwise a process-global counter is used so ids never
    collide across calls).
    """
    lengths = list(lengths)
    arr = list(arrivals) if arrivals is not None else [0.0] * len(lengths)
    ddl = (
        list(deadlines)
        if deadlines is not None
        else [float("inf")] * len(lengths)
    )
    if not (len(lengths) == len(arr) == len(ddl)):
        raise ValueError("lengths, arrivals, deadlines must have equal sizes")
    if start_id is not None:
        ids = range(start_id, start_id + len(lengths))
    else:
        ids = (next(_id_counter) for _ in lengths)
    return [
        Request(request_id=i, length=int(l), arrival=float(a), deadline=float(d))
        for i, l, a, d in zip(ids, lengths, arr, ddl)
    ]


def total_utility(requests: Iterable[Request]) -> float:
    """Sum of ``1/l_n`` over the given requests (objective, Eq. 9)."""
    return float(sum(r.utility for r in requests))


def total_tokens(requests: Iterable[Request]) -> int:
    return int(sum(r.length for r in requests))
