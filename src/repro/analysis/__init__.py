"""Analysis utilities for experiment series.

Helpers used by the benchmark suite and EXPERIMENTS.md generation:
saturation detection (where a throughput curve flattens), gap/crossover
computation between systems, and CSV/JSON export of series tables.
"""

from repro.analysis.curves import (
    crossover_rate,
    max_gap,
    saturation_point,
    saturated_value,
)
from repro.analysis.export import series_to_csv, series_to_json
from repro.analysis.fairness import (
    jain_index,
    service_rate_by_length,
    service_rate_by_tenant,
    tenant_jain_index,
)
from repro.analysis.ascii_plot import ascii_chart, sparkline

__all__ = [
    "saturation_point",
    "saturated_value",
    "max_gap",
    "crossover_rate",
    "series_to_csv",
    "series_to_json",
    "jain_index",
    "service_rate_by_length",
    "service_rate_by_tenant",
    "tenant_jain_index",
    "ascii_chart",
    "sparkline",
]
