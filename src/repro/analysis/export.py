"""Export experiment series as CSV or JSON."""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping, Sequence

__all__ = ["series_to_csv", "series_to_json"]


def _check(series: Mapping[str, Sequence[object]]) -> list[str]:
    cols = list(series)
    if not cols:
        return cols
    n = len(series[cols[0]])
    for c in cols:
        if len(series[c]) != n:
            raise ValueError(f"column {c!r} length {len(series[c])} != {n}")
    return cols


def series_to_csv(series: Mapping[str, Sequence[object]]) -> str:
    """Render a series dict as CSV text (header + rows)."""
    cols = _check(series)
    if not cols:
        return ""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(cols)
    for i in range(len(series[cols[0]])):
        writer.writerow([series[c][i] for c in cols])
    return buf.getvalue()


def series_to_json(series: Mapping[str, Sequence[object]], indent: int = 2) -> str:
    """Render a series dict as a JSON object of column arrays."""
    _check(series)
    return json.dumps({k: list(v) for k, v in series.items()}, indent=indent)
