"""Curve analysis: saturation, gaps and crossovers.

The paper's evaluation reasons about *saturation* ("the utility of TNB
and TTB has no big change when there are more than 350 requests/second")
and *maximum gaps* ("the maximum performance gaps ... are about 2.22×
and 1.48×").  These helpers compute those quantities from the series
dicts the experiment harnesses return.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["saturation_point", "saturated_value", "max_gap", "crossover_rate"]


def saturation_point(
    x: Sequence[float], y: Sequence[float], tolerance: float = 0.10
) -> Optional[float]:
    """First x beyond which y never grows by more than ``tolerance``.

    Returns the saturation x-value, or ``None`` if the curve is still
    growing at its last point.  ``tolerance`` is relative to the curve's
    final value.
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(y) < 2:
        return None
    final = y[-1]
    if final <= 0:
        return x[0]
    for i in range(len(y)):
        tail_max = max(y[i:])
        if tail_max - y[i] <= tolerance * final:
            return x[i]
    return None


def saturated_value(y: Sequence[float], last_k: int = 3) -> float:
    """Mean of the last ``last_k`` points — the plateau height."""
    if not y:
        raise ValueError("empty series")
    k = min(last_k, len(y))
    return float(np.mean(list(y)[-k:]))


def max_gap(numerator: Sequence[float], denominator: Sequence[float]) -> float:
    """Maximum pointwise ratio between two aligned series."""
    if len(numerator) != len(denominator):
        raise ValueError("series must align")
    ratios = [
        n / d for n, d in zip(numerator, denominator) if d > 0
    ]
    if not ratios:
        raise ValueError("denominator is zero everywhere")
    return float(max(ratios))


def crossover_rate(
    x: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """First x where series ``a`` overtakes series ``b`` (a > b).

    Linear interpolation between samples; ``None`` if ``a`` never leads.
    """
    if not (len(x) == len(a) == len(b)):
        raise ValueError("series must align")
    for i in range(len(x)):
        if a[i] > b[i]:
            if i == 0:
                return float(x[0])
            # Interpolate between i-1 and i.
            d_prev = a[i - 1] - b[i - 1]
            d_here = a[i] - b[i]
            if d_here == d_prev:
                return float(x[i])
            t = -d_prev / (d_here - d_prev)
            return float(x[i - 1] + t * (x[i] - x[i - 1]))
    return None
