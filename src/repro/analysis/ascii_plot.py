"""Terminal line charts for experiment series (no plotting deps).

The environment is matplotlib-free, so the examples and the experiment
runner draw figures as Unicode block charts::

    DAS-TCB  ▁▂▃▅▆▇██
    DAS-TTB  ▁▂▃▃▄▄▄▄

:func:`sparkline` renders one series; :func:`ascii_chart` renders a
labelled multi-series panel scaled to a shared y-range, which is enough
to eyeball every curve shape the paper plots.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["sparkline", "ascii_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line block chart of a numeric series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5)
        out.append(_BLOCKS[max(0, min(len(_BLOCKS) - 1, idx))])
    return "".join(out)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    *,
    x_key: Optional[str] = None,
    title: str = "",
    shared_scale: bool = True,
) -> str:
    """Multi-series panel: one sparkline per column, aligned labels.

    ``x_key`` names a column to print as the x-axis legend instead of
    charting it.  ``shared_scale`` plots all series on one y-range so
    relative magnitudes are comparable.
    """
    cols = {k: [float(v) for v in vs] for k, vs in series.items() if k != x_key}
    if not cols:
        return title
    lengths = {len(v) for v in cols.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    lo = hi = None
    if shared_scale:
        flat = [v for vs in cols.values() for v in vs]
        lo, hi = min(flat), max(flat)
    width = max(len(k) for k in cols)
    lines = []
    if title:
        lines.append(title)
    for name, vals in cols.items():
        line = sparkline(vals, lo=lo, hi=hi)
        peak = max(vals)
        lines.append(f"{name.rjust(width)}  {line}  (max {peak:.2f})")
    if x_key is not None and x_key in series:
        xs = list(series[x_key])
        lines.append(f"{'x'.rjust(width)}  {xs[0]} … {xs[-1]} ({x_key})")
    return "\n".join(lines)
