"""Fairness analysis: who gets served, by request length?

Utility ``v = 1/l`` makes DAS (and SJF) favour short requests; a
deployment should know how hard long requests are starved.  These
helpers bucket a simulation's offered requests by length and report the
per-bucket service rate, plus Jain's fairness index over those rates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.serving.metrics import ServingMetrics
from repro.types import Request

__all__ = [
    "service_rate_by_length",
    "service_rate_by_tenant",
    "jain_index",
    "tenant_jain_index",
]


def service_rate_by_length(
    metrics: ServingMetrics, num_buckets: int = 5
) -> dict[str, list[float]]:
    """Per-length-quantile service rates for one simulation.

    Buckets are length quantiles of the *offered* load (served ∪
    expired), so every bucket holds ≈ the same number of requests.
    Returns columns: bucket upper length, offered count, served count,
    service rate.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    offered: list[Request] = list(metrics.served) + list(metrics.expired)
    if not offered:
        return {
            "max_length": [],
            "offered": [],
            "served": [],
            "service_rate": [],
        }
    lengths = np.array([r.length for r in offered])
    served_ids = {r.request_id for r in metrics.served}
    edges = np.quantile(lengths, np.linspace(0, 1, num_buckets + 1))
    edges[-1] += 1  # include max
    out = {
        "max_length": [],
        "offered": [],
        "served": [],
        "service_rate": [],
    }
    for i in range(num_buckets):
        # Half-open [lo, hi) buckets; the top edge was bumped above so
        # the longest requests land in the last bucket.
        lo, hi = edges[i], edges[i + 1]
        in_bucket = [r for r in offered if lo <= r.length < hi]
        n = len(in_bucket)
        s = sum(1 for r in in_bucket if r.request_id in served_ids)
        out["max_length"].append(float(np.ceil(hi - 1)))
        out["offered"].append(float(n))
        out["served"].append(float(s))
        out["service_rate"].append(s / n if n else 0.0)
    return out


def service_rate_by_tenant(
    metrics: ServingMetrics,
) -> dict[str, dict[str, float]]:
    """Per-tenant offered/served counts and service rate.

    Offered load is served ∪ expired, mirroring
    :func:`service_rate_by_length`; untagged requests fall under the
    ``"default"`` tenant.  Keys are tenant names sorted alphabetically.
    """
    offered: list[Request] = list(metrics.served) + list(metrics.expired)
    served_ids = {r.request_id for r in metrics.served}
    out: dict[str, dict[str, float]] = {}
    for r in offered:
        tenant = r.tenant if r.tenant is not None else "default"
        row = out.setdefault(
            tenant, {"offered": 0.0, "served": 0.0, "service_rate": 0.0}
        )
        row["offered"] += 1.0
        if r.request_id in served_ids:
            row["served"] += 1.0
    for row in out.values():
        row["service_rate"] = (
            row["served"] / row["offered"] if row["offered"] else 0.0
        )
    return dict(sorted(out.items()))


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index of per-bucket service rates (1 = perfectly fair)."""
    x = np.asarray([r for r in rates], dtype=float)
    if x.size == 0 or np.all(x == 0):
        return 0.0
    return float((x.sum() ** 2) / (x.size * np.square(x).sum()))


def tenant_jain_index(metrics: ServingMetrics) -> float:
    """Jain's index over per-tenant service rates (1 = perfectly fair).

    A single-tenant run is trivially fair (1.0); a run that served
    nothing scores 0.0, matching :func:`jain_index` conventions.
    """
    rates = [
        row["service_rate"]
        for row in service_rate_by_tenant(metrics).values()
    ]
    return jain_index(rates)
