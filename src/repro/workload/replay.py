"""Workload trace persistence: save/load request traces as JSONL.

Reproducible comparisons need the *same* request trace across systems
and sessions; these helpers serialise any request list (including
corpus-derived ones with token ids) to newline-delimited JSON and back,
bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

from repro.types import Request

__all__ = ["save_trace", "load_trace", "trace_to_jsonl", "trace_from_jsonl"]


def trace_to_jsonl(requests: Sequence[Request]) -> str:
    """Serialise requests (sorted by arrival) to JSONL text."""
    lines = []
    for r in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
        rec = {
            "id": r.request_id,
            "length": r.length,
            "arrival": r.arrival,
            "deadline": r.deadline if r.deadline != float("inf") else None,
            "weight": r.weight,
        }
        if r.tokens is not None:
            rec["tokens"] = list(r.tokens)
        lines.append(json.dumps(rec))
    return "\n".join(lines)


def trace_from_jsonl(text: str) -> list[Request]:
    """Parse JSONL text back into requests."""
    out: list[Request] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad trace line {lineno}: {exc}") from exc
        out.append(
            Request(
                request_id=int(rec["id"]),
                length=int(rec["length"]),
                arrival=float(rec["arrival"]),
                deadline=(
                    float(rec["deadline"])
                    if rec.get("deadline") is not None
                    else float("inf")
                ),
                tokens=(
                    tuple(int(t) for t in rec["tokens"])
                    if "tokens" in rec
                    else None
                ),
                weight=float(rec.get("weight", 1.0)),
            )
        )
    return out


def save_trace(requests: Sequence[Request], path: Union[str, Path]) -> None:
    Path(path).write_text(trace_to_jsonl(requests) + "\n")


def load_trace(path: Union[str, Path]) -> list[Request]:
    return trace_from_jsonl(Path(path).read_text())
