"""Deadline (SLA) models for generated requests.

The paper associates every request with a deadline but does not specify
the slack distribution; we model ``deadline = arrival + base + per_token
· length + U(0, jitter)`` — a fixed SLA term, an optional size-dependent
term, and uniform jitter so deadlines are not all tied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeadlineModel"]


@dataclass(frozen=True)
class DeadlineModel:
    base_slack: float = 1.0
    slack_per_token: float = 0.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_slack < 0 or self.slack_per_token < 0 or self.jitter < 0:
            raise ValueError("deadline model parameters must be non-negative")

    def deadline(
        self, arrival: float, length: int, rng: np.random.Generator
    ) -> float:
        slack = self.base_slack + self.slack_per_token * length
        if self.jitter > 0:
            slack += float(rng.uniform(0.0, self.jitter))
        return arrival + slack
