"""Request workload generator: Poisson arrivals × length distributions.

``LengthDistribution`` supports the paper's truncated normal (the figure
captions' "variance" parameter is interpreted as the spread knob σ — see
EXPERIMENTS.md) plus uniform, lognormal and bimodal families used for the
dataset-like traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Sequence

import numpy as np

from repro.types import Request
from repro.workload.deadlines import DeadlineModel

__all__ = ["LengthDistribution", "WorkloadGenerator"]

Family = Literal["normal", "uniform", "lognormal", "bimodal", "constant"]


@dataclass(frozen=True)
class LengthDistribution:
    """Token-length distribution truncated to ``[low, high]``.

    - ``normal``: mean/spread as given (paper §6.2.1: 3–100 tokens,
      average 20),
    - ``uniform``: over [low, high] (mean/spread ignored),
    - ``lognormal``: heavy right tail (ParaCrawl-like web text),
    - ``bimodal``: mixture of short and long sentences (GLUE/DIA-like),
    - ``constant``: every request exactly ``mean`` tokens.
    """

    family: Family = "normal"
    mean: float = 20.0
    spread: float = 20.0
    low: int = 3
    high: int = 100

    def __post_init__(self) -> None:
        if self.low < 1 or self.high < self.low:
            raise ValueError(f"invalid bounds [{self.low}, {self.high}]")
        if self.family not in ("uniform", "constant") and self.spread < 0:
            raise ValueError("spread must be non-negative")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError("n must be >= 0")
        if self.family == "normal":
            raw = rng.normal(self.mean, max(self.spread, 1e-9), size=n)
        elif self.family == "uniform":
            raw = rng.uniform(self.low, self.high + 1, size=n)
        elif self.family == "lognormal":
            # Parametrise so the median sits near `mean`.
            sigma = np.log1p(self.spread / max(self.mean, 1e-9))
            raw = rng.lognormal(np.log(max(self.mean, 1e-9)), max(sigma, 1e-3), size=n)
        elif self.family == "bimodal":
            short = rng.normal(self.low + 0.15 * (self.high - self.low), self.spread / 2, size=n)
            long_ = rng.normal(self.high - 0.15 * (self.high - self.low), self.spread / 2, size=n)
            pick = rng.random(n) < 0.5
            raw = np.where(pick, short, long_)
        elif self.family == "constant":
            raw = np.full(n, self.mean)
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown family {self.family!r}")
        return np.clip(np.rint(raw), self.low, self.high).astype(np.int64)


@dataclass(frozen=True)
class WorkloadGenerator:
    """Poisson-arrival request stream over a time horizon.

    ``tenant_mix`` adds a tenant dimension: a tuple of ``(tenant,
    probability)`` pairs; each request draws its tenant i.i.d. from the
    (normalised) mix *after* the arrival/length/deadline draws, so a
    mix-less generator's trace is bit-identical to pre-tenancy output.
    When ``registry`` (a :class:`repro.tenancy.TenantRegistry`) is also
    given, each request's utility weight comes from the tenant's SLO
    class and its deadline slack is scaled by the class's
    ``deadline_slack`` multiplier.
    """

    rate: float  # requests / second
    lengths: LengthDistribution = LengthDistribution()
    deadlines: DeadlineModel = DeadlineModel()
    horizon: float = 10.0
    seed: int = 0
    tenant_mix: Optional[tuple[tuple[str, float], ...]] = None
    registry: Optional[object] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.tenant_mix is not None:
            if not self.tenant_mix:
                raise ValueError("tenant_mix must be non-empty when given")
            if any(p < 0 for _, p in self.tenant_mix):
                raise ValueError("tenant_mix probabilities must be >= 0")
            if sum(p for _, p in self.tenant_mix) <= 0:
                raise ValueError("tenant_mix probabilities must sum > 0")

    def generate(self, start_id: int = 0) -> list[Request]:
        """Sample the full request trace (sorted by arrival)."""
        rng = np.random.default_rng(self.seed)
        # Poisson process: exponential inter-arrival gaps.
        expected = int(self.rate * self.horizon * 1.5) + 16
        gaps = rng.exponential(1.0 / self.rate, size=expected)
        arrivals = np.cumsum(gaps)
        while arrivals[-1] < self.horizon:
            more = rng.exponential(1.0 / self.rate, size=expected)
            arrivals = np.concatenate([arrivals, arrivals[-1] + np.cumsum(more)])
        arrivals = arrivals[arrivals < self.horizon]
        n = arrivals.size
        lengths = self.lengths.sample(n, rng)
        requests = [
            Request(
                request_id=start_id + i,
                length=int(lengths[i]),
                arrival=float(arrivals[i]),
                deadline=self.deadlines.deadline(float(arrivals[i]), int(lengths[i]), rng),
            )
            for i in range(n)
        ]
        if self.tenant_mix is None:
            return requests
        names = [t for t, _ in self.tenant_mix]
        probs = np.array([p for _, p in self.tenant_mix], dtype=float)
        picks = rng.choice(len(names), size=n, p=probs / probs.sum())
        out: list[Request] = []
        for r, pick in zip(requests, picks):
            tenant = names[int(pick)]
            weight = r.weight
            deadline = r.deadline
            if self.registry is not None:
                cls = self.registry.tenant_class(tenant)
                weight = self.registry.effective_weight(tenant)
                deadline = r.arrival + (r.deadline - r.arrival) * cls.deadline_slack
            out.append(
                Request(
                    request_id=r.request_id,
                    length=r.length,
                    arrival=r.arrival,
                    deadline=deadline,
                    tokens=r.tokens,
                    weight=weight,
                    tenant=tenant,
                )
            )
        return out
