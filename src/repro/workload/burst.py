"""Bursty arrivals: a two-state (on/off) modulated Poisson process.

Serving systems rarely see smooth Poisson traffic; arrivals cluster.
:class:`BurstyWorkload` alternates between a *burst* state (rate
``rate × burst_factor``) and a *calm* state (rate ``rate /
burst_factor``) with exponentially distributed sojourn times, keeping
the long-run average near ``rate``.  This stresses deadline-aware
scheduling far harder than smooth traffic — queues spike during bursts
and drain during calm — and is used in the robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import Request
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution

__all__ = ["BurstyWorkload"]


@dataclass(frozen=True)
class BurstyWorkload:
    """On/off modulated Poisson arrivals with the paper's length model."""

    rate: float = 200.0
    burst_factor: float = 4.0
    mean_state_duration: float = 0.5
    lengths: LengthDistribution = LengthDistribution()
    deadlines: DeadlineModel = DeadlineModel()
    horizon: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.horizon <= 0:
            raise ValueError("rate and horizon must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.mean_state_duration <= 0:
            raise ValueError("mean_state_duration must be positive")

    def generate(self, start_id: int = 0) -> list[Request]:
        rng = np.random.default_rng(self.seed)
        arrivals: list[float] = []
        t = 0.0
        bursting = bool(rng.integers(0, 2))
        # Normalise so the long-run mean rate equals `rate`: states are
        # equally likely, so scale both by 2 / (f + 1/f).
        f = self.burst_factor
        scale = 2.0 / (f + 1.0 / f)
        while t < self.horizon:
            state_end = t + float(rng.exponential(self.mean_state_duration))
            state_end = min(state_end, self.horizon)
            r = self.rate * scale * (f if bursting else 1.0 / f)
            while True:
                t += float(rng.exponential(1.0 / r))
                if t >= state_end:
                    break
                arrivals.append(t)
            t = state_end
            bursting = not bursting
        n = len(arrivals)
        lengths = self.lengths.sample(n, rng)
        return [
            Request(
                request_id=start_id + i,
                length=int(lengths[i]),
                arrival=arrivals[i],
                deadline=self.deadlines.deadline(arrivals[i], int(lengths[i]), rng),
            )
            for i in range(n)
        ]

    def burstiness_index(self, requests: list[Request], window: float = 0.25) -> float:
        """Coefficient of variation of windowed arrival counts (>1 ⇒ bursty)."""
        if not requests:
            return 0.0
        edges = np.arange(0.0, self.horizon + window, window)
        counts, _ = np.histogram([r.arrival for r in requests], bins=edges)
        mean = counts.mean()
        return float(counts.std() / mean) if mean > 0 else 0.0
