"""Named synthetic traces standing in for the paper's datasets.

The paper motivates ConcatBatching with workloads "highly variable in
length" such as ParaCrawl [3] and the GLUE diagnostic set (DIA) [33].
We cannot ship those corpora, so these constructors produce length
profiles with the same qualitative property (heavy tails / bimodality) —
what matters to every experiment is the *length distribution*, not the
text (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

__all__ = ["paper_default", "paracrawl_like", "glue_dia_like"]


def paper_default(
    rate: float,
    *,
    spread: float = 20.0,
    horizon: float = 10.0,
    seed: int = 0,
    base_slack: float = 1.0,
) -> WorkloadGenerator:
    """§6.2.1 workload: lengths 3–100, average 20, Poisson arrivals."""
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=20.0, spread=spread, low=3, high=100
        ),
        deadlines=DeadlineModel(base_slack=base_slack),
        horizon=horizon,
        seed=seed,
    )


def paracrawl_like(
    rate: float, *, horizon: float = 10.0, seed: int = 0
) -> WorkloadGenerator:
    """Heavy-tailed web-crawl-style lengths (lognormal, median ≈ 18)."""
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="lognormal", mean=18.0, spread=30.0, low=3, high=400
        ),
        horizon=horizon,
        seed=seed,
    )


def glue_dia_like(
    rate: float, *, horizon: float = 10.0, seed: int = 0
) -> WorkloadGenerator:
    """Bimodal short/long mixture (GLUE diagnostic-style)."""
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="bimodal", mean=50.0, spread=12.0, low=3, high=120
        ),
        horizon=horizon,
        seed=seed,
    )
