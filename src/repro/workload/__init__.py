"""Workload generation for serving experiments (paper §6.1–6.2).

The paper generates requests "with 3−100 tokens according to a normal
distribution" arriving "as a Poisson process".  This package reproduces
that exactly (:class:`~repro.workload.generator.WorkloadGenerator`) and
adds the high-variance synthetic stand-ins for the ParaCrawl / GLUE-DIA
length profiles the introduction motivates
(:mod:`repro.workload.traces`).
"""

from repro.workload.generator import LengthDistribution, WorkloadGenerator
from repro.workload.deadlines import DeadlineModel
from repro.workload.traces import (
    glue_dia_like,
    paracrawl_like,
    paper_default,
)

__all__ = [
    "LengthDistribution",
    "WorkloadGenerator",
    "DeadlineModel",
    "paper_default",
    "paracrawl_like",
    "glue_dia_like",
]
