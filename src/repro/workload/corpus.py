"""Corpus-driven workloads: request lengths from real(istic) text + BPE.

The paper's motivation datasets (ParaCrawl, GLUE-DIA) are length
*distributions over tokenised sentences*.  This module closes the loop:
generate (or accept) a text corpus, train a BPE tokenizer on it, and
derive a workload whose request lengths are the tokenised sentence
lengths — plus the tokens themselves, so measured-mode engines can run
the actual text end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.model.bpe import BPETokenizer
from repro.types import Request
from repro.workload.deadlines import DeadlineModel

__all__ = ["synthetic_corpus", "CorpusWorkload"]

# A compact seed lexicon; sentences are Zipf-sampled from it so the BPE
# trainer sees realistic frequency skew.
_LEXICON = (
    "the of and to in a is that for it as was with be by on not he this are "
    "or his from at which but have an had they you were their one all we can "
    "her has there been if more when will would who so no out up into them "
    "then she many some these two may other time very upon about its over "
    "like new after first people could than any only most made them through"
).split()


def synthetic_corpus(
    num_sentences: int = 400,
    *,
    seed: int = 0,
    min_words: int = 2,
    max_words: int = 30,
) -> list[str]:
    """Zipf-flavoured random sentences for tokenizer training/workloads."""
    if num_sentences < 1:
        raise ValueError("num_sentences must be >= 1")
    if not (1 <= min_words <= max_words):
        raise ValueError("need 1 <= min_words <= max_words")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(_LEXICON) + 1, dtype=np.float64)
    probs = (1.0 / ranks) / np.sum(1.0 / ranks)
    out = []
    for _ in range(num_sentences):
        n = int(rng.integers(min_words, max_words + 1))
        idx = rng.choice(len(_LEXICON), size=n, p=probs)
        out.append(" ".join(_LEXICON[i] for i in idx))
    return out


@dataclass
class CorpusWorkload:
    """Requests drawn from a tokenised corpus with Poisson arrivals."""

    corpus: Sequence[str]
    rate: float = 100.0
    horizon: float = 10.0
    seed: int = 0
    num_merges: int = 120
    deadlines: DeadlineModel = DeadlineModel()

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.horizon <= 0:
            raise ValueError("rate and horizon must be positive")
        if not self.corpus:
            raise ValueError("corpus must be non-empty")
        self.tokenizer = BPETokenizer().train(self.corpus, self.num_merges)

    def length_stats(self) -> dict[str, float]:
        lengths = np.array(
            [self.tokenizer.token_length(s) for s in self.corpus], dtype=float
        )
        return {
            "mean": float(lengths.mean()),
            "std": float(lengths.std()),
            "min": float(lengths.min()),
            "max": float(lengths.max()),
        }

    def generate(self, start_id: int = 0) -> list[Request]:
        """Sample a request trace; each request carries its token ids."""
        rng = np.random.default_rng(self.seed)
        arrivals: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate))
            if t >= self.horizon:
                break
            arrivals.append(t)
        sentences = [
            self.corpus[int(rng.integers(0, len(self.corpus)))]
            for _ in arrivals
        ]
        out: list[Request] = []
        for i, (a, s) in enumerate(zip(arrivals, sentences)):
            tokens = self.tokenizer.encode(s)
            out.append(
                Request(
                    request_id=start_id + i,
                    length=len(tokens),
                    arrival=a,
                    deadline=self.deadlines.deadline(a, len(tokens), rng),
                    tokens=tuple(tokens),
                )
            )
        return out
