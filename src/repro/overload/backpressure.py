"""Bounded-queue limits and the typed backpressure signal.

A :class:`QueueLimits` gives the wait queue a count and/or token
capacity; :meth:`~repro.scheduling.queue.RequestQueue.pressure` lowers
the queue's current occupancy against those limits into a
:class:`QueuePressure` — a *typed* signal that callers act on (shed,
refuse a submit) instead of letting the queue grow without bound.

:class:`BackpressureError` is the online-facing half: the
:class:`~repro.serving.server.TCBServer` raises it from ``submit`` when
the bounded queue (or the degradation controller) refuses new work, so
clients see an explicit retry-later signal rather than silently rising
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BackpressureError", "QueueLimits", "QueuePressure"]


@dataclass(frozen=True)
class QueueLimits:
    """Capacity of the wait queue; ``None`` fields are unbounded.

    ``max_tokens`` is the natural unit for a concat-batching system —
    queue cost is token-shaped (Eq. 11's row capacity), so two short
    requests pressure the queue as much as one long one.
    ``max_requests`` guards against many tiny requests instead.
    """

    max_requests: Optional[int] = None
    max_tokens: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.max_tokens is not None and self.max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {self.max_tokens}")

    @property
    def unbounded(self) -> bool:
        return self.max_requests is None and self.max_tokens is None


@dataclass(frozen=True)
class QueuePressure:
    """One reading of queue occupancy against its limits."""

    queued_requests: int
    queued_tokens: int
    limits: QueueLimits

    @property
    def excess_requests(self) -> int:
        cap = self.limits.max_requests
        return 0 if cap is None else max(0, self.queued_requests - cap)

    @property
    def excess_tokens(self) -> int:
        cap = self.limits.max_tokens
        return 0 if cap is None else max(0, self.queued_tokens - cap)

    @property
    def overloaded(self) -> bool:
        return self.excess_requests > 0 or self.excess_tokens > 0

    def describe(self) -> str:
        return (
            f"{self.queued_requests} requests / {self.queued_tokens} tokens "
            f"queued (limits: {self.limits.max_requests} requests / "
            f"{self.limits.max_tokens} tokens)"
        )


class BackpressureError(RuntimeError):
    """The serving system refused new work; retry later.

    Carries the :class:`QueuePressure` reading (when the refusal came
    from a full queue) and a machine-readable ``reason``.
    """

    def __init__(
        self, reason: str, pressure: Optional[QueuePressure] = None
    ):
        detail = f": {pressure.describe()}" if pressure is not None else ""
        super().__init__(f"backpressure ({reason}){detail}")
        self.reason = reason
        self.pressure = pressure
