"""Load-shedding policies: who leaves the queue when pressure hits.

A policy orders the waiting set and victims are taken from the front of
that order until the queue is back under both its count and token
limits.  All policies are deterministic: ties break on ``request_id``
and :class:`RandomShed` derives each decision from an independent
``(seed, stream-domain, decision_index)`` stream (same scheme as
:class:`~repro.faults.plan.FaultPlan`, under a different domain tag so
the two never alias), so identical runs shed identical victims.

Which policy wins depends on the objective: *lowest-utility-first*
protects Eq. 9's Σ v_n (utility is 1/length, so it sheds the longest
requests — also the biggest queue-token consumers);
*latest-deadline-first* protects near-deadline work by shedding the
requests that could in principle wait the longest (under sustained
overload "could wait" means "will expire waiting");  *random* is the
unbiased baseline the other two must beat.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.overload.backpressure import QueuePressure
from repro.rng import ensure_rng
from repro.types import Request

__all__ = [
    "SheddingPolicy",
    "LowestUtilityFirst",
    "LatestDeadlineFirst",
    "RandomShed",
    "TenantWeightedShed",
    "make_shedder",
]

# Stream-domain tag mixed into every SeedSequence key below, distinct
# from the FaultPlan tag, so a shedder and a fault plan sharing one
# experiment seed can never consume the same stream (tcblint TCB011).
_STREAM_RANDOM_SHED = 0x5D


class SheddingPolicy(abc.ABC):
    """Order the waiting set; victims are shed front-first."""

    name: str = "base"

    def reset(self) -> None:
        """Forget per-run state (called by the loops at run start)."""

    @abc.abstractmethod
    def order(
        self, waiting: Sequence[Request], now: float
    ) -> list[Request]:
        """Waiting requests, most-sheddable first."""

    def select_victims(
        self,
        waiting: Sequence[Request],
        pressure: QueuePressure,
        now: float,
    ) -> list[Request]:
        """Victims freeing enough count+token capacity to clear *pressure*."""
        need_requests = pressure.excess_requests
        need_tokens = pressure.excess_tokens
        if need_requests <= 0 and need_tokens <= 0:
            return []
        victims: list[Request] = []
        for r in self.order(waiting, now):
            if need_requests <= 0 and need_tokens <= 0:
                break
            victims.append(r)
            need_requests -= 1
            need_tokens -= r.length
        return victims


class LowestUtilityFirst(SheddingPolicy):
    """Shed the lowest Σ v_n contribution first (the longest requests)."""

    name = "lowest-utility"

    def order(
        self, waiting: Sequence[Request], now: float
    ) -> list[Request]:
        return sorted(waiting, key=lambda r: (r.utility, r.request_id))


class LatestDeadlineFirst(SheddingPolicy):
    """Shed the most-slack requests first, protecting urgent work."""

    name = "latest-deadline"

    def order(
        self, waiting: Sequence[Request], now: float
    ) -> list[Request]:
        return sorted(waiting, key=lambda r: (-r.deadline, r.request_id))


class RandomShed(SheddingPolicy):
    """Uniform-random victims — the baseline the informed policies beat.

    Each shedding decision draws a fresh permutation from an
    independent ``(seed, stream-domain, decision_index)`` child stream,
    so replaying a run replays its sheds exactly, regardless of how
    many decisions earlier runs consumed (``reset`` rewinds the index).
    """

    name = "random"

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._decision = 0

    def reset(self) -> None:
        self._decision = 0

    def order(
        self, waiting: Sequence[Request], now: float
    ) -> list[Request]:
        rng = ensure_rng(
            np.random.SeedSequence(
                (self.seed, _STREAM_RANDOM_SHED, self._decision)
            )
        )
        self._decision += 1
        # Sort first so the permutation is over a canonical order — the
        # caller's iteration order cannot perturb the draw.
        ordered = sorted(waiting, key=lambda r: r.request_id)
        perm = rng.permutation(len(ordered))
        return [ordered[i] for i in perm]


class TenantWeightedShed(SheddingPolicy):
    """Shed low-weight tenants' requests first.

    Requests carry their tenant's SLO-class weight (stamped by the
    workload generator or :meth:`TCBServer.submit`), so ordering by
    ascending weight sheds a batch tenant's backlog before touching a
    premium tenant's — within one weight tier the lowest-utility
    (longest) requests go first, same rationale as
    :class:`LowestUtilityFirst`.
    """

    name = "tenant-weighted"

    def order(
        self, waiting: Sequence[Request], now: float
    ) -> list[Request]:
        return sorted(
            waiting, key=lambda r: (r.weight, r.utility, r.request_id)
        )


_POLICIES = {
    LowestUtilityFirst.name: LowestUtilityFirst,
    LatestDeadlineFirst.name: LatestDeadlineFirst,
    RandomShed.name: RandomShed,
    TenantWeightedShed.name: TenantWeightedShed,
}


def make_shedder(name: str, *, seed: int = 0) -> SheddingPolicy:
    """Instantiate a shedding policy by name (CLI / experiment plumbing)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown shedding policy {name!r}; expected one of "
            f"{sorted(_POLICIES)}"
        )
    return cls(seed=seed) if cls is RandomShed else cls()
