"""Metrics-ledger helpers — the only sanctioned shed/drop call sites.

The conservation invariant ``served + expired + rejected + abandoned ==
arrived`` only survives load shedding if every removal from the wait
queue lands in exactly one terminal ledger *and* one trace terminal.
These helpers are the single place that does all three bookkeeping
steps together; tcblint rule TCB008 bans bare ``queue.drop`` /
``queue.take`` call sites (and direct ``_waiting`` splices) everywhere
else in ``repro/serving/``, ``repro/scheduling/queue.py`` and
``repro/overload/``, so a shed can never silently lose a request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.obs.recorder import NO_TRACE
from repro.scheduling.queue import RequestQueue
from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.serving.metrics import ServingMetrics

__all__ = ["drop_unservable", "shed_requests"]


def shed_requests(
    queue: RequestQueue,
    metrics: "ServingMetrics",
    victims: Sequence[Request],
    now: float,
    tracer=NO_TRACE,
    *,
    policy: str = "",
    reason: str = "queue-pressure",
) -> list[Request]:
    """Shed *victims* from the wait queue as ``rejected``-class terminals.

    Requests not (or no longer) in the queue are skipped, so the caller
    may pass a stale victim list without double-counting.  Returns the
    requests actually shed.
    """
    taken = queue.take(victims)
    if not taken:
        return []
    metrics.rejected.extend(taken)
    metrics.shed += len(taken)
    if tracer.enabled:
        for r in taken:
            tracer.rejected(r, now)
        tracer.overload(
            now,
            "shed",
            count=len(taken),
            tokens=sum(r.length for r in taken),
            policy=policy,
            reason=reason,
        )
    return taken


def drop_unservable(
    queue: RequestQueue,
    requests: Sequence[Request],
    now: float,
    tracer=NO_TRACE,
) -> None:
    """Drop structurally unservable requests (longer than a batch row).

    They count as ``expired``-class failures — same ledger as deadline
    expiry — because no amount of waiting could have served them
    (Eq. 11's row capacity).
    """
    queue.drop(requests)
    if tracer.enabled:
        tracer.expired(requests, now)
