"""Overload management: backpressure, shedding, breakers, degradation.

The paper's DAS analysis (Theorem 5.1) holds while the wait queue stays
tractable; under sustained overload an unbounded queue lets goodput
collapse past the saturation knee — slots are spent on requests that
expire mid-service.  This package adds the production-serving overload
plane on top of the deadline-aware core, all on the simulated clock:

- :mod:`~repro.overload.backpressure` — bounded-queue limits and the
  typed :class:`QueuePressure` signal (no silent unbounded growth),
- :mod:`~repro.overload.shedding` — pluggable victim-selection policies
  invoked on pressure (lowest-utility-first, latest-deadline-first,
  seeded random baseline),
- :mod:`~repro.overload.breaker` — per-engine circuit breaker
  (closed → open → half-open) driven by the fault plane's typed
  failures,
- :mod:`~repro.overload.controller` — the hysteresis degradation state
  machine (NORMAL → SHED → BROWNOUT) that ties the pieces together and
  is what the serving loops accept via their ``overload=`` keyword,
- :mod:`~repro.overload.ledger` — the *only* sanctioned path for
  removing live requests from a wait queue outside the
  served/expired/abandoned flows (tcblint rule TCB008), keeping the
  conservation invariant ``served + expired + rejected + abandoned ==
  arrived`` exact under shedding.

Everything is deterministic from ``(config, seed)`` and disabled by
default: a loop run with ``overload=None`` (or an all-default
:class:`OverloadConfig`) is bit-identical to the pre-overload
behaviour.  See ``docs/overload.md``.
"""

from repro.overload.backpressure import (
    BackpressureError,
    QueueLimits,
    QueuePressure,
)
from repro.overload.breaker import (
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.overload.controller import (
    DegradationConfig,
    OverloadConfig,
    OverloadController,
    ServiceLevel,
)
from repro.overload.ledger import drop_unservable, shed_requests
from repro.overload.shedding import (
    LatestDeadlineFirst,
    LowestUtilityFirst,
    RandomShed,
    SheddingPolicy,
    TenantWeightedShed,
    make_shedder,
)

__all__ = [
    "BackpressureError",
    "QueueLimits",
    "QueuePressure",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "DegradationConfig",
    "OverloadConfig",
    "OverloadController",
    "ServiceLevel",
    "SheddingPolicy",
    "LowestUtilityFirst",
    "LatestDeadlineFirst",
    "RandomShed",
    "TenantWeightedShed",
    "make_shedder",
    "drop_unservable",
    "shed_requests",
]
