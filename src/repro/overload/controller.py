"""The overload controller: degradation state machine + composition.

One :class:`OverloadController` per serving run ties the overload plane
together for the loops (which accept it via their ``overload=``
keyword):

- **bounded queue** — on every scheduling opportunity the controller
  reads the queue's :class:`~repro.overload.backpressure.QueuePressure`
  and sheds victims (chosen by the configured
  :class:`~repro.overload.shedding.SheddingPolicy`) through the
  conservation-preserving ledger helper,
- **degradation** — a hysteresis state machine NORMAL → SHED → BROWNOUT
  keyed on queue delay and the rolling deadline-miss rate.  SHED and
  BROWNOUT tighten admission (a minimum-slack floor on arrivals);
  BROWNOUT additionally shrinks the effective batch budget so slot
  latency — and with it tail latency — contracts instead of exploding,
- **circuit breakers** — one per engine index, driven by the typed
  fault outcomes the loops already observe.

All state advances on the simulated clock only, every transition is
recorded (and emitted as a typed overload span when tracing), and the
whole plane is inert by default: an all-default
:class:`OverloadConfig` never sheds, never trips, never degrades.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs.recorder import NO_TRACE
from repro.overload.backpressure import QueueLimits
from repro.overload.breaker import BreakerConfig, CircuitBreaker
from repro.overload.ledger import shed_requests
from repro.overload.shedding import LowestUtilityFirst, SheddingPolicy
from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.queue import RequestQueue
    from repro.serving.metrics import ServingMetrics

__all__ = [
    "DegradationConfig",
    "LevelTransition",
    "OverloadConfig",
    "OverloadController",
    "ServiceLevel",
]


class ServiceLevel(enum.IntEnum):
    """Ordered degradation levels (int-comparable)."""

    NORMAL = 0
    SHED = 1
    BROWNOUT = 2

    @property
    def label(self) -> str:
        return self.name.lower()


NORMAL = ServiceLevel.NORMAL
SHED = ServiceLevel.SHED
BROWNOUT = ServiceLevel.BROWNOUT


@dataclass(frozen=True)
class DegradationConfig:
    """Thresholds of the NORMAL → SHED → BROWNOUT state machine.

    Enter thresholds must exceed exit thresholds (that gap *is* the
    hysteresis: a system hovering at the boundary does not flap).  The
    level is the max over the two signals — queue delay (age of the
    oldest waiting request, seconds) and the rolling deadline-miss rate
    over the last ``miss_window`` terminal outcomes.
    """

    shed_enter_delay: float = 1.0
    shed_exit_delay: float = 0.5
    brownout_enter_delay: float = 2.0
    brownout_exit_delay: float = 1.0
    miss_window: int = 64
    # Minimum outcomes before the miss-rate signal is trusted.
    min_window: int = 16
    shed_enter_miss: float = 0.4
    shed_exit_miss: float = 0.2
    brownout_enter_miss: float = 0.7
    brownout_exit_miss: float = 0.4
    # BROWNOUT keeps this fraction of each packed batch / token budget.
    brownout_batch_fraction: float = 0.5
    # Admission floors: arrivals with less slack are refused while
    # degraded (0.0 = no tightening, the inert default).
    shed_min_slack: float = 0.0
    brownout_min_slack: float = 0.0

    def __post_init__(self) -> None:
        pairs = (
            (self.shed_enter_delay, self.shed_exit_delay, "shed delay"),
            (self.brownout_enter_delay, self.brownout_exit_delay, "brownout delay"),
            (self.shed_enter_miss, self.shed_exit_miss, "shed miss"),
            (self.brownout_enter_miss, self.brownout_exit_miss, "brownout miss"),
        )
        for enter, exit_, label in pairs:
            if exit_ > enter:
                raise ValueError(
                    f"{label}: exit threshold {exit_} exceeds enter {enter} "
                    "(hysteresis requires exit <= enter)"
                )
        if self.shed_enter_delay > self.brownout_enter_delay:
            raise ValueError("brownout delay threshold below shed threshold")
        if self.miss_window < 1 or self.min_window < 1:
            raise ValueError("miss_window and min_window must be >= 1")
        if not 0.0 < self.brownout_batch_fraction <= 1.0:
            raise ValueError(
                "brownout_batch_fraction must be in (0, 1], got "
                f"{self.brownout_batch_fraction}"
            )
        if self.shed_min_slack < 0.0 or self.brownout_min_slack < 0.0:
            raise ValueError("admission slack floors must be >= 0")


@dataclass(frozen=True)
class LevelTransition:
    """One degradation-level change, on the simulated clock."""

    t: float
    old: str
    new: str
    reason: str


@dataclass(frozen=True)
class OverloadConfig:
    """What the overload plane does; all-default = fully inert."""

    limits: QueueLimits = field(default_factory=QueueLimits)
    shedding: Optional[SheddingPolicy] = None
    breaker: Optional[BreakerConfig] = None
    degradation: Optional[DegradationConfig] = None

    @property
    def inert(self) -> bool:
        return (
            self.limits.unbounded
            and self.breaker is None
            and self.degradation is None
        )


class OverloadController:
    """Per-run overload state; construct once, pass via ``overload=``."""

    def __init__(self, config: Optional[OverloadConfig] = None):
        self.config = config or OverloadConfig()
        self._shedder: SheddingPolicy = (
            self.config.shedding or LowestUtilityFirst()
        )
        self.begin_run()

    # ------------------------------------------------------------------ #
    # Run lifecycle
    # ------------------------------------------------------------------ #

    def begin_run(self) -> None:
        """Reset per-run state (the loops call this at run start)."""
        self.level: ServiceLevel = NORMAL
        self.transitions: list[LevelTransition] = []
        self.shed_total = 0
        self.denied = 0
        self._outcomes: deque[int] = deque(
            maxlen=(
                self.config.degradation.miss_window
                if self.config.degradation is not None
                else 1
            )
        )
        self._breakers: dict[int, CircuitBreaker] = {}
        self._shedder.reset()

    # ------------------------------------------------------------------ #
    # Degradation state machine
    # ------------------------------------------------------------------ #

    @property
    def miss_rate(self) -> float:
        d = self.config.degradation
        if d is None or len(self._outcomes) < d.min_window:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def observe_outcomes(self, *, served: int = 0, missed: int = 0) -> None:
        """Feed terminal outcomes into the rolling miss window."""
        if self.config.degradation is None:
            return
        self._outcomes.extend([0] * served)
        self._outcomes.extend([1] * missed)

    @staticmethod
    def _signal_level(
        value: float,
        current: ServiceLevel,
        enter_shed: float,
        exit_shed: float,
        enter_brown: float,
        exit_brown: float,
    ) -> ServiceLevel:
        if current >= BROWNOUT:
            if value >= exit_brown:
                return BROWNOUT
            return SHED if value >= exit_shed else NORMAL
        if current >= SHED:
            if value >= enter_brown:
                return BROWNOUT
            return SHED if value >= exit_shed else NORMAL
        if value >= enter_brown:
            return BROWNOUT
        return SHED if value >= enter_shed else NORMAL

    def update(self, now: float, queue: "RequestQueue", tracer=NO_TRACE) -> ServiceLevel:
        """Re-evaluate the service level from the current signals."""
        d = self.config.degradation
        if d is None:
            return self.level
        delay = queue.queue_delay(now)
        miss = self.miss_rate
        by_delay = self._signal_level(
            delay,
            self.level,
            d.shed_enter_delay,
            d.shed_exit_delay,
            d.brownout_enter_delay,
            d.brownout_exit_delay,
        )
        by_miss = self._signal_level(
            miss,
            self.level,
            d.shed_enter_miss,
            d.shed_exit_miss,
            d.brownout_enter_miss,
            d.brownout_exit_miss,
        )
        new = max(by_delay, by_miss)
        if new != self.level:
            reason = f"queue_delay={delay:.6f} miss_rate={miss:.6f}"
            self.transitions.append(
                LevelTransition(
                    t=now, old=self.level.label, new=new.label, reason=reason
                )
            )
            if tracer.enabled:
                tracer.overload(
                    now,
                    "level",
                    old=self.level.label,
                    new=new.label,
                    queue_delay=delay,
                    miss_rate=miss,
                )
            self.level = new
        return self.level

    def admit(self, request: Request, now: float) -> bool:
        """Degradation-tightened admission (on top of any controller)."""
        d = self.config.degradation
        if d is None or self.level <= NORMAL:
            return True
        floor = (
            d.brownout_min_slack if self.level >= BROWNOUT else d.shed_min_slack
        )
        if request.slack(now) >= floor:
            return True
        self.denied += 1
        return False

    def cap_batch(self, selected: list[Request]) -> list[Request]:
        """Shrink the effective batch budget under BROWNOUT."""
        d = self.config.degradation
        if d is None or self.level < BROWNOUT or not selected:
            return selected
        keep = max(1, int(len(selected) * d.brownout_batch_fraction))
        return selected[:keep]

    def scale_budget(self, budget: int) -> int:
        """BROWNOUT token budget for iteration-level admission."""
        d = self.config.degradation
        if d is None or self.level < BROWNOUT:
            return budget
        return max(1, int(budget * d.brownout_batch_fraction))

    # ------------------------------------------------------------------ #
    # Bounded queue + shedding
    # ------------------------------------------------------------------ #

    def maybe_shed(
        self,
        queue: "RequestQueue",
        metrics: "ServingMetrics",
        now: float,
        tracer=NO_TRACE,
    ) -> list[Request]:
        """Shed back under the queue limits; returns the victims."""
        if self.config.limits.unbounded:
            return []
        pressure = queue.pressure(self.config.limits)
        if not pressure.overloaded:
            return []
        victims = self._shedder.select_victims(
            queue.waiting(now), pressure, now
        )
        taken = shed_requests(
            queue,
            metrics,
            victims,
            now,
            tracer,
            policy=self._shedder.name,
            reason="queue-pressure",
        )
        self.shed_total += len(taken)
        return taken

    # ------------------------------------------------------------------ #
    # Circuit breakers
    # ------------------------------------------------------------------ #

    def breaker(self, engine: int) -> Optional[CircuitBreaker]:
        if self.config.breaker is None:
            return None
        br = self._breakers.get(engine)
        if br is None:
            br = CircuitBreaker(self.config.breaker, engine=engine)
            self._breakers[engine] = br
        return br

    def _emit_breaker(self, br: CircuitBreaker, tracer, before: int) -> None:
        if tracer.enabled:
            for t in br.transitions[before:]:
                tracer.overload(
                    t.t,
                    "breaker",
                    engine=t.engine,
                    old=t.old,
                    new=t.new,
                    reason=t.reason,
                )

    def breaker_allow(self, engine: int, now: float, tracer=NO_TRACE) -> bool:
        """May the loop dispatch to *engine* now?  True without breakers."""
        br = self.breaker(engine)
        if br is None:
            return True
        before = len(br.transitions)
        allowed = br.allow(now)
        self._emit_breaker(br, tracer, before)
        return allowed

    def breaker_retry_at(self, engine: int) -> float:
        br = self.breaker(engine)
        return 0.0 if br is None else br.retry_at

    def record_result(
        self,
        engine: int,
        now: float,
        *,
        ok: bool,
        kind: str = "failure",
        tracer=NO_TRACE,
    ) -> None:
        """Feed one slot outcome into *engine*'s breaker (if any)."""
        br = self.breaker(engine)
        if br is None:
            return
        before = len(br.transitions)
        if ok:
            br.record_success(now)
        else:
            br.record_failure(now, kind=kind)
        self._emit_breaker(br, tracer, before)

    # ------------------------------------------------------------------ #
    # Audit trail
    # ------------------------------------------------------------------ #

    def transition_log(self) -> list[tuple]:
        """Level + breaker transitions, merged and deterministically ordered."""
        rows: list[tuple] = [
            ("level", t.t, -1, t.old, t.new, t.reason)
            for t in self.transitions
        ]
        for engine in sorted(self._breakers):
            rows.extend(
                ("breaker", t.t, engine, t.old, t.new, t.reason)
                for t in self._breakers[engine].transitions
            )
        rows.sort(key=lambda r: (r[1], r[0], r[2]))
        return rows
