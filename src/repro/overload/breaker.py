"""Per-engine circuit breaker on the simulated clock.

The fault plane (PR 2) surfaces engine misbehaviour as typed outcomes —
:class:`~repro.faults.outcomes.BatchFailure` and
:class:`~repro.faults.outcomes.EngineDown`.  The breaker turns *rates*
of those outcomes into a dispatch gate:

- ``CLOSED`` — healthy; every slot may dispatch.  ``failure_threshold``
  consecutive failed slots trip the breaker.
- ``OPEN`` — the engine is quarantined until ``now + recovery_time``;
  :meth:`allow` answers False so the loops stop feeding it (the cluster
  re-arms the engine's heap entry at ``retry_at`` instead of burning
  slots on a sick replica).
- ``HALF_OPEN`` — entered on the first :meth:`allow` at/after
  ``retry_at``; probe batches are admitted one at a time.
  ``half_open_probes`` consecutive successes close the breaker; any
  failure re-opens it immediately.

Everything is a pure function of the (simulated) times fed in, so a
seeded fault plan replays an identical transition log — the property
``tests/test_overload.py`` pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds for one engine's breaker."""

    # Consecutive failed slots that trip CLOSED -> OPEN.
    failure_threshold: int = 3
    # Simulated seconds an OPEN breaker refuses dispatch.
    recovery_time: float = 1.0
    # Consecutive HALF_OPEN probe successes needed to close.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.recovery_time <= 0.0:
            raise ValueError(
                f"recovery_time must be positive, got {self.recovery_time}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, on the simulated clock."""

    t: float
    engine: int
    old: str
    new: str
    reason: str


@dataclass
class CircuitBreaker:
    """closed → open → half-open state machine for one engine."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    engine: int = 0

    def __post_init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.retry_at = 0.0
        self.transitions: list[BreakerTransition] = []
        self._consecutive_failures = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------ #

    def _move(
        self, now: float, new: BreakerState, reason: str
    ) -> None:
        self.transitions.append(
            BreakerTransition(
                t=now,
                engine=self.engine,
                old=self.state.value,
                new=new.value,
                reason=reason,
            )
        )
        self.state = new

    def allow(self, now: float) -> bool:
        """May a slot dispatch to this engine at simulated time *now*?

        An OPEN breaker whose recovery interval has elapsed moves to
        HALF_OPEN here (the check *is* the probe admission).
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now < self.retry_at:
                return False
            self._probe_successes = 0
            self._move(now, BreakerState.HALF_OPEN, "recovery elapsed")
            return True
        return True  # HALF_OPEN: admit the probe

    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._move(now, BreakerState.CLOSED, "probes succeeded")

    def record_failure(self, now: float, *, kind: str = "failure") -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.retry_at = now + self.config.recovery_time
            self._consecutive_failures = 0
            self._move(now, BreakerState.OPEN, f"probe failed ({kind})")
            return
        self._consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self.retry_at = now + self.config.recovery_time
            self._consecutive_failures = 0
            self._move(
                now,
                BreakerState.OPEN,
                f"{self.config.failure_threshold} consecutive failures "
                f"({kind})",
            )

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(engine={self.engine}, state={self.state.value}, "
            f"retry_at={self.retry_at:g})"
        )
