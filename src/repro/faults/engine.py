"""Fault-injecting wrapper over any :class:`~repro.engine.base.InferenceEngine`.

``FaultyEngine`` sits between a serving loop and a real engine and
consults a :class:`~repro.faults.plan.FaultPlan` once per ``serve()``
call.  Healthy slots pass straight through — with an all-zero fault
config the wrapper is a bit-identical no-op (tested against the cluster
and golden suites) — while faulty slots surface as typed outcomes:

- ``FAILURE`` → :class:`~repro.faults.outcomes.BatchFailure` after the
  batch's latency was consumed (the work is lost, the time is not),
- ``OOM`` → :class:`BatchFailure(kind="oom")` *iff* the packed tokens
  exceed the configured fraction of the batch capacity; only the launch
  overhead is consumed, and halving the batch is guaranteed to
  eventually duck under the threshold,
- ``STRAGGLER`` → a normal result with multiplied latency,
- ``CRASH`` → :class:`~repro.faults.outcomes.EngineDown` with a
  recovery time; further calls before ``down_until`` are refused with
  another ``EngineDown`` (no silent zombie serving).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.layout import BatchLayout
from repro.engine.base import BatchResult, InferenceEngine
from repro.faults.outcomes import BatchFailure, EngineDown
from repro.faults.plan import FaultKind, FaultPlan
from repro.types import Request

__all__ = ["FaultyEngine"]


class FaultyEngine(InferenceEngine):
    """Wrap ``inner`` so that serving sees faults from ``fault_plan``."""

    name = "faulty"

    def __init__(self, inner: InferenceEngine, fault_plan: FaultPlan):
        super().__init__(inner.batch, mode=inner.mode, cost_model=inner.cost_model)
        self.inner = inner
        self.fault_plan = fault_plan
        # Plan index: one event per serve() attempt (retries draw fresh
        # events, so a retried batch can fail again — or straggle).
        self.serve_calls = 0
        self.straggler_events = 0
        self.down_until = 0.0

    # ------------------------------------------------------------------ #

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        return self.inner.plan(requests)

    def serve(
        self, requests: Sequence[Request], *, now: float = 0.0
    ) -> BatchResult:
        if not requests:
            return self.inner.serve(requests)
        if now < self.down_until:
            # Still recovering from an earlier crash: refuse the work.
            raise EngineDown(self.down_until, requests)
        if self.fault_plan.config.is_zero:
            return self.inner.serve(requests)

        event = self.fault_plan.event(self.serve_calls)
        self.serve_calls += 1
        kind = event.kind

        if kind is FaultKind.CRASH:
            self.down_until = now + event.downtime
            raise EngineDown(self.down_until, requests, downtime=event.downtime)
        if kind is FaultKind.OOM:
            tokens = sum(r.length for r in requests)
            budget = self.fault_plan.config.oom_threshold * self.batch.capacity_tokens
            if tokens > budget:
                # Allocation failed before any compute: only the launch
                # overhead is wasted.  A halved batch re-tests the budget.
                raise BatchFailure(
                    "oom", self.cost_model.fixed_per_batch, requests
                )
            kind = FaultKind.NONE  # small batch: the allocation fits

        result = self.inner.serve(requests)
        if kind is FaultKind.FAILURE:
            # The batch ran (and took its time) but produced nothing.
            raise BatchFailure("failure", result.latency, requests)
        if kind is FaultKind.STRAGGLER:
            self.straggler_events += 1
            result.latency *= event.multiplier
        return result

    @property
    def is_down(self) -> bool:
        """Whether the engine is inside a crash recovery window.

        Time-dependent: true relative to the last ``now`` it refused or
        crashed at; callers compare ``down_until`` to their own clock.
        """
        return self.down_until > 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyEngine({self.inner!r}, plan={self.fault_plan!r})"
