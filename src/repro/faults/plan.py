"""Seeded, deterministic fault plans for chaos-testing the serving loops.

A :class:`FaultPlan` is the single source of injected misbehaviour: for
each engine-slot index it decides — reproducibly, from the seed alone —
whether that slot fails outright, straggles, hits a transient OOM, or
crashes the engine.  Determinism matters more than realism here: a
chaos benchmark is only debuggable if the exact same fault sequence can
be replayed from ``(config, seed)``, so each slot's event is derived
from an independent per-index stream (query order cannot perturb it).

The plan is policy-free: it only *describes* faults.  How a serving
loop recovers (requeue, split-batch retry, failover) lives in
:mod:`repro.faults.recovery` and the loops themselves.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.rng import ensure_rng

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultConfig",
    "FaultConfigError",
    "FaultPlan",
    "SchedulerCrash",
    "SchedulerCrashed",
]


class FaultConfigError(ValueError):
    """An ill-formed fault plan configuration or event.

    Subclasses ``ValueError`` so existing ``except ValueError`` guards
    keep working; callers who want to distinguish chaos-plan mistakes
    from other argument errors catch this type.
    """

# Stream-domain tag mixed into every SeedSequence key below.  Each
# consumer of per-index child streams owns a distinct tag so two
# components sharing an experiment seed can never consume the same
# stream (tcblint TCB011); the shedding policies use a different tag.
_STREAM_FAULT_PLAN = 0xFA
# Scheduler-crash step draws use their own domain tag: a crash plan and
# a fault plan sharing one experiment seed must stay independent.
_STREAM_SCHEDULER_CRASH = 0xCC


class FaultKind(enum.Enum):
    """What goes wrong in one engine slot."""

    NONE = "none"
    FAILURE = "failure"  # batch fails after consuming its latency
    STRAGGLER = "straggler"  # batch completes, latency multiplied
    OOM = "oom"  # transient alloc failure if the batch packs too many tokens
    CRASH = "crash"  # engine goes down for a recovery interval


@dataclass(frozen=True)
class FaultEvent:
    """One slot's injected fault (``NONE`` for the healthy common case).

    Shape parameters are validated against the kind: a ``NONE`` event
    must be truly inert (a "zero-probability" slot cannot smuggle in a
    latency multiplier or downtime), a ``STRAGGLER`` must actually
    inflate latency, and a ``CRASH`` must carry a positive recovery
    interval — otherwise downstream accounting silently degrades.
    """

    kind: FaultKind = FaultKind.NONE
    # Latency multiplier; only meaningful for STRAGGLER events.
    multiplier: float = 1.0
    # Engine recovery interval in seconds; only meaningful for CRASH.
    downtime: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.multiplier) or not math.isfinite(
            self.downtime
        ):
            raise FaultConfigError(
                f"fault event parameters must be finite, got "
                f"multiplier={self.multiplier}, downtime={self.downtime}"
            )
        if self.kind is FaultKind.STRAGGLER:
            if self.multiplier < 1.0:
                raise FaultConfigError(
                    f"straggler multiplier must be >= 1, "
                    f"got {self.multiplier}"
                )
        elif self.multiplier != 1.0:
            raise FaultConfigError(
                f"{self.kind.value} event cannot carry a latency "
                f"multiplier ({self.multiplier})"
            )
        if self.kind is FaultKind.CRASH:
            if self.downtime <= 0.0:
                raise FaultConfigError(
                    f"crash downtime must be positive, got {self.downtime}"
                )
        elif self.downtime != 0.0:
            raise FaultConfigError(
                f"{self.kind.value} event cannot carry a downtime "
                f"({self.downtime})"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Per-slot fault probabilities and shape parameters.

    The four rates are mutually exclusive per slot (at most one fault
    kind fires), so they must sum to at most 1.  ``oom_threshold`` is
    the fraction of the batch token capacity above which an OOM event
    actually aborts the batch — small batches survive the same draw,
    which is what makes split-batch retry converge.
    """

    failure_rate: float = 0.0
    straggler_rate: float = 0.0
    oom_rate: float = 0.0
    crash_rate: float = 0.0
    # Straggler latency multiplier is drawn uniformly from this range.
    straggler_multiplier: tuple[float, float] = (2.0, 6.0)
    # Mean crash downtime; actual downtime is uniform in [0.5, 1.5]×this.
    downtime: float = 1.0
    oom_threshold: float = 0.5

    def __post_init__(self) -> None:
        rates = (
            self.failure_rate,
            self.straggler_rate,
            self.oom_rate,
            self.crash_rate,
        )
        for r in rates:
            if not 0.0 <= r <= 1.0:
                raise FaultConfigError(
                    f"fault rates must be in [0, 1], got {r}"
                )
        if sum(rates) > 1.0 + 1e-12:
            raise FaultConfigError(f"fault rates sum to {sum(rates)} > 1")
        lo, hi = self.straggler_multiplier
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise FaultConfigError(
                f"straggler_multiplier range must be finite, got ({lo}, {hi})"
            )
        if lo < 1.0 or hi < lo:
            raise FaultConfigError(
                f"straggler_multiplier range must satisfy 1 <= lo <= hi, "
                f"got ({lo}, {hi})"
            )
        if self.downtime <= 0.0 or not math.isfinite(self.downtime):
            raise FaultConfigError(
                f"downtime must be positive and finite, got {self.downtime}"
            )
        if not 0.0 < self.oom_threshold <= 1.0:
            raise FaultConfigError(
                f"oom_threshold must be in (0, 1], got {self.oom_threshold}"
            )

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (healthy passthrough)."""
        return (
            self.failure_rate == 0.0
            and self.straggler_rate == 0.0
            and self.oom_rate == 0.0
            and self.crash_rate == 0.0
        )

    @classmethod
    def chaos(cls, rate: float, **overrides) -> "FaultConfig":
        """One-knob preset: ``rate`` is the total per-slot fault
        probability, split 40/30/20/10 across failure / straggler /
        OOM / crash (ordered from most to least common in real fleets).
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(f"rate must be in [0, 1], got {rate}")
        return cls(
            failure_rate=0.4 * rate,
            straggler_rate=0.3 * rate,
            oom_rate=0.2 * rate,
            crash_rate=0.1 * rate,
            **overrides,
        )


class SchedulerCrashed(RuntimeError):
    """A serving loop was killed mid-step by a :class:`SchedulerCrash`.

    Raised by the durability plane at the planned crash point; carries
    where the loop died so the recovery harness (and the differential
    report) can name the boundary being resolved.
    """

    def __init__(self, step: int, phase: str):
        super().__init__(
            f"scheduler process crashed at step {step} ({phase})"
        )
        self.step = step
        self.phase = phase


@dataclass(frozen=True)
class SchedulerCrash:
    """Kill the *scheduler process* at a planned point, not an engine.

    ``step`` is the serving-loop step index at which the crash fires;
    ``phase`` says where inside the step:

    - ``"step"`` — at the step boundary, right after the previous step
      committed (the clean case: no trailing journal records),
    - ``"dispatch"`` — after a batch's write-ahead dispatch record is
      journalled but before the engine runs it (the hard case: restore
      must void the in-flight dispatch and re-execute it).

    A crash fires at most once; a restored run disarms it.
    """

    step: int
    phase: str = "step"

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"crash step must be >= 0, got {self.step}")
        if self.phase not in ("step", "dispatch"):
            raise ValueError(
                f"crash phase must be 'step' or 'dispatch', got {self.phase!r}"
            )

    @classmethod
    def seeded(
        cls, seed: int, *, max_step: int, phase: str = "step"
    ) -> "SchedulerCrash":
        """Draw the crash step from ``(seed, domain, 0)`` — replayable.

        ``max_step`` bounds the draw (exclusive); the same seed always
        kills the same step, independent of anything else the seed
        feeds (distinct stream-domain tag, tcblint TCB011).
        """
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        if max_step < 1:
            raise ValueError(f"max_step must be >= 1, got {max_step}")
        rng = ensure_rng(
            np.random.SeedSequence((int(seed), _STREAM_SCHEDULER_CRASH, 0))
        )
        return cls(step=int(rng.integers(0, max_step)), phase=phase)


class FaultPlan:
    """Deterministic map from engine-slot index to :class:`FaultEvent`.

    Each index gets its own child stream seeded by ``(seed,
    stream-domain, index)``, so ``plan.event(i)`` is a pure function of
    ``(config, seed, i)`` — two plans with equal seeds produce identical
    event sequences no matter how (or in what order) they are queried.
    The stream-domain tag keeps the plan's streams disjoint from every
    other seeded component in the same experiment.
    """

    def __init__(self, config: FaultConfig, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.config = config
        self.seed = int(seed)
        self._cache: dict[int, FaultEvent] = {}

    def event(self, index: int) -> FaultEvent:
        """The fault event for engine slot ``index`` (cached)."""
        if index < 0:
            raise ValueError(f"slot index must be >= 0, got {index}")
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        event = self._draw(index)
        self._cache[index] = event
        return event

    def _draw(self, index: int) -> FaultEvent:
        c = self.config
        if c.is_zero:
            return FaultEvent()
        rng = ensure_rng(
            np.random.SeedSequence((self.seed, _STREAM_FAULT_PLAN, index))
        )
        u = float(rng.uniform())
        edge = c.failure_rate
        if u < edge:
            return FaultEvent(kind=FaultKind.FAILURE)
        edge += c.straggler_rate
        if u < edge:
            lo, hi = c.straggler_multiplier
            return FaultEvent(
                kind=FaultKind.STRAGGLER,
                multiplier=float(rng.uniform(lo, hi)),
            )
        edge += c.oom_rate
        if u < edge:
            return FaultEvent(kind=FaultKind.OOM)
        edge += c.crash_rate
        if u < edge:
            return FaultEvent(
                kind=FaultKind.CRASH,
                downtime=float(rng.uniform(0.5, 1.5)) * c.downtime,
            )
        return FaultEvent()

    def events(self, n: int) -> list[FaultEvent]:
        """Materialise the first ``n`` slots' events."""
        return [self.event(i) for i in range(n)]

    def counts(self, n: int) -> dict[str, int]:
        """Histogram of fault kinds over the first ``n`` slots."""
        out = {kind.value: 0 for kind in FaultKind}
        for e in self.events(n):
            out[e.kind.value] += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, config={self.config})"
