"""Recovery policies: bounded deadline-aware requeue and split-batch retry.

The interesting part of fault tolerance under DAS is that a retried
request has *less* slack than it had on first dispatch, so requeueing is
not free: a request that can no longer finish even as a solo minimal
batch (priced by the :class:`~repro.engine.cost_model.GPUCostModel`,
same feasibility rule the admission controller uses) is **abandoned**
rather than allowed to clog the queue until it expires.  Retries are
also bounded per request, so a poisonous batch cannot livelock a loop.

Two layers:

- :func:`serve_slot` — drives one engine slot, transparently applying
  split-batch retry on transient OOM (halve and re-serve; the dropped
  half simply stays in the wait queue), and normalising success,
  terminal failure and crash into a :class:`SlotOutcome` value.
- :func:`requeue_failed` — the post-failure queue policy shared by all
  serving loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.engine.base import MIN_SLOT, BatchResult, InferenceEngine
from repro.engine.cost_model import GPUCostModel
from repro.faults.outcomes import BatchFailure, EngineDown
from repro.scheduling.queue import RequestQueue
from repro.types import Request

__all__ = ["RetryPolicy", "SlotOutcome", "serve_slot", "requeue_failed"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deadline-aware requeue policy for failed requests."""

    # How many failed attempts may be requeued per request before it is
    # abandoned (max_retries=2 allows three attempts in total).
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def triage(
        self,
        requests: Sequence[Request],
        now: float,
        cost_model: GPUCostModel,
        attempts: Mapping[int, int],
    ) -> tuple[list[Request], list[Request]]:
        """Split failed requests into (requeue, abandon).

        A request is abandoned when it exceeded the retry budget or when
        even the quickest possible service — a solo minimal batch priced
        by the cost model — can no longer meet its deadline from ``now``.
        """
        retained: list[Request] = []
        abandoned: list[Request] = []
        for r in requests:
            quickest = cost_model.batch_time(r.length, r.length**2)
            if attempts.get(r.request_id, 0) > self.max_retries:
                abandoned.append(r)
            elif r.slack(now) < quickest:
                abandoned.append(r)
            else:
                retained.append(r)
        return retained, abandoned


@dataclass
class SlotOutcome:
    """What one engine slot amounted to, faults and retries included."""

    # Successful result, or None when the slot terminally failed.
    result: Optional[BatchResult] = None
    # Requests in the final attempt (halving may have shrunk the batch).
    batch: list[Request] = field(default_factory=list)
    # Engine time consumed by failed attempts (wasted GPU time).
    wasted: float = 0.0
    # Number of failed attempts (BatchFailure events).
    failures: int = 0
    # Requests re-served by OOM halving (they count as retries).
    split_retries: int = 0
    # Requests of the terminally failed attempt (needs requeue triage).
    failed: list[Request] = field(default_factory=list)
    # Set when the engine crashed: simulated time it rejoins, and the
    # outage length this crash opened.
    down_until: Optional[float] = None
    downtime: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


def serve_slot(
    engine: InferenceEngine, selected: Sequence[Request], now: float
) -> SlotOutcome:
    """Serve one slot with split-batch OOM retry; never raises.

    Healthy engines take the fast path (no fault outcome is ever
    raised, so this is a transparent call).  On a transient OOM the
    batch is halved and re-served — the dropped half stays in the wait
    queue for a later slot — which terminates because the fault model
    only aborts batches packing more tokens than the OOM threshold.
    Each re-serve consumes a fresh fault-plan event, so retried batches
    can fail again; terminal failures and crashes are returned, not
    raised, so serving loops handle them in one place.
    """
    batch = list(selected)
    wasted = 0.0
    failures = 0
    split_retries = 0
    while True:
        try:
            result = engine.serve(batch, now=now + wasted)
        except BatchFailure as failure:
            failures += 1
            wasted += max(failure.latency, MIN_SLOT)
            if failure.kind == "oom" and len(batch) > 1:
                # Ceil-half: an odd batch keeps its larger half, so the
                # ladder is 5 -> 3 -> 2 -> 1 (floor-halving 5 -> 2 -> 1
                # dropped more than half on odd sizes).  Still strictly
                # decreasing for len > 1, so the retry terminates.
                batch = batch[: (len(batch) + 1) // 2]
                split_retries += len(batch)
                continue
            return SlotOutcome(
                batch=batch,
                wasted=wasted,
                failures=failures,
                split_retries=split_retries,
                failed=list(failure.requests),
            )
        except EngineDown as down:
            return SlotOutcome(
                batch=batch,
                wasted=wasted,
                failures=failures,
                split_retries=split_retries,
                failed=list(down.requests),
                down_until=down.down_until,
                downtime=down.downtime,
            )
        return SlotOutcome(
            result=result,
            batch=batch,
            wasted=wasted,
            failures=failures,
            split_retries=split_retries,
        )


def requeue_failed(
    queue: RequestQueue,
    policy: RetryPolicy,
    cost_model: GPUCostModel,
    requests: Sequence[Request],
    now: float,
) -> tuple[list[Request], list[Request]]:
    """Apply the requeue policy to a failed batch's requests.

    Bumps each request's attempt count, keeps the still-feasible ones in
    the wait queue, and records the rest as abandoned on the queue.
    Returns ``(retained, abandoned)``.
    """
    queue.note_attempt(requests)
    retained, lost = policy.triage(requests, now, cost_model, queue.attempts)
    if lost:
        queue.abandon(lost)
    return retained, lost
