"""Typed fault outcomes raised by :class:`~repro.faults.engine.FaultyEngine`.

A faulty slot must never look like a successful one: instead of
returning a doctored :class:`~repro.engine.base.BatchResult`, the
wrapper raises one of these exceptions.  Serving loops catch them
explicitly (tcblint rule TCB007 bans bare/silent handlers in the
serving and engine trees, so a loop cannot quietly drop them) and apply
the recovery policies in :mod:`repro.faults.recovery`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.types import Request

__all__ = ["FaultOutcome", "BatchFailure", "EngineDown"]


class FaultOutcome(Exception):
    """Base class: one engine slot did not complete normally."""

    def __init__(self, message: str, requests: Optional[Sequence[Request]] = None):
        super().__init__(message)
        # The requests that were in the failed slot; the serving loop's
        # requeue policy decides their fate.
        self.requests: list[Request] = list(requests or [])


class BatchFailure(FaultOutcome):
    """The batch failed after consuming ``latency`` seconds of engine time.

    ``kind`` distinguishes recovery policy: ``"oom"`` failures are
    retried by halving the batch (the allocation, not the work, was the
    problem); ``"failure"`` means the work itself was lost.
    """

    def __init__(self, kind: str, latency: float, requests: Sequence[Request]):
        super().__init__(f"batch failed ({kind})", requests)
        self.kind = kind
        self.latency = float(latency)


class EngineDown(FaultOutcome):
    """The engine crashed (or is still recovering) and cannot serve.

    ``down_until`` is the simulated time at which the engine rejoins;
    ``downtime`` is the length of the outage that *this* event opened
    (zero when the engine was already down and merely refused work).
    """

    def __init__(
        self,
        down_until: float,
        requests: Sequence[Request],
        downtime: float = 0.0,
    ):
        super().__init__(f"engine down until t={down_until:.3f}", requests)
        self.down_until = float(down_until)
        self.downtime = float(downtime)
