"""Fault injection and recovery for the serving loops.

The paper's serving loop (Fig. 3) assumes a perfectly reliable engine;
production fleets do not get one.  This package makes failure a
first-class, *deterministic* input to the simulators:

- :class:`~repro.faults.plan.FaultPlan` — a seeded per-slot fault
  schedule (batch failure, straggler, transient OOM, engine crash),
- :class:`~repro.faults.engine.FaultyEngine` — wraps any engine and
  surfaces faults as typed outcomes
  (:class:`~repro.faults.outcomes.BatchFailure`,
  :class:`~repro.faults.outcomes.EngineDown`) instead of silent success,
- :mod:`~repro.faults.recovery` — bounded deadline-aware requeue,
  split-batch retry on OOM, and the slot driver shared by the loops.

See ``docs/faults.md`` for the fault model and its determinism
guarantees, and ``benchmarks/test_ext_fault_tolerance.py`` for the
chaos sweep showing DAS degrades gracefully under rising fault rates.
"""

from repro.faults.engine import FaultyEngine
from repro.faults.outcomes import BatchFailure, EngineDown, FaultOutcome
from repro.faults.plan import (
    FaultConfig,
    FaultConfigError,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.faults.recovery import (
    RetryPolicy,
    SlotOutcome,
    requeue_failed,
    serve_slot,
)

__all__ = [
    "FaultConfig",
    "FaultConfigError",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultyEngine",
    "FaultOutcome",
    "BatchFailure",
    "EngineDown",
    "RetryPolicy",
    "SlotOutcome",
    "serve_slot",
    "requeue_failed",
]
