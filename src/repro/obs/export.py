"""Exporters for recorded traces: Chrome ``trace_event`` JSON, CSV, ASCII.

Chrome format (loadable in ``chrome://tracing`` / Perfetto): one
complete event (``ph: "X"``) per lifecycle span, instant events
(``ph: "i"``) for terminal outcomes, and fixed process lanes —

====  ===========  ============================================
pid   lane         tid convention
====  ===========  ============================================
1     requests     request_id
2     engines      engine index (cluster lanes)
3     scheduler    0
4     overload     engine index for breaker events, else 0
5     durability   0 (snapshots/commits/crashes/restores)
6     health       engine index (transitions/probes/hedges)
====  ===========  ============================================

Lanes 4–6 are *conditional*: their metadata entries appear only when
the trace actually carries overload / durability / health events, so
traces from plain runs keep exactly the three classic lanes.

Timestamps are simulated seconds scaled to microseconds (Chrome's
``ts`` unit); every request event also carries the raw sim-time values
in ``args.t0`` / ``args.t1`` so :func:`spans_from_chrome_trace` can
round-trip spans bit-exactly.  The schema (keys, ``ph``/``pid``/``tid``
conventions) is pinned by ``tests/test_obs_chrome.py``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Mapping

from repro.obs.recorder import Tracer
from repro.obs.spans import Span

__all__ = [
    "PID_REQUESTS",
    "PID_ENGINES",
    "PID_SCHEDULER",
    "PID_OVERLOAD",
    "PID_DURABILITY",
    "PID_HEALTH",
    "PID_TENANCY",
    "TIME_SCALE",
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "spans_from_chrome_trace",
    "spans_to_csv",
    "ascii_timeline",
]

PID_REQUESTS = 1
PID_ENGINES = 2
PID_SCHEDULER = 3
# Overload-plane lane (sheds, degradation levels, breaker trips).  Its
# metadata entry is only emitted when a trace actually carries overload
# events, so pre-overload traces keep exactly the three classic lanes.
PID_OVERLOAD = 4
# Durability-plane lane (snapshots, commits, crashes, restores).  Like
# the overload lane its metadata entry is emitted only when the trace
# carries durability events, so pre-durability traces are unchanged.
PID_DURABILITY = 5
# Tail-tolerance lane (health transitions, probes, hedges); conditional
# like the overload and durability lanes.
PID_HEALTH = 6
# Tenancy lane (quota rejections, fair-share splits); conditional like
# the other control-plane lanes.
PID_TENANCY = 7

# Simulated seconds -> Chrome's microsecond ``ts`` unit.
TIME_SCALE = 1e6

_PROCESS_NAMES = {
    PID_REQUESTS: "requests",
    PID_ENGINES: "engines",
    PID_SCHEDULER: "scheduler",
    PID_OVERLOAD: "overload",
    PID_DURABILITY: "durability",
    PID_HEALTH: "health",
    PID_TENANCY: "tenancy",
}

# Lanes whose metadata is conditional on the trace actually using them.
_OPTIONAL_PIDS = (PID_OVERLOAD, PID_DURABILITY, PID_HEALTH, PID_TENANCY)


def _metadata_events(*, active: frozenset[int] = frozenset()) -> list[dict[str, Any]]:
    return [
        {
            "name": "process_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(_PROCESS_NAMES.items())
        if pid not in _OPTIONAL_PIDS or pid in active
    ]


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Lower a recorded trace to a Chrome ``trace_event`` document."""
    overload = getattr(tracer, "overload_events", [])
    durability = getattr(tracer, "durability_events", [])
    health = getattr(tracer, "health_events", [])
    tenant = getattr(tracer, "tenant_events", [])
    active = frozenset(
        pid
        for pid, used in (
            (PID_OVERLOAD, overload),
            (PID_DURABILITY, durability),
            (PID_HEALTH, health),
            (PID_TENANCY, tenant),
        )
        if used
    )
    events: list[dict[str, Any]] = _metadata_events(active=active)
    for span in tracer.spans():
        args = {
            "request_id": span.request_id,
            "t0": span.t_start,
            "t1": span.t_end,
            **span.attrs,
        }
        common = {
            "name": span.phase,
            "cat": "request",
            "ts": span.t_start * TIME_SCALE,
            "pid": PID_REQUESTS,
            "tid": span.request_id,
            "args": args,
        }
        if span.is_terminal:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append(
                {**common, "ph": "X", "dur": span.duration * TIME_SCALE}
            )
    for b in tracer.batches:
        events.append(
            {
                "name": b.kind,
                "cat": "engine",
                "ph": "X",
                "ts": b.t_start * TIME_SCALE,
                "dur": b.duration * TIME_SCALE,
                "pid": PID_ENGINES,
                "tid": b.engine,
                "args": dict(b.attrs),
            }
        )
    for d in tracer.decisions:
        events.append(
            {
                "name": str(d.attrs.get("scheduler", "decision")),
                "cat": "scheduler",
                "ph": "X",
                "ts": d.t * TIME_SCALE,
                "dur": d.runtime * TIME_SCALE,
                "pid": PID_SCHEDULER,
                "tid": 0,
                "args": {"runtime": d.runtime, **d.attrs},
            }
        )
    for ov in overload:
        events.append(
            {
                "name": ov.kind,
                "cat": "overload",
                "ph": "i",
                "s": "t",
                "ts": ov.t * TIME_SCALE,
                "pid": PID_OVERLOAD,
                # Breaker events get the engine's lane; sheds/levels 0.
                "tid": int(ov.attrs.get("engine", 0)),
                "args": {"t": ov.t, **ov.attrs},
            }
        )
    for du in durability:
        events.append(
            {
                "name": du.kind,
                "cat": "durability",
                "ph": "i",
                "s": "t",
                "ts": du.t * TIME_SCALE,
                "pid": PID_DURABILITY,
                "tid": 0,
                "args": {"t": du.t, **du.attrs},
            }
        )
    for he in health:
        events.append(
            {
                "name": he.kind,
                "cat": "health",
                "ph": "i",
                "s": "t",
                "ts": he.t * TIME_SCALE,
                "pid": PID_HEALTH,
                # Health events always concern one engine's lane.
                "tid": int(he.attrs.get("engine", 0)),
                "args": {"t": he.t, **he.attrs},
            }
        )
    for te in tenant:
        events.append(
            {
                "name": te.kind,
                "cat": "tenancy",
                "ph": "i",
                "s": "t",
                "ts": te.t * TIME_SCALE,
                "pid": PID_TENANCY,
                "tid": 0,
                "args": {"t": te.t, **te.attrs},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "outcomes": tracer.outcome_counts(),
        },
    }


def chrome_trace_json(tracer: Tracer, *, indent: int = 0) -> str:
    return json.dumps(chrome_trace(tracer), indent=indent or None)


def validate_chrome_trace(doc: Mapping[str, Any]) -> None:
    """Raise ValueError unless ``doc`` is a well-formed trace document.

    Checks the envelope, the per-event required keys, the ``ph`` values
    used by this exporter and the pid/tid lane conventions — the same
    validation ``make trace-smoke`` runs on the exported file.
    """
    if not isinstance(doc, Mapping) or "traceEvents" not in doc:
        raise ValueError("not a trace document: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        if ev["ph"] not in ("M", "X", "i"):
            raise ValueError(f"event {i} has unknown ph {ev['ph']!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            raise ValueError(f"complete event {i} missing 'dur'")
        if ev["ph"] == "X" and ev["dur"] < 0:
            raise ValueError(f"event {i} has negative duration")
        if ev["ph"] == "i" and ev.get("s") != "t":
            raise ValueError(f"instant event {i} missing thread scope 's': 't'")
        if ev["pid"] not in _PROCESS_NAMES:
            raise ValueError(f"event {i} uses unknown pid {ev['pid']!r}")
        if ev["cat"] == "request" and ev["tid"] != ev["args"].get("request_id"):
            raise ValueError(f"request event {i}: tid must equal request_id")


def spans_from_chrome_trace(doc: Mapping[str, Any]) -> list[Span]:
    """Reconstruct request lifecycle spans from an exported document.

    Inverse of the request-lane half of :func:`chrome_trace`; uses the
    raw ``args.t0`` / ``args.t1`` sim-time values, so
    ``spans_from_chrome_trace(chrome_trace(tr)) == tr.spans()``.
    """
    spans: list[Span] = []
    for ev in doc["traceEvents"]:
        if ev.get("cat") != "request":
            continue
        args = dict(ev["args"])
        rid = int(args.pop("request_id"))
        t0 = float(args.pop("t0"))
        t1 = float(args.pop("t1"))
        spans.append(
            Span(
                request_id=rid,
                phase=ev["name"],
                t_start=t0,
                t_end=t1,
                attrs=args,
            )
        )
    spans.sort(key=lambda s: (s.request_id, s.t_start, s.t_end, s.phase))
    return spans


def spans_to_csv(tracer: Tracer) -> str:
    """Flat CSV of lifecycle spans (attrs JSON-encoded in one column)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["request_id", "phase", "t_start", "t_end", "duration", "attrs"]
    )
    for s in tracer.spans():
        writer.writerow(
            [
                s.request_id,
                s.phase,
                repr(s.t_start),
                repr(s.t_end),
                repr(s.duration),
                json.dumps(dict(s.attrs), sort_keys=True),
            ]
        )
    return buf.getvalue()


def ascii_timeline(tracer: Tracer, *, num_points: int = 60) -> str:
    """Terminal view of a traced run via :mod:`repro.analysis.ascii_plot`.

    Samples queue depth, in-flight batch size and cumulative outcomes
    over the traced horizon — enough to eyeball where a run queued,
    stalled or shed load without leaving the terminal.
    """
    if num_points < 2:
        raise ValueError("num_points must be >= 2")
    spans = tracer.spans()
    if not spans:
        return "(empty trace)"
    t_end = max(s.t_end for s in spans)
    t_end = max(t_end, max((b.t_start + b.duration for b in tracer.batches), default=0.0))
    ts = [t_end * i / (num_points - 1) for i in range(num_points)]

    queued = [s for s in spans if s.phase in ("enqueue", "requeued")]
    served = sorted(
        s.t_start for s in spans if s.is_terminal and s.phase == "served"
    )
    failed = sorted(
        s.t_start
        for s in spans
        if s.is_terminal and s.phase in ("expired", "rejected", "abandoned")
    )

    def count_at(t: float) -> float:
        return float(sum(1 for s in queued if s.t_start <= t < s.t_end))

    def cum(sorted_times: list[float], t: float) -> float:
        n = 0
        for x in sorted_times:
            if x > t:
                break
            n += 1
        return float(n)

    series = {
        "queue depth": [count_at(t) for t in ts],
        "in batch": [
            float(
                sum(
                    int(b.attrs.get("num_requests", 1))
                    for b in tracer.batches
                    if b.t_start <= t < b.t_start + b.duration
                )
            )
            for t in ts
        ],
        "served cum": [cum(served, t) for t in ts],
        "failed cum": [cum(failed, t) for t in ts],
    }
    counts = tracer.outcome_counts()
    title = (
        f"trace: {tracer.num_requests} requests, {len(tracer.batches)} batches | "
        + " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    # Deferred: repro.analysis pulls in the serving stack, which itself
    # imports the obs layer — a module-level import here would be cyclic.
    from repro.analysis.ascii_plot import ascii_chart

    return ascii_chart(series, title=title, shared_scale=False)
