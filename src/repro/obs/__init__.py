"""Request-lifecycle observability (span tracing + exporters).

A zero-dependency tracing layer that follows every request through the
serving loops on the simulated clock::

    arrive → enqueue → scheduled → packed(row, slot) → executed
           → served | expired | rejected | abandoned

plus per-batch events (padding efficiency, cost-model breakdown, memory
watermark, fault/retry annotations) and per-decision scheduler events
(DAS utility-dominant vs deadline-aware set sizes, η/q).

Off by default: the loops fall back to :data:`~repro.obs.recorder.NO_TRACE`,
so an untraced run pays one attribute lookup per emission site.  Traced
runs reconcile exactly with :class:`~repro.serving.metrics.ServingMetrics`
(every terminal span maps 1:1 onto the conservation ledger).

Exporters: Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto), flat CSV, ASCII timeline — see ``docs/observability.md`` and
``python -m repro trace``.
"""

from repro.obs.export import (
    ascii_timeline,
    chrome_trace,
    chrome_trace_json,
    spans_from_chrome_trace,
    spans_to_csv,
    validate_chrome_trace,
)
from repro.obs.recorder import NO_TRACE, NullTracer, Tracer
from repro.obs.spans import (
    TERMINAL_KINDS,
    BatchEvent,
    EventKind,
    OverloadEvent,
    RequestEvent,
    SchedulerEvent,
    Span,
)

__all__ = [
    "NO_TRACE",
    "NullTracer",
    "Tracer",
    "EventKind",
    "TERMINAL_KINDS",
    "RequestEvent",
    "Span",
    "BatchEvent",
    "SchedulerEvent",
    "OverloadEvent",
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "spans_from_chrome_trace",
    "spans_to_csv",
    "ascii_timeline",
]
