"""Typed span/event vocabulary for request-lifecycle tracing.

The paper's claims (Figs. 9–16) are statements about *where time and
padded-zero waste go*; :mod:`repro.obs` follows every request through
its lifecycle on the simulated clock so those claims can be audited per
request instead of inferred from end-of-run aggregates.

The lifecycle is a small state machine::

    arrive → enqueue → scheduled → packed(row, slot) → executed
           → served | expired | rejected | abandoned

``requeued`` loops a request back to the queued state after a fault
(retry path), so one request may carry several ``scheduled`` events —
but always exactly **one** terminal event (the recorder dedupes on
request id; see ``docs/observability.md``).

A :class:`Span` is the time a request spent in the state a
:class:`RequestEvent` opened; terminal spans have zero duration.  Batch
and scheduler activity are recorded separately (:class:`BatchEvent`,
:class:`SchedulerEvent`) because they belong to engine/scheduler lanes,
not to any single request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "EventKind",
    "TERMINAL_KINDS",
    "RequestEvent",
    "Span",
    "BatchEvent",
    "SchedulerEvent",
    "OverloadEvent",
    "DurabilityEvent",
    "HealthEvent",
    "TenantEvent",
]


class EventKind(str, enum.Enum):
    """One step of the request lifecycle."""

    ARRIVE = "arrive"
    ENQUEUE = "enqueue"
    SCHEDULED = "scheduled"
    PACKED = "packed"
    EXECUTED = "executed"
    REQUEUED = "requeued"
    # Terminal outcomes — exactly one per request, mirroring the
    # ServingMetrics conservation ledger
    # (served + expired + rejected + abandoned == arrived).
    SERVED = "served"
    EXPIRED = "expired"
    REJECTED = "rejected"
    ABANDONED = "abandoned"


TERMINAL_KINDS = frozenset(
    {EventKind.SERVED, EventKind.EXPIRED, EventKind.REJECTED, EventKind.ABANDONED}
)


@dataclass(frozen=True)
class RequestEvent:
    """One lifecycle transition of one request, on the simulated clock."""

    kind: EventKind
    t: float
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Span:
    """Time a request spent in one lifecycle state.

    ``phase`` is the :class:`EventKind` value that *opened* the state;
    the span closes when the next event fires.  Terminal spans are
    zero-length markers carrying the outcome.
    """

    request_id: int
    phase: str
    t_start: float
    t_end: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_terminal(self) -> bool:
        return self.phase in {k.value for k in TERMINAL_KINDS}


@dataclass(frozen=True)
class BatchEvent:
    """One engine slot / iteration: what ran, for how long, how well.

    ``attrs`` carries padding-efficiency (useful/padded tokens,
    utilisation), slot size, the cost-model breakdown and memory
    watermark (when the loop asked the engine to annotate), and
    fault/retry annotations (``fault``, ``failures``, ``wasted``).
    """

    t_start: float
    duration: float
    engine: int = 0
    kind: str = "batch"  # batch | iteration | failed | crash
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class OverloadEvent:
    """One overload-plane action, on the simulated clock.

    ``kind`` names the action — ``"shed"`` (a load-shedding decision
    with victim count/tokens/policy), ``"level"`` (a degradation-level
    transition with the triggering signals) or ``"breaker"`` (a circuit
    breaker state change with its engine index).  These live in their
    own lane: they are control-plane decisions *about* requests and
    engines, not lifecycle steps of any single request.
    """

    t: float
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DurabilityEvent:
    """One durability-plane action, on the simulated clock.

    ``kind`` names the action — ``"snapshot"`` (a checkpoint was taken,
    with its sequence number and step), ``"commit"`` (a step was sealed
    into the journal), ``"crash"`` (a planned scheduler crash fired),
    ``"restore"`` (state was rebuilt from snapshot + replay, with the
    replayed/voided record counts).  Like overload events these are
    control-plane actions, not lifecycle steps of any request, so they
    live in their own lane.
    """

    t: float
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class HealthEvent:
    """One tail-tolerance-plane action, on the simulated clock.

    ``kind`` names the action — ``"health"`` (a scoreboard state
    transition with old/new state, score and reason), ``"probe"`` (a
    probe batch dispatched on a quarantined engine), ``"hedge"`` (a
    duplicate batch issued past the hedge deadline) or
    ``"hedge-win"`` / ``"hedge-lose"`` / ``"hedge-failed"`` (how the
    race resolved).  Control-plane actions about engines, not lifecycle
    steps of any request, so they live in their own lane.
    """

    t: float
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TenantEvent:
    """One tenancy-plane action, on the simulated clock.

    ``kind`` names the action — ``"quota"`` (a token-bucket or
    in-flight-cap rejection, with the tenant and reason) or ``"share"``
    (one fair-share decision's row/token split across tenants).
    Control-plane actions about tenants, not lifecycle steps of any
    request, so they live in their own lane.
    """

    t: float
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SchedulerEvent:
    """One scheduler decision (per-decision DAS observability).

    ``runtime`` is the wall-clock seconds the decision took (the Fig. 16
    quantity); ``attrs`` carries the decision's self-description — for
    DAS the utility-dominant vs deadline-aware set sizes and η/q, for
    Slotted DAS additionally the derived slot size and discard count.
    """

    t: float
    runtime: float
    attrs: Mapping[str, Any] = field(default_factory=dict)
