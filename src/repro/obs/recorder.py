"""Span recorder: the write side of request-lifecycle tracing.

Two recorders share one call surface:

- :data:`NO_TRACE` — the no-op recorder the serving loops fall back to.
  It advertises ``enabled = False``; every emission site in a loop is
  guarded by that flag, so a run without tracing pays exactly one
  attribute lookup per site and never builds event objects.
- :class:`Tracer` — records typed :class:`~repro.obs.spans.RequestEvent`
  streams per request plus batch/scheduler lanes, all on the simulated
  clock (no wall-clock reads — ``repro/obs`` is inside tcblint TCB003's
  scope).

The recorder enforces the conservation ledger structurally: terminal
events are **deduped on request id** (a requeued request that is later
served and then swept by an end-of-run expiry pass cannot end twice),
and :meth:`Tracer.reconcile` asserts that span-derived outcome counts
equal the :class:`~repro.serving.metrics.ServingMetrics` ledger —
``served + expired + rejected + abandoned == arrived`` — turning the
serving loops' invariant into a cross-checkable audit trail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

from repro.obs.spans import (
    TERMINAL_KINDS,
    BatchEvent,
    DurabilityEvent,
    EventKind,
    HealthEvent,
    OverloadEvent,
    RequestEvent,
    SchedulerEvent,
    Span,
    TenantEvent,
)
from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serving.metrics import ServingMetrics

__all__ = ["NO_TRACE", "NullTracer", "Tracer"]


class NullTracer:
    """Absorbs every emission; ``enabled`` is False so loops skip calls."""

    enabled: bool = False

    @staticmethod
    def _noop(*_args, **_kwargs) -> None:
        return None

    def __getattr__(self, _name: str):
        return self._noop


NO_TRACE = NullTracer()


class Tracer:
    """Records request lifecycles, batch lanes and scheduler decisions.

    Constructing with ``enabled=False`` yields a recorder that keeps the
    same interface but drops everything — used by the overhead benchmark
    to price the disabled guard against the untraced baseline.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        # request_id -> ordered lifecycle events.
        self.events: dict[int, list[RequestEvent]] = {}
        self.batches: list[BatchEvent] = []
        self.decisions: list[SchedulerEvent] = []
        # Overload-plane actions: sheds, level changes, breaker trips.
        self.overload_events: list[OverloadEvent] = []
        # request_id -> terminal outcome (the dedupe ledger).
        self._outcome: dict[int, str] = {}
        # Terminal events dropped by the dedupe (should stay 0; counted
        # so the regression tests can see attempted double-counts).
        self.duplicate_terminals = 0
        # request_id -> number of times scheduled (attempt counter).
        self.attempts: dict[int, int] = {}
        # Durability-plane actions: snapshots, commits, crash, restore.
        self.durability_events: list[DurabilityEvent] = []
        # Tail-tolerance-plane actions: health transitions, probes,
        # hedges and their resolutions.
        self.health_events: list[HealthEvent] = []
        # Tenancy-plane actions: quota rejections and fair-share splits.
        self.tenant_events: list[TenantEvent] = []
        # Optional journal sink: when the durability plane attaches a
        # list here, every post-dedupe emission is mirrored into it as a
        # tagged tuple, giving the plane an exact per-step delta of the
        # tracer's grow-only state (drained at each commit).
        self.sink: Optional[list] = None

    # ------------------------------------------------------------------ #
    # Emission (called by the serving loops, guarded by ``enabled``)
    # ------------------------------------------------------------------ #

    def _emit(
        self,
        request: Request,
        kind: EventKind,
        t: float,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if not self.enabled:
            return
        rid = request.request_id
        if kind in TERMINAL_KINDS:
            if rid in self._outcome:
                self.duplicate_terminals += 1
                if self.sink is not None:
                    self.sink.append(("dup", rid))
                return
            self._outcome[rid] = kind.value
            # A request factually stayed unserved until its last recorded
            # event; clamp so end-of-run sweeps cannot time-travel.
            history = self.events.get(rid)
            if history:
                t = max(t, history[-1].t)
        event = RequestEvent(kind=kind, t=t, attrs=dict(attrs or {}))
        self.events.setdefault(rid, []).append(event)
        if self.sink is not None:
            self.sink.append(("event", rid, event))

    def arrive(self, request: Request, t: float) -> None:
        self._emit(request, EventKind.ARRIVE, t, {"length": request.length})

    def enqueue(self, request: Request, t: float) -> None:
        self._emit(request, EventKind.ENQUEUE, t)

    def scheduled(
        self, requests: Iterable[Request], t: float, **attrs: Any
    ) -> None:
        for r in requests:
            n = self.attempts.get(r.request_id, 0) + 1
            self.attempts[r.request_id] = n
            self._emit(r, EventKind.SCHEDULED, t, {"attempt": n, **attrs})

    def packed_layouts(self, layouts: Iterable, t: float) -> None:
        """PACKED events with (row, slot, start) from executed layouts."""
        for layout in layouts:
            for row_idx, row in enumerate(layout.rows):
                if getattr(row, "slots", None):
                    for slot_idx, slot in enumerate(row.slots):
                        for seg in slot.segments:
                            self._emit(
                                seg.request,
                                EventKind.PACKED,
                                t,
                                {"row": row_idx, "slot": slot_idx, "start": seg.start},
                            )
                else:
                    for seg in row.segments:
                        self._emit(
                            seg.request,
                            EventKind.PACKED,
                            t,
                            {"row": row_idx, "slot": 0, "start": seg.start},
                        )

    def executed(
        self,
        requests: Iterable[Request],
        t: float,
        latency: float,
        *,
        engine: int = 0,
    ) -> None:
        for r in requests:
            self._emit(
                r, EventKind.EXECUTED, t, {"latency": latency, "engine": engine}
            )

    def requeued(self, requests: Iterable[Request], t: float) -> None:
        for r in requests:
            self._emit(r, EventKind.REQUEUED, t)

    def served(self, requests: Iterable[Request], t: float) -> None:
        for r in requests:
            self._emit(r, EventKind.SERVED, t)

    def expired(self, requests: Iterable[Request], t: float) -> None:
        """Expiry sweep at simulated time ``t`` (or horizon clean-up).

        Each request expires at its own deadline when that is earlier
        than the sweep time — the deadline is when it actually left the
        servable set; Eq. 12's window is closed so ties go to ``t``.
        """
        for r in requests:
            self._emit(r, EventKind.EXPIRED, min(max(r.deadline, r.arrival), t))

    def rejected(self, request: Request, t: float) -> None:
        self._emit(request, EventKind.REJECTED, t)

    def abandoned(self, requests: Iterable[Request], t: float) -> None:
        for r in requests:
            self._emit(r, EventKind.ABANDONED, t)

    def batch(
        self,
        t: float,
        duration: float,
        *,
        engine: int = 0,
        kind: str = "batch",
        **attrs: Any,
    ) -> None:
        if not self.enabled:
            return
        event = BatchEvent(
            t_start=t, duration=duration, engine=engine, kind=kind, attrs=attrs
        )
        self.batches.append(event)
        if self.sink is not None:
            self.sink.append(("batch", event))

    def decision(
        self, t: float, runtime: float, attrs: Optional[Mapping[str, Any]] = None
    ) -> None:
        if not self.enabled:
            return
        event = SchedulerEvent(t=t, runtime=runtime, attrs=dict(attrs or {}))
        self.decisions.append(event)
        if self.sink is not None:
            self.sink.append(("decision", event))

    def overload(self, t: float, kind: str, **attrs: Any) -> None:
        """Record one overload-plane action (shed / level / breaker)."""
        if not self.enabled:
            return
        event = OverloadEvent(t=t, kind=kind, attrs=attrs)
        self.overload_events.append(event)
        if self.sink is not None:
            self.sink.append(("overload", event))

    def durability(self, t: float, kind: str, **attrs: Any) -> None:
        """Record one durability-plane action (snapshot / commit / …)."""
        if not self.enabled:
            return
        event = DurabilityEvent(t=t, kind=kind, attrs=attrs)
        self.durability_events.append(event)
        if self.sink is not None:
            self.sink.append(("durability", event))

    def health(self, t: float, kind: str, **attrs: Any) -> None:
        """Record one tail-tolerance action (transition / probe / hedge)."""
        if not self.enabled:
            return
        event = HealthEvent(t=t, kind=kind, attrs=attrs)
        self.health_events.append(event)
        if self.sink is not None:
            self.sink.append(("health", event))

    def tenant(self, t: float, kind: str, **attrs: Any) -> None:
        """Record one tenancy-plane action (quota / share)."""
        if not self.enabled:
            return
        event = TenantEvent(t=t, kind=kind, attrs=attrs)
        self.tenant_events.append(event)
        if self.sink is not None:
            self.sink.append(("tenant", event))

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def spans(self) -> list[Span]:
        """Lifecycle spans: state opened by event *i* closes at event *i+1*.

        Terminal events become zero-length outcome markers.  Spans are
        ordered by (request_id, t_start).
        """
        out: list[Span] = []
        for rid in sorted(self.events):
            evs = self.events[rid]
            for ev, nxt in zip(evs, evs[1:]):
                out.append(
                    Span(
                        request_id=rid,
                        phase=ev.kind.value,
                        t_start=ev.t,
                        t_end=nxt.t,
                        attrs=ev.attrs,
                    )
                )
            last = evs[-1]
            out.append(
                Span(
                    request_id=rid,
                    phase=last.kind.value,
                    t_start=last.t,
                    t_end=last.t,
                    attrs=last.attrs,
                )
            )
        return out

    def outcomes(self) -> dict[int, str]:
        """request_id -> terminal outcome name."""
        return dict(self._outcome)

    def outcome_counts(self) -> dict[str, int]:
        counts = {k.value: 0 for k in TERMINAL_KINDS}
        for outcome in self._outcome.values():
            counts[outcome] += 1
        return counts

    @property
    def num_requests(self) -> int:
        return len(self.events)

    def reconcile(self, metrics: "ServingMetrics") -> None:
        """Assert the span ledger matches the metrics ledger 1:1.

        Every terminal span outcome must map onto the corresponding
        ``ServingMetrics`` bucket, and every arrived request must carry
        exactly one terminal span.  Raises AssertionError on any drift —
        the serving loops call this at the end of every traced run.
        """
        counts = self.outcome_counts()
        expected = {
            "served": metrics.num_served,
            "expired": metrics.num_expired,
            "rejected": metrics.num_rejected,
            "abandoned": metrics.num_abandoned,
        }
        if counts != expected:
            raise AssertionError(
                f"trace/metrics ledger mismatch: spans={counts} metrics={expected}"
            )
        terminal = len(self._outcome)
        if terminal != metrics.arrived:
            raise AssertionError(
                f"{terminal} terminal spans for {metrics.arrived} arrived requests"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(requests={self.num_requests}, batches={len(self.batches)}, "
            f"decisions={len(self.decisions)}, outcomes={self.outcome_counts()})"
        )
