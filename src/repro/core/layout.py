"""Batch layout descriptions for ConcatBatching.

A *layout* records where each request lives inside a batch tensor:

- a :class:`Segment` is one request's contiguous span inside a row,
- a :class:`RowLayout` is one batch row (capacity ``L`` tokens) holding one
  or more segments (NaiveBatching holds exactly one; ConcatBatching holds
  many),
- a :class:`SlotLayout` optionally subdivides a row into fixed-size slots
  (slotted ConcatBatching, paper §4.2),
- a :class:`BatchLayout` is the full ``B × L`` batch.

Layouts are the single source of truth consumed by the mask builders
(:mod:`repro.core.masks`), the separate positional encoding
(:mod:`repro.core.positional`), the engines and the memory simulator.

All index math here is plain Python (layouts are tiny — at most a few
thousand segments); the hot numeric paths operate on the vectorised
``segment_id_matrix`` / ``position_matrix`` this module produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.types import Request

__all__ = ["Segment", "RowLayout", "SlotLayout", "BatchLayout"]


@dataclass(frozen=True)
class Segment:
    """One request's span within a batch row: ``[start, start + length)``."""

    request: Request
    start: int

    @property
    def length(self) -> int:
        return self.request.length

    @property
    def end(self) -> int:
        return self.start + self.length

    def positions(self) -> np.ndarray:
        """Within-request positions ``0 .. length-1`` (separate PE)."""
        return np.arange(self.length, dtype=np.int64)


@dataclass
class SlotLayout:
    """A fixed-width slot inside a row (slotted ConcatBatching).

    ``start``/``size`` are token offsets within the row.  Segments placed in
    the slot must fit inside ``[start, start + size)``.
    """

    start: int
    size: int
    segments: list[Segment] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def used(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def free(self) -> int:
        return self.size - self.used

    def can_fit(self, length: int) -> bool:
        return length <= self.free

    def add(self, request: Request) -> Segment:
        if not self.can_fit(request.length):
            raise ValueError(
                f"request of length {request.length} does not fit in slot "
                f"with {self.free} free tokens"
            )
        seg = Segment(request=request, start=self.start + self.used)
        self.segments.append(seg)
        return seg


@dataclass
class RowLayout:
    """One batch row of capacity ``L`` tokens holding packed segments."""

    capacity: int
    segments: list[Segment] = field(default_factory=list)
    slots: Optional[list[SlotLayout]] = None

    @property
    def used(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def extent(self) -> int:
        """Highest occupied token index + 1 (≥ ``used`` under slotting,
        where segments sit at slot offsets and need not be contiguous)."""
        return max((s.end for s in self.segments), default=0)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def padding(self) -> int:
        """Padded (wasted) token positions in this row at width=capacity."""
        return self.free

    @property
    def num_requests(self) -> int:
        return len(self.segments)

    def can_fit(self, length: int) -> bool:
        return length <= self.free

    def add(self, request: Request) -> Segment:
        """Append a request at the current end of the row."""
        if not self.can_fit(request.length):
            raise ValueError(
                f"request of length {request.length} does not fit in row "
                f"with {self.free} free tokens"
            )
        seg = Segment(request=request, start=self.used)
        self.segments.append(seg)
        return seg

    def requests(self) -> list[Request]:
        return [s.request for s in self.segments]

    def validate(self) -> None:
        """Check non-overlap, ordering and capacity invariants."""
        pos = 0
        for seg in sorted(self.segments, key=lambda s: s.start):
            if seg.start < pos:
                raise ValueError("overlapping segments in row")
            pos = seg.end
        if pos > self.capacity:
            raise ValueError(
                f"segments extend to {pos} > row capacity {self.capacity}"
            )
        if self.slots is not None:
            for slot in self.slots:
                if slot.end > self.capacity:
                    raise ValueError("slot extends past row capacity")
                for seg in slot.segments:
                    if seg.start < slot.start or seg.end > slot.end:
                        raise ValueError("segment escapes its slot")


@dataclass
class BatchLayout:
    """A full batch: ``num_rows`` rows of ``row_length`` tokens each.

    The layout is *scheme-agnostic*: NaiveBatching produces one segment per
    row, TurboBatching produces one segment per row with a reduced width,
    and ConcatBatching produces many segments per row (optionally grouped
    in slots).  Downstream code (masks, PE, engines, memory accounting)
    only ever reads the layout.
    """

    num_rows: int
    row_length: int
    rows: list[RowLayout] = field(default_factory=list)
    scheme: str = "concat"

    def __post_init__(self) -> None:
        if not self.rows:
            self.rows = [
                RowLayout(capacity=self.row_length) for _ in range(self.num_rows)
            ]
        if len(self.rows) != self.num_rows:
            raise ValueError(
                f"{len(self.rows)} rows provided for num_rows={self.num_rows}"
            )

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def __iter__(self) -> Iterator[RowLayout]:
        return iter(self.rows)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.row_length)

    def requests(self) -> list[Request]:
        """All packed requests in row-major order."""
        return [seg.request for row in self.rows for seg in row.segments]

    def segments(self) -> list[tuple[int, Segment]]:
        """All ``(row_index, segment)`` pairs in row-major order."""
        return [(k, seg) for k, row in enumerate(self.rows) for seg in row.segments]

    @property
    def num_requests(self) -> int:
        return sum(row.num_requests for row in self.rows)

    @property
    def useful_tokens(self) -> int:
        return sum(row.used for row in self.rows)

    @property
    def padded_tokens(self) -> int:
        """Padding at the batch's *effective* width (see ``effective_width``)."""
        w = self.effective_width
        return self.num_rows * w - self.useful_tokens

    @property
    def effective_width(self) -> int:
        """Width the batch tensor is actually materialised at.

        NaiveBatching pads to the longest request, not to ``row_length``;
        ConcatBatching rows are trimmed to the widest row's occupied
        extent (which, under slotting, can exceed its token count).
        """
        return max((row.extent for row in self.rows), default=0)

    @property
    def padding_ratio(self) -> float:
        total = self.num_rows * self.effective_width
        return 0.0 if total == 0 else self.padded_tokens / total

    def validate(self) -> None:
        for row in self.rows:
            row.validate()
        seen: set[int] = set()
        for req in self.requests():
            if req.request_id in seen:
                raise ValueError(f"request {req.request_id} packed twice")
            seen.add(req.request_id)

    # ------------------------------------------------------------------ #
    # Vectorised views consumed by the numeric code
    # ------------------------------------------------------------------ #

    def segment_id_matrix(self, width: Optional[int] = None) -> np.ndarray:
        """``(B, W)`` int matrix mapping each token position to a request.

        Entries are the *request id* of the segment covering the position,
        or ``-1`` for padding.  This is the canonical input for the mask
        builders: two positions attend to each other iff their entries are
        equal and non-negative.
        """
        w = self.effective_width if width is None else width
        out = np.full((self.num_rows, w), -1, dtype=np.int64)
        for k, row in enumerate(self.rows):
            for seg in row.segments:
                out[k, seg.start : seg.end] = seg.request.request_id
        return out

    def position_matrix(self, width: Optional[int] = None) -> np.ndarray:
        """``(B, W)`` matrix of *separate* positional-encoding positions.

        Each segment restarts at position 0 (paper §4.1.1, Fig. 5b).
        Padding positions get position 0 (they are masked out anyway).
        """
        w = self.effective_width if width is None else width
        out = np.zeros((self.num_rows, w), dtype=np.int64)
        for k, row in enumerate(self.rows):
            for seg in row.segments:
                out[k, seg.start : seg.end] = np.arange(seg.length)
        return out

    def naive_position_matrix(self, width: Optional[int] = None) -> np.ndarray:
        """``(B, W)`` matrix of *traditional* row-wise positions (Fig. 5a).

        Used to demonstrate why the default PE is wrong under
        concatenation; every position in a row is numbered consecutively
        regardless of segment boundaries.
        """
        w = self.effective_width if width is None else width
        return np.tile(np.arange(w, dtype=np.int64), (self.num_rows, 1))

    def token_matrix(
        self, width: Optional[int] = None, pad_token: int = 0
    ) -> np.ndarray:
        """``(B, W)`` token-id matrix.  Requires every request to carry tokens."""
        w = self.effective_width if width is None else width
        out = np.full((self.num_rows, w), pad_token, dtype=np.int64)
        for k, row in enumerate(self.rows):
            for seg in row.segments:
                if seg.request.tokens is None:
                    raise ValueError(
                        f"request {seg.request.request_id} has no tokens; "
                        "real-execution engines need concrete token ids"
                    )
                out[k, seg.start : seg.end] = np.asarray(
                    seg.request.tokens, dtype=np.int64
                )
        return out

    def slot_boundaries(self) -> list[list[tuple[int, int]]]:
        """Per-row ``(start, end)`` slot spans; one whole-row slot if unslotted."""
        out: list[list[tuple[int, int]]] = []
        w = self.effective_width
        for row in self.rows:
            if row.slots:
                out.append([(s.start, s.end) for s in row.slots])
            else:
                out.append([(0, w)])
        return out

    def shape_fingerprint(self) -> tuple:
        """Hashable shape identity: ``(B, W, slot spans)``.

        Two layouts with equal fingerprints cost exactly the same under
        any :class:`~repro.engine.cost_model.GPUCostModel` — the model
        reads nothing else — which is what makes its memoization sound.
        Batch sweeps re-pack the same shapes thousands of times, so the
        fingerprint is the cache key that collapses them.
        """
        w = self.effective_width
        spans = tuple(
            tuple((s.start, s.end) for s in row.slots)
            if row.slots
            else ((0, w),)
            for row in self.rows
        )
        return (self.num_rows, w, spans)

    # ------------------------------------------------------------------ #
    # Constructors for the baseline schemes
    # ------------------------------------------------------------------ #

    @staticmethod
    def naive(requests: Sequence[Request], num_rows: Optional[int] = None) -> "BatchLayout":
        """NaiveBatching (TNB): one request per row, padded to the longest."""
        reqs = list(requests)
        if not reqs:
            raise ValueError("cannot build a layout from zero requests")
        b = len(reqs) if num_rows is None else num_rows
        if b < len(reqs):
            raise ValueError(f"{len(reqs)} requests do not fit in {b} rows")
        width = max(r.length for r in reqs)
        layout = BatchLayout(num_rows=b, row_length=width, scheme="naive")
        for row, req in zip(layout.rows, reqs):
            row.add(req)
        return layout

    @staticmethod
    def single_per_row(
        requests: Sequence[Request], row_length: int
    ) -> "BatchLayout":
        """One request per row at a fixed row width (used by TTB groups)."""
        reqs = list(requests)
        if any(r.length > row_length for r in reqs):
            raise ValueError("a request exceeds the row length")
        layout = BatchLayout(
            num_rows=len(reqs), row_length=row_length, scheme="turbo"
        )
        for row, req in zip(layout.rows, reqs):
            row.add(req)
        return layout
