"""The customized self-attention of TCB: ``Att_CB`` and ``Att_CB_S``.

These are the single-head building blocks (Fig. 6 and Fig. 7 of the
paper).  Multi-head plumbing lives in :mod:`repro.model.attention`; the
functions here take already-projected ``Q, K, V`` of shape ``(..., W, d)``
(any leading batch/head dims broadcast).

Three implementations are provided:

- :func:`att_cb_reference` — the literal per-request loop: slice each
  segment out, run vanilla attention on it, write the result back.  Slow,
  obviously correct; the ground truth the vectorised kernels are tested
  against.
- :func:`att_cb` — Eq. 5: one big ``QKᵀ`` with the block-diagonal additive
  mask ``M`` of Eq. 6.  Computes (then masks) the redundant off-diagonal
  blocks — exactly the waste slotted ConcatBatching removes.
- :func:`att_cb_s` — Eq. 8: slot-wise attention.  For equal-size slots the
  row tensor is reshaped to ``(B·n_slots, z, d)`` and all slots run as one
  batched matmul, which is how "slots computed by GPU in parallel" maps
  onto NumPy/BLAS.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.masks import NEG_INF, block_diagonal_mask
from repro.numerics import softmax

__all__ = ["att_cb_reference", "att_cb", "att_cb_s", "attention"]


def attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Vanilla scaled dot-product attention (paper Eq. 4).

    ``mask`` is additive (0 / -inf) and must broadcast against the score
    matrix ``(..., Wq, Wk)``.
    """
    d = q.shape[-1]
    s = (1.0 / np.sqrt(d)) if scale is None else scale
    scores = (q @ np.swapaxes(k, -1, -2)) * s
    if mask is not None:
        scores = scores + mask
    return softmax(scores, axis=-1) @ v


def att_cb_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    segment_ids: np.ndarray,
) -> np.ndarray:
    """Ground-truth ConcatBatching attention: loop over segments.

    Each request's segment is sliced out and attended independently —
    numerically identical to running the request alone.  Padding positions
    produce zeros.
    """
    q = np.asarray(q, dtype=np.float64)
    if q.ndim != 3:
        raise ValueError(
            f"reference kernel is single-head only: expected (B, W, d), got {q.shape}"
        )
    out = np.zeros_like(q)
    seg = np.asarray(segment_ids)
    batch = seg.shape[0]
    for b in range(batch):
        ids = seg[b]
        for rid in np.unique(ids[ids >= 0]):
            sel = ids == rid
            out[b, sel, :] = attention(q[b, sel, :], k[b, sel, :], v[b, sel, :])
    return out


def att_cb(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Pure ConcatBatching attention (paper Eq. 5).

    ``mask`` is the block-diagonal matrix ``M`` from Eq. 6 (built by
    :func:`repro.core.masks.block_diagonal_mask`); it broadcasts over any
    leading head dimension.  The full ``W × W`` score matrix is computed —
    the redundancy slotted ConcatBatching later eliminates.
    """
    return attention(q, k, v, mask=mask)


def att_cb_s(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    slot_spans: Sequence[tuple[int, int]],
    slot_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """Slotted ConcatBatching attention (paper Eq. 8).

    ``slot_spans`` is the list of ``(start, end)`` token spans shared by
    every row (slots are row-position aligned by construction — Algorithm
    2 divides all rows with the same slot size).  ``slot_masks``, when
    given, carries each slot's *within-slot* block-diagonal mask (several
    short requests may share a slot); ``None`` entries mean the slot holds
    a single request and needs no mask.

    Equal-size slots take the fast reshape path: ``(B, n·z, d) →
    (B·n, z, d)`` and a single batched matmul computes every slot at once.
    Ragged spans (a shorter trailing slot) fall back to a per-slot loop
    whose results are concatenated, which is the literal Eq. 8.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if not slot_spans:
        raise ValueError("slot_spans must contain at least one span")
    sizes = {end - start for start, end in slot_spans}
    w = q.shape[-2]
    covered = sorted(slot_spans)
    pos = 0
    for start, end in covered:
        if start != pos:
            raise ValueError(f"slot spans not contiguous at {start} (expected {pos})")
        pos = end
    if pos != w:
        raise ValueError(f"slot spans cover {pos} tokens but width is {w}")

    if len(sizes) == 1 and slot_masks is None:
        # Fast path: every slot same size, single-request slots.
        z = sizes.pop()
        lead = q.shape[:-2]
        n = w // z
        q4 = q.reshape(*lead, n, z, q.shape[-1])
        k4 = k.reshape(*lead, n, z, k.shape[-1])
        v4 = v.reshape(*lead, n, z, v.shape[-1])
        out = attention(q4, k4, v4)
        return out.reshape(*lead, w, q.shape[-1])

    out = np.zeros_like(q)
    masks = slot_masks if slot_masks is not None else [None] * len(covered)
    if len(masks) != len(covered):
        raise ValueError("slot_masks must align with slot_spans")
    for (start, end), m in zip(covered, masks):
        out[..., start:end, :] = attention(
            q[..., start:end, :],
            k[..., start:end, :],
            v[..., start:end, :],
            mask=m,
        )
    return out
