"""Layout self-checks: verify a batch layout end to end.

Public debugging utility: given any :class:`BatchLayout`, verify that

1. the structural invariants hold (non-overlap, budgets, uniqueness),
2. the vectorised block-diagonal mask matches its definition (Eq. 6)
   entry by entry,
3. pure and slotted attention agree on random Q/K/V over this exact
   layout (Eq. 5 ≡ Eq. 8),
4. optionally, a real model encodes every packed request identically to
   isolated inference (the §4.1 correctness property).

Returns a :class:`ValidationReport`; raises nothing unless asked.
Useful when building custom packers/schedulers: if your layout passes
``validate_layout``, every engine in this library will serve it
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.concat_attention import att_cb, att_cb_reference, att_cb_s
from repro.core.layout import BatchLayout
from repro.core.masks import NEG_INF, block_diagonal_mask
from repro.rng import ensure_rng

__all__ = ["ValidationReport", "validate_layout"]


@dataclass
class ValidationReport:
    ok: bool = True
    checks: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        if passed:
            self.checks.append(name)
        else:
            self.ok = False
            self.errors.append(f"{name}: {detail}" if detail else name)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("layout validation failed: " + "; ".join(self.errors))


def validate_layout(
    layout: BatchLayout,
    *,
    model=None,
    rng: Optional[np.random.Generator] = None,
    atol: float = 1e-9,
) -> ValidationReport:
    """Run all self-checks on a layout (see module docstring)."""
    rng = ensure_rng(rng, default_seed=0)
    report = ValidationReport()

    # 1. Structural invariants.
    try:
        layout.validate()
        report.record("structure", True)
    except ValueError as exc:
        report.record("structure", False, str(exc))
        return report

    seg = layout.segment_id_matrix()
    w = seg.shape[1]
    if w == 0 or layout.num_requests == 0:
        report.record("non-empty", False, "layout holds no requests")
        return report

    # 2. Mask definition check (vectorised vs literal Eq. 6).
    mask = block_diagonal_mask(seg)
    literal_ok = True
    for b in range(seg.shape[0]):
        for i in range(w):
            for j in range(w):
                same = seg[b, i] == seg[b, j] and seg[b, i] >= 0
                expected = 0.0 if same else NEG_INF
                if mask[b, i, j] != expected:
                    literal_ok = False
    report.record("mask-definition", literal_ok)

    # 3. Attention equivalences on random tensors.
    d = 8
    q = rng.normal(size=(seg.shape[0], w, d))
    k = rng.normal(size=(seg.shape[0], w, d))
    v = rng.normal(size=(seg.shape[0], w, d))
    pure = att_cb(q, k, v, mask)
    ref = att_cb_reference(q, k, v, seg)
    valid = seg >= 0
    report.record(
        "att_cb ≡ per-request",
        bool(np.allclose(pure[valid], ref[valid], atol=atol)),
    )

    spans_per_row = layout.slot_boundaries()
    spans = [(a, min(b, w)) for a, b in spans_per_row[0] if a < w]
    if all(s == spans_per_row[0] for s in spans_per_row) and spans:
        slot_masks = [block_diagonal_mask(seg[:, a:b]) for a, b in spans]
        slotted = att_cb_s(q, k, v, spans, slot_masks)
        report.record(
            "att_cb_s ≡ att_cb",
            bool(np.allclose(slotted[valid], pure[valid], atol=atol)),
        )

    # 4. Optional real-model check.
    if model is not None:
        try:
            enc = model.encode_layout(layout)
            worst = 0.0
            for row_idx, s in layout.segments():
                if s.request.tokens is None:
                    raise ValueError("requests need tokens for the model check")
                single = model.encode_single(s.request.tokens)[0]
                worst = max(
                    worst,
                    float(np.abs(enc[row_idx, s.start : s.end] - single).max()),
                )
            report.record(
                "model concat ≡ isolated", worst < atol, f"max err {worst:.2e}"
            )
        except ValueError as exc:
            report.record("model concat ≡ isolated", False, str(exc))
    return report
