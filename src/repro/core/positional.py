"""Sinusoidal positional encoding with *separate* per-request positions.

The paper (§4.1.1) keeps the standard sinusoidal encoding of Vaswani et
al. (Eqs. 1–2) but restarts the position counter at the beginning of every
concatenated request, because words of different sentences sharing a batch
row have no order relationship (Fig. 5).

The implementation is a table lookup: :func:`sinusoidal_encoding` builds
the ``(max_len, d_model)`` table once, and
:func:`sinusoidal_positional_encoding` gathers rows of the table by an
arbitrary ``(B, W)`` *position matrix* — the traditional scheme passes
``0,1,2,...`` per row, the separate scheme passes the layout's
per-segment positions.  Gathering is a single fancy-index, so both
schemes cost the same.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.layout import BatchLayout

__all__ = [
    "sinusoidal_encoding",
    "sinusoidal_positional_encoding",
    "separate_positions",
    "encode_layout",
]


def sinusoidal_encoding(max_len: int, d_model: int) -> np.ndarray:
    """The ``(max_len, d_model)`` sinusoid table (paper Eqs. 1–2).

    ``PE[pos, 2e] = sin(pos / 10000^(2e/d))`` and
    ``PE[pos, 2e+1] = cos(pos / 10000^(2e/d))`` — the standard pairing
    where each sin/cos pair shares a frequency.
    """
    if max_len < 1 or d_model < 1:
        raise ValueError("max_len and d_model must be >= 1")
    position = np.arange(max_len, dtype=np.float64)[:, None]
    dim = np.arange(0, d_model, 2, dtype=np.float64)[None, :]
    angle = position / np.power(10000.0, dim / d_model)
    table = np.zeros((max_len, d_model), dtype=np.float64)
    table[:, 0::2] = np.sin(angle)
    half = table[:, 1::2].shape[1]
    table[:, 1::2] = np.cos(angle[:, :half])
    return table


def sinusoidal_positional_encoding(
    positions: np.ndarray, d_model: int, table: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gather PE vectors for an arbitrary ``(B, W)`` position matrix.

    Returns ``(B, W, d_model)``.  A precomputed ``table`` may be supplied
    to amortise the trig across calls.
    """
    pos = np.asarray(positions, dtype=np.int64)
    if pos.min(initial=0) < 0:
        raise ValueError("positions must be non-negative")
    if table is None:
        table = sinusoidal_encoding(int(pos.max(initial=0)) + 1, d_model)
    elif table.shape[1] != d_model:
        raise ValueError(
            f"table has d_model={table.shape[1]}, expected {d_model}"
        )
    elif int(pos.max(initial=0)) >= table.shape[0]:
        raise ValueError(
            f"position {int(pos.max())} out of range for table of "
            f"{table.shape[0]} rows"
        )
    return table[pos]


def separate_positions(layout: BatchLayout, width: Optional[int] = None) -> np.ndarray:
    """Per-request position matrix for a layout (Fig. 5b)."""
    return layout.position_matrix(width)


def encode_layout(
    layout: BatchLayout,
    d_model: int,
    *,
    separate: bool = True,
    width: Optional[int] = None,
    table: Optional[np.ndarray] = None,
) -> np.ndarray:
    """PE tensor ``(B, W, d_model)`` for a batch layout.

    ``separate=True`` is TCB's scheme (positions restart per segment);
    ``separate=False`` is the traditional row-wise scheme, provided to
    demonstrate the correctness failure it causes under concatenation.
    """
    positions = (
        layout.position_matrix(width)
        if separate
        else layout.naive_position_matrix(width)
    )
    return sinusoidal_positional_encoding(positions, d_model, table)
