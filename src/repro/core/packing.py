"""Row-packing algorithms for ConcatBatching.

Given a candidate set of requests and a batch geometry (``B`` rows ×
``L`` tokens), these functions decide *where* each request is placed.
The scheduler (paper §5) decides *which* requests are candidates; packing
is the mechanical bin-packing step that follows.

Three policies are provided:

- :func:`pack_in_order` — append requests row by row in the given order
  (this is what Algorithm 1 implies: the scheduler emits an ordered
  per-row selection and requests are concatenated as chosen),
- :func:`pack_first_fit` — classic first-fit: each request goes into the
  first row with space,
- :func:`pack_best_fit_decreasing` — best-fit on length-sorted requests;
  the strongest padding minimiser, used in ablations.

All of them respect Eq. 11 (per-row token budget) and never split a
request across rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.layout import BatchLayout
from repro.types import Request

__all__ = [
    "PackingResult",
    "pack_in_order",
    "pack_first_fit",
    "pack_best_fit_decreasing",
]


@dataclass
class PackingResult:
    """Outcome of packing: the layout plus requests that did not fit."""

    layout: BatchLayout
    packed: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    @property
    def num_packed(self) -> int:
        return len(self.packed)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)


def _new_layout(num_rows: int, row_length: int) -> BatchLayout:
    return BatchLayout(num_rows=num_rows, row_length=row_length, scheme="concat")


def pack_in_order(
    requests: Sequence[Request], num_rows: int, row_length: int
) -> PackingResult:
    """Fill row 0 until full, then row 1, ... preserving request order.

    A request that does not fit in the current row *closes* that row and
    opens the next (no back-filling) — this mirrors how Algorithm 1 builds
    each row from its sorted candidate sequence.  Requests longer than
    ``row_length`` are rejected outright.
    """
    layout = _new_layout(num_rows, row_length)
    packed: list[Request] = []
    rejected: list[Request] = []
    row_idx = 0
    for req in requests:
        if req.length > row_length:
            rejected.append(req)
            continue
        while row_idx < num_rows and not layout.rows[row_idx].can_fit(req.length):
            row_idx += 1
        if row_idx >= num_rows:
            rejected.append(req)
            continue
        layout.rows[row_idx].add(req)
        packed.append(req)
    return PackingResult(layout=layout, packed=packed, rejected=rejected)


def pack_first_fit(
    requests: Sequence[Request], num_rows: int, row_length: int
) -> PackingResult:
    """First-fit: each request goes to the lowest-index row with space."""
    layout = _new_layout(num_rows, row_length)
    packed: list[Request] = []
    rejected: list[Request] = []
    for req in requests:
        if req.length > row_length:
            rejected.append(req)
            continue
        target = next(
            (row for row in layout.rows if row.can_fit(req.length)), None
        )
        if target is None:
            rejected.append(req)
        else:
            target.add(req)
            packed.append(req)
    return PackingResult(layout=layout, packed=packed, rejected=rejected)


def pack_best_fit_decreasing(
    requests: Sequence[Request], num_rows: int, row_length: int
) -> PackingResult:
    """Best-fit decreasing: sort by length desc, place in tightest row.

    BFD is the strongest of the classic bin-packing heuristics (≤ 11/9 OPT
    + 4 bins); we use it in ablation benchmarks to quantify how much the
    simpler in-order policy of Algorithm 1 leaves on the table.
    """
    layout = _new_layout(num_rows, row_length)
    packed: list[Request] = []
    rejected: list[Request] = []
    for req in sorted(requests, key=lambda r: r.length, reverse=True):
        if req.length > row_length:
            rejected.append(req)
            continue
        candidates = [row for row in layout.rows if row.can_fit(req.length)]
        if not candidates:
            rejected.append(req)
            continue
        target = min(candidates, key=lambda row: row.free)
        target.add(req)
        packed.append(req)
    return PackingResult(layout=layout, packed=packed, rejected=rejected)
