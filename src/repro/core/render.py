"""ASCII rendering of batch layouts and attention masks.

Reproduces the paper's explanatory figures as terminal art — Fig. 1's
batching schemes, Fig. 5's positional encodings and Eq. 6's mask — for
debugging layouts and for the examples/documentation.

Conventions:

- each request is drawn with a distinct letter (``a``, ``b``, ...),
- padding is ``.``; slot boundaries are ``|``,
- masks render ``#`` where attention is allowed and ``.`` where the
  additive mask is −∞.
"""

from __future__ import annotations

import string
from typing import Optional

import numpy as np

from repro.core.layout import BatchLayout
from repro.core.masks import NEG_INF

__all__ = ["render_layout", "render_mask", "render_positions", "request_letters"]

_LETTERS = string.ascii_lowercase + string.ascii_uppercase + string.digits


def request_letters(layout: BatchLayout) -> dict[int, str]:
    """Stable request-id → letter mapping (row-major discovery order)."""
    mapping: dict[int, str] = {}
    for _, seg in layout.segments():
        rid = seg.request.request_id
        if rid not in mapping:
            mapping[rid] = _LETTERS[len(mapping) % len(_LETTERS)]
    return mapping


def render_layout(
    layout: BatchLayout,
    *,
    width: Optional[int] = None,
    show_slots: bool = True,
) -> str:
    """Draw the batch as rows of letters (one char per token position).

    ::

        row 0 | aaaa bbb .. |
        row 1 | ccccc ..... |
    """
    w = layout.effective_width if width is None else width
    letters = request_letters(layout)
    lines = []
    for k, row in enumerate(layout.rows):
        cells = ["."] * w
        for seg in row.segments:
            for i in range(seg.start, min(seg.end, w)):
                cells[i] = letters[seg.request.request_id]
        if show_slots and row.slots:
            # Insert slot boundaries (rendered between cells).
            marks = {s.end for s in row.slots if 0 < s.end < w}
            rendered = "".join(
                c + ("|" if i + 1 in marks else "") for i, c in enumerate(cells)
            )
        else:
            rendered = "".join(cells)
        lines.append(f"row {k}: {rendered}")
    return "\n".join(lines)


def render_positions(layout: BatchLayout, *, separate: bool = True) -> str:
    """Draw the positional-encoding indices per row (Fig. 5).

    ``separate=True`` shows TCB's restart-per-request positions;
    ``separate=False`` the traditional row-wise numbering.
    """
    pos = (
        layout.position_matrix() if separate else layout.naive_position_matrix()
    )
    seg = layout.segment_id_matrix()
    lines = []
    for k in range(pos.shape[0]):
        cells = [
            f"{pos[k, i]:x}" if seg[k, i] >= 0 else "."
            for i in range(pos.shape[1])
        ]
        lines.append(f"row {k}: {''.join(cells)}")
    return "\n".join(lines)


def render_mask(mask: np.ndarray, row: int = 0) -> str:
    """Draw one row's (W × W) additive mask: ``#`` allowed, ``.`` masked."""
    m = np.asarray(mask)
    if m.ndim == 3:
        m = m[row]
    if m.ndim != 2:
        raise ValueError(f"expected (W, W) or (B, W, W), got shape {mask.shape}")
    allowed = m > NEG_INF / 2
    return "\n".join(
        "".join("#" if allowed[i, j] else "." for j in range(m.shape[1]))
        for i in range(m.shape[0])
    )
