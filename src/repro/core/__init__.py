"""The paper's primary contribution: ConcatBatching primitives.

This package contains everything specific to *request concatenation*:

- :mod:`repro.core.layout` — segment/row/slot/batch layout descriptions and
  padding accounting,
- :mod:`repro.core.packing` — algorithms that pack variable-length requests
  into rows,
- :mod:`repro.core.slotting` — slot-size policies and slot-wise packing
  (slotted ConcatBatching, paper §4.2),
- :mod:`repro.core.masks` — block-diagonal additive attention masks (Eq. 6),
- :mod:`repro.core.positional` — separate positional encoding (§4.1.1),
- :mod:`repro.core.concat_attention` — the customized self-attention
  ``Att_CB`` (Eq. 5) and its slotted variant ``Att_CB_S`` (Eq. 8).
"""

from repro.core.layout import BatchLayout, RowLayout, Segment, SlotLayout
from repro.core.masks import (
    block_diagonal_mask,
    causal_block_mask,
    cross_attention_mask,
    layout_attention_mask,
)
from repro.core.positional import (
    separate_positions,
    sinusoidal_encoding,
    sinusoidal_positional_encoding,
)
from repro.core.packing import (
    PackingResult,
    pack_best_fit_decreasing,
    pack_first_fit,
    pack_in_order,
)
from repro.core.slotting import (
    SlottedPackingResult,
    divide_row_into_slots,
    pack_into_slots,
    slot_size_from_utility_dominant,
)
from repro.core.concat_attention import att_cb, att_cb_reference, att_cb_s

__all__ = [
    "Segment",
    "RowLayout",
    "SlotLayout",
    "BatchLayout",
    "block_diagonal_mask",
    "causal_block_mask",
    "cross_attention_mask",
    "layout_attention_mask",
    "separate_positions",
    "sinusoidal_encoding",
    "sinusoidal_positional_encoding",
    "PackingResult",
    "pack_first_fit",
    "pack_best_fit_decreasing",
    "pack_in_order",
    "SlottedPackingResult",
    "slot_size_from_utility_dominant",
    "divide_row_into_slots",
    "pack_into_slots",
    "att_cb",
    "att_cb_reference",
    "att_cb_s",
]
