"""Additive attention masks for ConcatBatching (paper Eq. 6).

All masks here are *additive*: ``0.0`` where attention is allowed and
``-inf`` (we use a large negative constant, see :data:`NEG_INF`) where it
must be suppressed, so they can be added to the pre-softmax score matrix
``QKᵀ/√d`` exactly as in Eq. 5.

The builders are fully vectorised: a layout is first lowered to its
``segment_id_matrix`` (``(B, W)`` ints, ``-1`` for padding) and masks are
derived with broadcasting — no Python loops over token positions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.layout import BatchLayout

__all__ = [
    "NEG_INF",
    "additive_mask",
    "block_diagonal_mask",
    "causal_block_mask",
    "cross_attention_mask",
    "layout_attention_mask",
    "padding_key_mask",
]

# A finite stand-in for -inf: large enough that exp() underflows to exactly
# 0.0 in float32/float64 softmax, small enough to avoid inf-inf = nan when
# masks are composed by addition.
NEG_INF: float = -1.0e9


def additive_mask(allowed: np.ndarray) -> np.ndarray:
    """Lower a boolean *allowed* array to the canonical additive mask.

    The one sanctioned way (tcblint rule TCB001) to build an additive
    mask whose allow-pattern is not expressible by the specific
    constructors below: ``0.0`` where *allowed*, :data:`NEG_INF`
    elsewhere, float64.
    """
    return np.where(np.asarray(allowed, dtype=bool), 0.0, NEG_INF).astype(np.float64)


def block_diagonal_mask(segment_ids: np.ndarray) -> np.ndarray:
    """Eq. 6 mask from a ``(B, W)`` segment-id matrix.

    ``M[b, i, j] = 0`` iff positions ``i`` and ``j`` of row ``b`` belong to
    the same request (``Q_i K_iᵀ`` blocks); ``NEG_INF`` otherwise —
    including every interaction involving padding (id ``-1`` never matches
    because padding is additionally vetoed explicitly).
    """
    seg = np.asarray(segment_ids)
    if seg.ndim != 2:
        raise ValueError(f"segment_ids must be (B, W), got shape {seg.shape}")
    same = seg[:, :, None] == seg[:, None, :]
    valid = seg >= 0
    allowed = same & valid[:, :, None] & valid[:, None, :]
    return np.where(allowed, 0.0, NEG_INF).astype(np.float64)


def causal_block_mask(segment_ids: np.ndarray) -> np.ndarray:
    """Block-diagonal mask ∧ causality *within* each segment.

    Used by the decoder's self-attention under ConcatBatching: a token may
    attend only to earlier-or-equal positions of its *own* request.
    Because segments are contiguous, within-segment causality coincides
    with global causality restricted to the block diagonal.
    """
    seg = np.asarray(segment_ids)
    b, w = seg.shape
    same = seg[:, :, None] == seg[:, None, :]
    valid = seg >= 0
    causal = np.tril(np.ones((w, w), dtype=bool))
    allowed = same & causal[None, :, :] & valid[:, :, None] & valid[:, None, :]
    return np.where(allowed, 0.0, NEG_INF).astype(np.float64)


def cross_attention_mask(
    query_segment_ids: np.ndarray, key_segment_ids: np.ndarray
) -> np.ndarray:
    """Decoder→encoder cross-attention mask under ConcatBatching.

    A decoder token of request *r* may only attend to encoder positions of
    the same request *r*.  Shapes: queries ``(B, Wq)``, keys ``(B, Wk)`` →
    mask ``(B, Wq, Wk)``.
    """
    q = np.asarray(query_segment_ids)
    k = np.asarray(key_segment_ids)
    if q.shape[0] != k.shape[0]:
        raise ValueError(
            f"batch mismatch: queries {q.shape[0]} rows, keys {k.shape[0]} rows"
        )
    same = q[:, :, None] == k[:, None, :]
    allowed = same & (q >= 0)[:, :, None] & (k >= 0)[:, None, :]
    return np.where(allowed, 0.0, NEG_INF).astype(np.float64)


def padding_key_mask(segment_ids: np.ndarray) -> np.ndarray:
    """``(B, 1, W)`` additive mask hiding padded *key* positions only.

    This is the mask traditional NaiveBatching needs (no concatenation —
    every non-pad token in a row is one request).
    """
    seg = np.asarray(segment_ids)
    return np.where(seg >= 0, 0.0, NEG_INF)[:, None, :].astype(np.float64)


def layout_attention_mask(
    layout: BatchLayout,
    *,
    causal: bool = False,
    width: Optional[int] = None,
) -> np.ndarray:
    """Build the ``(B, W, W)`` self-attention mask for a batch layout."""
    seg = layout.segment_id_matrix(width)
    return causal_block_mask(seg) if causal else block_diagonal_mask(seg)
