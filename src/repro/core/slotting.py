"""Slotted ConcatBatching: slot-size policies and slot-wise packing.

Paper §4.2 divides every batch row into fixed-size *slots*; self-attention
is computed per slot (Eq. 8) so the off-diagonal score-matrix work that
pure ConcatBatching computes-then-masks is never computed at all.  Slots
also unlock *early memory cleaning* (§4.2.2) because a finished slot is a
separable tensor.

Algorithm 2 chooses the slot size ``z`` as the longest request in the
utility-dominant set ``H^U`` so that no high-utility request is ever
rejected for being longer than a slot; this module implements that policy
plus alternatives used in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.layout import BatchLayout, RowLayout, SlotLayout
from repro.types import Request

__all__ = [
    "SlottedPackingResult",
    "slot_size_from_utility_dominant",
    "slot_size_fixed_count",
    "divide_row_into_slots",
    "pack_into_slots",
]


@dataclass
class SlottedPackingResult:
    """Outcome of slot-wise packing."""

    layout: BatchLayout
    slot_size: int
    packed: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    @property
    def slots_per_row(self) -> int:
        row = self.layout.rows[0]
        return len(row.slots) if row.slots else 1


def slot_size_from_utility_dominant(
    utility_dominant: Sequence[Request], row_length: int
) -> int:
    """Algorithm 2, lines 3–4: slot size = longest request in ``H^U``.

    Guarantees no utility-dominant request is discarded by the slot limit.
    Falls back to the full row when ``H^U`` is empty.
    """
    if not utility_dominant:
        return row_length
    z = max(r.length for r in utility_dominant)
    return min(max(z, 1), row_length)


def slot_size_fixed_count(num_slots: int, row_length: int) -> int:
    """Ablation policy: divide the row into ``num_slots`` equal slots.

    This is the policy swept in the paper's Figs. 13–14 (speedup vs number
    of slots at fixed row length 400).
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    return max(1, row_length // num_slots)


def divide_row_into_slots(row: RowLayout, slot_size: int) -> list[SlotLayout]:
    """Algorithm 2, line 5: cut a row into contiguous ``slot_size`` slots.

    The trailing remainder (if ``capacity % slot_size != 0``) becomes a
    final shorter slot so no capacity is silently dropped.
    """
    if slot_size < 1:
        raise ValueError("slot_size must be >= 1")
    slots: list[SlotLayout] = []
    start = 0
    while start < row.capacity:
        size = min(slot_size, row.capacity - start)
        slots.append(SlotLayout(start=start, size=size))
        start += size
    return slots


def pack_into_slots(
    requests: Sequence[Request],
    num_rows: int,
    row_length: int,
    slot_size: int,
) -> SlottedPackingResult:
    """Algorithm 2, lines 6–8: greedily place requests into slots.

    Requests are taken in the given order (the scheduler's preference
    order) and placed into the first slot — scanning rows in order, slots
    within a row in order — that still has room.  Multiple short requests
    may share a slot, exactly as in pure concatenation (paper §4.2.1).
    Requests longer than ``slot_size`` are rejected: that is the cost of
    slotting the paper's slot-size policy is designed to bound.
    """
    layout = BatchLayout(num_rows=num_rows, row_length=row_length, scheme="slotted")
    for row in layout.rows:
        row.slots = divide_row_into_slots(row, slot_size)
    packed: list[Request] = []
    rejected: list[Request] = []
    for req in requests:
        placed = False
        for row in layout.rows:
            assert row.slots is not None
            for slot in row.slots:
                if slot.can_fit(req.length):
                    seg = slot.add(req)
                    row.segments.append(seg)
                    packed.append(req)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            rejected.append(req)
    return SlottedPackingResult(
        layout=layout, slot_size=slot_size, packed=packed, rejected=rejected
    )
