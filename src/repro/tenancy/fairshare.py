"""Deficit-weighted fair sharing of the batch across active tenants.

Each scheduling decision owns a token budget ``num_rows × row_length``.
When more than one tenant has waiting requests, that budget is
partitioned by **weight × deficit** before the per-tenant DAS select
runs: every active tenant's *entitlement* for the decision is its
weight-proportional share of the budget plus the deficit carried from
earlier decisions where it was under-served.  Rows are then handed out
one at a time to the tenant with the largest remaining entitlement, and
each row is filled by running the *existing* scheduler on that tenant's
requests alone with a one-row batch — so concatenation efficiency (the
whole point of TCB) is preserved within a tenant's share, while a noisy
neighbor can never monopolize rows: its entitlement is spent after its
share and the next row goes elsewhere.

Determinism: entitlement ties (e.g. two equal-weight tenants on their
first decision) are broken by an RNG drawn from a dedicated stream tag
(:data:`_STREAM_TENANT_FAIRNESS`), TCB011-distinct from every other
plane, seeded per decision — replays are bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.config import BatchConfig
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "fair_select",
    "entitlements",
    "settle_deficits",
    "_STREAM_TENANT_FAIRNESS",
]

# TCB011: tenancy's dedicated RNG stream tag.  Must stay distinct from
# 0x5D (random shed), 0xFA (faults), 0xCC (crashes), 0x7B (placement).
_STREAM_TENANT_FAIRNESS = 0x7E


def entitlements(
    groups: Mapping[str, Sequence[Request]],
    weights: Mapping[str, float],
    deficits: Mapping[str, float],
    budget: int,
) -> dict[str, float]:
    """Per-tenant token entitlements for one decision's *budget*.

    ``entitlement = carried deficit + budget × weight / Σ weight`` over
    the active tenants only — an idle tenant neither earns nor blocks
    share (its deficit was reset when it went idle).
    """
    total_w = sum(weights[t] for t in groups)
    return {
        t: deficits.get(t, 0.0) + budget * weights[t] / total_w
        for t in groups
    }


def settle_deficits(
    deficits: dict[str, float],
    ent: Mapping[str, float],
    used: Mapping[str, int],
    budget: int,
) -> None:
    """Carry unspent entitlement forward; reset idle tenants.

    The carry is clamped to ``[0, budget]``: an over-served tenant
    starts the next decision from zero (it cannot go into debt beyond
    one decision), and an under-served one can bank at most one full
    decision's budget — enough to eventually win rows against any
    weight ratio without unbounded credit hoarding.
    """
    for t in list(deficits):
        if t not in ent:
            deficits[t] = 0.0  # went idle: classic DRR reset
    for t, e in ent.items():
        deficits[t] = min(float(budget), max(0.0, e - used.get(t, 0)))


def fair_select(
    scheduler: Scheduler,
    groups: Mapping[str, list[Request]],
    now: float,
    *,
    weights: Mapping[str, float],
    deficits: dict[str, float],
    rng: np.random.Generator,
) -> SchedulingDecision:
    """One fair-shared scheduling decision over ≥ 2 active tenants.

    Allocates the batch's rows by weight×deficit entitlement, runs the
    wrapped scheduler per tenant with a one-row batch, and recombines
    the rows into a single :class:`SchedulingDecision` that satisfies
    ``validate(batch)`` (row budgets hold per sub-select; duplicates
    are impossible because each tenant's pool shrinks as it is served).
    """
    batch = scheduler.batch
    budget = batch.num_rows * batch.row_length
    ent = entitlements(groups, weights, deficits, budget)
    remaining = {t: list(reqs) for t, reqs in groups.items()}
    used: dict[str, int] = {t: 0 for t in groups}
    alloc: dict[str, int] = {t: 0 for t in groups}
    one_row = BatchConfig(num_rows=1, row_length=batch.row_length)

    rows: list[list[Request]] = []
    discarded: list[Request] = []
    runtime = 0.0
    slot_sizes: set[int] = set()
    for _ in range(batch.num_rows):
        active = [t for t in remaining if remaining[t]]
        if not active:
            break
        best_ent = max(ent[t] - used[t] for t in active)
        tied = sorted(
            t for t in active if ent[t] - used[t] >= best_ent - 1e-12
        )
        winner = tied[0] if len(tied) == 1 else tied[rng.integers(len(tied))]
        saved = scheduler.batch
        scheduler.batch = one_row
        try:
            sub = scheduler.select(remaining[winner], now)
        finally:
            scheduler.batch = saved
        runtime += sub.runtime
        discarded.extend(sub.discarded)
        row = sub.rows[0] if sub.rows else []
        if not row:
            # Nothing from this tenant fits a fresh row (e.g. every
            # request longer than L): park it for this decision so the
            # row loop always makes progress.
            remaining[winner] = []
            continue
        if sub.slot_size is not None:
            slot_sizes.add(sub.slot_size)
        selected_ids = {r.request_id for r in row}
        remaining[winner] = [
            r for r in remaining[winner] if r.request_id not in selected_ids
        ]
        used[winner] += sum(r.length for r in row)
        alloc[winner] += 1
        rows.append(row)

    settle_deficits(deficits, ent, used, budget)
    return SchedulingDecision(
        rows=rows,
        # Slotted sub-selects only compose when they agree on one size.
        slot_size=slot_sizes.pop() if len(slot_sizes) == 1 else None,
        runtime=runtime,
        discarded=discarded,
        info={
            "scheduler": f"fair-share/{scheduler.name}",
            "tenants": sorted(groups),
            "rows_by_tenant": {t: alloc[t] for t in sorted(alloc)},
            "tokens_by_tenant": {t: used[t] for t in sorted(used)},
        },
    )
