"""Per-tenant SLO ledgers with an exact global conservation invariant.

Every terminal the serving loops record into the global
:class:`~repro.serving.metrics.ServingMetrics` is mirrored here under
the owning tenant.  :meth:`TenantLedgerBook.assert_matches` then pins
the new conservation invariant of this plane: *summing any counter
across tenants equals the global ledger exactly* — integer counters to
the unit, goodput utility to float tolerance.  A tenancy bug can skew
who gets served, but it can never create, lose, or double-count a
request without this tripping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.metrics import ServingMetrics

__all__ = ["TenantLedger", "TenantLedgerBook"]


@dataclass
class TenantLedger:
    """Terminal accounting for one tenant.

    ``quota_rejected`` counts the subset of ``rejected`` dropped by the
    tenant's own token bucket / in-flight cap (mirroring how the global
    ledger counts ``shed`` inside ``rejected``).
    """

    arrived: int = 0
    served: int = 0
    expired: int = 0
    rejected: int = 0
    abandoned: int = 0
    shed: int = 0
    quota_rejected: int = 0
    on_time: int = 0
    served_tokens: int = 0
    goodput_utility: float = 0.0

    def to_dict(self) -> dict:
        return {
            "arrived": self.arrived,
            "served": self.served,
            "expired": self.expired,
            "rejected": self.rejected,
            "abandoned": self.abandoned,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "on_time": self.on_time,
            "served_tokens": self.served_tokens,
            "goodput_utility": self.goodput_utility,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "TenantLedger":
        return cls(**state)

    @property
    def on_time_rate(self) -> float:
        return self.on_time / self.served if self.served else 0.0

    @property
    def conservation_ok(self) -> bool:
        return (
            self.served + self.expired + self.rejected + self.abandoned
            == self.arrived
        )


@dataclass
class TenantLedgerBook:
    """All tenants' ledgers plus the cross-tenant conservation check."""

    ledgers: dict[str, TenantLedger] = field(default_factory=dict)

    def ledger(self, tenant: str) -> TenantLedger:
        led = self.ledgers.get(tenant)
        if led is None:
            led = self.ledgers[tenant] = TenantLedger()
        return led

    def reset(self) -> None:
        self.ledgers.clear()

    def totals(self) -> TenantLedger:
        """Sum of every counter across tenants."""
        tot = TenantLedger()
        for led in self.ledgers.values():
            tot.arrived += led.arrived
            tot.served += led.served
            tot.expired += led.expired
            tot.rejected += led.rejected
            tot.abandoned += led.abandoned
            tot.shed += led.shed
            tot.quota_rejected += led.quota_rejected
            tot.on_time += led.on_time
            tot.served_tokens += led.served_tokens
            tot.goodput_utility += led.goodput_utility
        return tot

    def assert_matches(
        self, metrics: "ServingMetrics", *, deep: bool = True
    ) -> None:
        """Per-tenant sums must equal the global ledger exactly.

        Integer counters match to the unit; goodput utility (a float
        sum taken in a different order) matches to ``math.isclose``.
        ``deep=False`` skips the O(served) on-time/goodput recompute
        and checks only the O(1) request-conservation counters — used
        by the plane's per-run finalize when a single ledger exists
        (one tenant's on-time figures have no cross-tenant split to
        get wrong, and the inert configuration is separately pinned
        bit-for-bit by the digest tests).
        """
        tot = self.totals()
        pairs = {
            "arrived": (tot.arrived, metrics.arrived),
            "served": (tot.served, metrics.num_served),
            "expired": (tot.expired, metrics.num_expired),
            "rejected": (tot.rejected, metrics.num_rejected),
            "abandoned": (tot.abandoned, metrics.num_abandoned),
            "shed": (tot.shed, metrics.shed),
        }
        if deep:
            # One pass over the served list for both on-time figures
            # (``num_on_time`` and ``goodput_utility`` are each O(n)
            # properties; the check needs them together).
            on_time = 0
            goodput = 0.0
            finish_times = metrics.finish_times
            for r in metrics.served:
                window = finish_times.get(r.request_id)
                if window is None or window[1] <= r.deadline:
                    on_time += 1
                    goodput += r.utility
            pairs["on_time"] = (tot.on_time, on_time)
        bad = {
            k: (ours, theirs)
            for k, (ours, theirs) in pairs.items()
            if ours != theirs
        }
        assert not bad, (
            f"tenant ledger conservation violated: per-tenant sums != "
            f"global ServingMetrics for {bad} "
            f"(tenants={sorted(self.ledgers)})"
        )
        if deep:
            assert math.isclose(
                tot.goodput_utility,
                goodput,
                rel_tol=1e-9,
                abs_tol=1e-9,
            ), (
                f"tenant goodput {tot.goodput_utility} != global {goodput}"
            )
        for tenant, led in self.ledgers.items():
            assert led.conservation_ok, (
                f"tenant {tenant!r} ledger leaks: "
                f"{led.served}+{led.expired}+{led.rejected}+"
                f"{led.abandoned} != {led.arrived}"
            )

    def export_state(self) -> dict:
        return {t: led.to_dict() for t, led in self.ledgers.items()}

    def apply_state(self, state: dict) -> None:
        self.ledgers = {
            t: TenantLedger.from_dict(d) for t, d in state.items()
        }

    def summary(self) -> dict[str, dict]:
        return {t: led.to_dict() for t, led in sorted(self.ledgers.items())}
