"""Deterministic per-tenant token-bucket admission on the sim clock.

Refill is driven purely by the simulated ``now`` handed in by the
serving loop — no wall-clock reads (TCB003) and no hidden RNG (TCB010):
two runs over the same workload see bit-identical bucket levels.

A rejection surfaces as :class:`QuotaExceeded`, a typed subclass of the
PR 4 :class:`~repro.overload.backpressure.BackpressureError`, so server
clients that already catch backpressure handle quota rejections for
free while still being able to tell the two apart.
"""

from __future__ import annotations

from typing import Optional

from repro.overload.backpressure import BackpressureError

__all__ = ["QuotaExceeded", "TokenBucket"]


class QuotaExceeded(BackpressureError):
    """A tenant's token bucket (or in-flight cap) rejected a request.

    Subclasses :class:`BackpressureError` so it flows through the same
    client-side handling as queue-full / degraded-mode rejections;
    ``tenant`` and ``quota_reason`` carry the tenancy-specific detail.
    """

    def __init__(self, tenant: str, quota_reason: str) -> None:
        super().__init__(f"quota: tenant {tenant!r} {quota_reason}")
        self.tenant = tenant
        self.quota_reason = quota_reason


class TokenBucket:
    """One tenant's token bucket, refilled lazily from sim time.

    ``level(t) = min(burst, level + rate * (t - last))`` — the classic
    lazy-refill form, evaluated only when the bucket is consulted so
    idle tenants cost nothing per tick.
    """

    __slots__ = ("rate", "burst", "level", "last")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.level = float(burst)  # buckets start full
        self.last = 0.0

    def _refill(self, now: float) -> None:
        if now > self.last:
            self.level = min(
                self.burst, self.level + self.rate * (now - self.last)
            )
            self.last = now

    def peek(self, now: float) -> float:
        """Current level at ``now`` without consuming anything."""
        self._refill(now)
        return self.level

    def try_take(self, tokens: int, now: float) -> bool:
        """Consume *tokens* if the bucket holds them; True on success."""
        self._refill(now)
        # Small epsilon forgives float drift from repeated refills so a
        # tenant arriving exactly at its sustained rate is never starved
        # by representation error.
        if tokens <= self.level + 1e-9:
            self.level -= tokens
            return True
        return False

    def export_state(self) -> dict:
        return {"level": self.level, "last": self.last}

    def apply_state(self, state: Optional[dict]) -> None:
        if state is None:
            return
        self.level = float(state["level"])
        self.last = float(state["last"])
