"""The tenancy plane: quota admission, fair share, per-tenant ledgers.

One object — :class:`TenancyPlane` — is threaded through a serving loop
behind its ``tenancy=`` kwarg (``None`` keeps the loop bit-identical to
the tenant-blind baseline).  It owns the three dynamic pieces of the
subsystem:

* **admission** — per-tenant :class:`~repro.tenancy.admission.TokenBucket`
  refilled from sim time, plus a max-in-flight token cap; a rejection
  reason string feeds the loop's quota-reject terminal (and, on the
  server, a typed :class:`~repro.tenancy.admission.QuotaExceeded`);
* **fair share** — :func:`~repro.tenancy.fairshare.fair_select` over
  the loop's existing scheduler whenever more than one tenant is
  waiting (single-tenant decisions fall through to the wrapped
  scheduler untouched, so an all-default registry costs one set-build
  per decision);
* **accounting** — a :class:`~repro.tenancy.ledger.TenantLedgerBook`
  mirroring every global-ledger mutation under the owning tenant, with
  :meth:`finalize` asserting the cross-tenant conservation invariant
  at end of run.

State is export/apply round-trippable for the durability plane
(Snapshot + journal commits, TCB013), mirroring the health plane.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.rng import ensure_rng
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.tenancy.admission import TokenBucket
from repro.tenancy.fairshare import (
    _STREAM_TENANT_FAIRNESS,
    entitlements,
    fair_select,
    settle_deficits,
)
from repro.tenancy.ledger import TenantLedgerBook
from repro.tenancy.registry import DEFAULT_TENANT, TenantRegistry
from repro.types import Request

__all__ = ["TenancyPlane", "IterationShare"]


class IterationShare:
    """Token allowances for one continuous-batching admission pass.

    The continuous loop admits into a per-iteration token budget rather
    than discrete rows, so fair share there partitions that budget by
    weight×deficit and the loop consults :meth:`fits` / :meth:`charge`
    per candidate.  :meth:`settle` carries unspent entitlement forward.
    """

    def __init__(
        self,
        plane: "TenancyPlane",
        groups: Mapping[str, list[Request]],
        budget: int,
    ) -> None:
        self._plane = plane
        self._budget = budget
        weights = {
            t: plane.registry.effective_weight(t) for t in groups
        }
        self._ent = entitlements(groups, weights, plane._deficits, budget)
        self._used: dict[str, int] = {t: 0 for t in groups}

    def fits(self, request: Request) -> bool:
        t = self._plane.key(request)
        remaining = self._ent.get(t, 0.0) - self._used.get(t, 0)
        return request.length <= remaining + 1e-9

    def charge(self, request: Request) -> None:
        t = self._plane.key(request)
        self._used[t] = self._used.get(t, 0) + request.length

    def settle(self) -> None:
        settle_deficits(
            self._plane._deficits, self._ent, self._used, self._budget
        )


class TenancyPlane:
    """Multi-tenant QoS plane for the serving loops (see module doc)."""

    def __init__(
        self,
        registry: Optional[TenantRegistry] = None,
        *,
        seed: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else TenantRegistry()
        self.seed = seed
        # True when no class in the registry carries a rate or an
        # in-flight cap: admit() can never refuse, so the loops skip
        # the per-request dispatch entirely.
        classes = list(self.registry._classes.values()) + [
            self.registry.default_class
        ]
        self.passive_admission = all(
            c.rate is None and c.max_in_flight is None for c in classes
        )
        self.book = TenantLedgerBook()
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight: dict[str, int] = {}
        self._charged: dict[int, tuple[str, int]] = {}
        self._deficits: dict[str, float] = {}
        self._decision = 0
        # Tenants whose SLO class has neither a rate nor an in-flight
        # cap: admission is a no-op for them, cached to one set probe.
        self._unconstrained: set[Optional[str]] = set()
        # One-entry ledger cache for the hot hooks (hit rate ~100% in
        # single-tenant runs); invalidated whenever the book's ledger
        # objects can change identity.
        self._hot_tenant: Optional[str] = None
        self._hot_ledger: Any = None

    @property
    def enabled(self) -> bool:
        return True

    def begin_run(self) -> None:
        """Reset all run-scoped state (ledgers, buckets, deficits)."""
        self.book.reset()
        self._buckets.clear()
        self._in_flight.clear()
        self._charged.clear()
        self._deficits.clear()
        self._decision = 0
        self._unconstrained.clear()
        self._hot_tenant = None
        self._hot_ledger = None

    # ------------------------------------------------------------------
    # identity

    def key(self, request: Request) -> str:
        """Ledger key of *request*'s tenant."""
        return self.registry.tenant_of(request)

    # ------------------------------------------------------------------
    # quota admission

    def admit(self, request: Request, now: float) -> Optional[str]:
        """Try to admit *request* at sim time *now*.

        Returns ``None`` on success (the request's tokens are charged
        against the tenant's in-flight cap until a terminal releases
        them) or a human-readable rejection reason.
        """
        if request.tenant in self._unconstrained:
            return None
        cls = self.registry.tenant_class(request.tenant)
        if cls.max_in_flight is None and cls.rate is None:
            # Unconstrained class: nothing to charge, nothing to refuse.
            self._unconstrained.add(request.tenant)
            return None
        t = self.key(request)
        if cls.max_in_flight is not None:
            if (
                self._in_flight.get(t, 0) + request.length
                > cls.max_in_flight
            ):
                return f"in-flight cap {cls.max_in_flight} tokens"
        if cls.rate is not None:
            bucket = self._buckets.get(t)
            if bucket is None:
                bucket = self._buckets[t] = TokenBucket(
                    cls.rate, cls.bucket_burst
                )
            if not bucket.try_take(request.length, now):
                return (
                    f"token bucket empty "
                    f"(rate {cls.rate:g}/s, burst {cls.bucket_burst:g})"
                )
        self._in_flight[t] = self._in_flight.get(t, 0) + request.length
        self._charged[request.request_id] = (t, request.length)
        return None

    def _release(self, requests: Iterable[Request]) -> None:
        if not self._charged:
            return
        for r in requests:
            rec = self._charged.pop(r.request_id, None)
            if rec is not None:
                self._in_flight[rec[0]] -= rec[1]

    # ------------------------------------------------------------------
    # ledger hooks (mirror every global ServingMetrics mutation)

    def _ledger_for(self, tenant: Optional[str]):
        t = tenant if tenant is not None else DEFAULT_TENANT
        led = self.book.ledgers.get(t)
        if led is None:
            led = self.book.ledger(t)
        self._hot_tenant = tenant
        self._hot_ledger = led
        return led

    def arrive(self, request: Request) -> None:
        t = request.tenant
        led = (
            self._hot_ledger
            if t == self._hot_tenant and self._hot_ledger is not None
            else self._ledger_for(t)
        )
        led.arrived += 1

    def served(self, requests: Sequence[Request], finish: float) -> None:
        hot_t, hot_led = self._hot_tenant, self._hot_ledger
        for r in requests:
            t = r.tenant
            if t == hot_t and hot_led is not None:
                led = hot_led
            else:
                led = self._ledger_for(t)
                hot_t, hot_led = t, led
            led.served += 1
            led.served_tokens += r.length
            if finish <= r.deadline:
                led.on_time += 1
                led.goodput_utility += r.utility
        self._release(requests)

    def expired(self, requests: Sequence[Request]) -> None:
        hot_t, hot_led = self._hot_tenant, self._hot_ledger
        for r in requests:
            t = r.tenant
            if t == hot_t and hot_led is not None:
                led = hot_led
            else:
                led = self._ledger_for(t)
                hot_t, hot_led = t, led
            led.expired += 1
        self._release(requests)

    def rejected(
        self,
        requests: Sequence[Request],
        *,
        quota: bool = False,
        now: float = 0.0,
        tracer: Any = None,
    ) -> None:
        for r in requests:
            led = self.book.ledger(self.key(r))
            led.rejected += 1
            if quota:
                led.quota_rejected += 1
                if tracer is not None:
                    tracer.tenant(
                        now,
                        "quota",
                        tenant=self.key(r),
                        request_id=r.request_id,
                        tokens=r.length,
                    )
        self._release(requests)

    def shed(self, requests: Sequence[Request]) -> None:
        # Sheds are rejections in the global ledger (shed ⊂ rejected),
        # so the tenant ledger mirrors both counters.
        for r in requests:
            led = self.book.ledger(self.key(r))
            led.rejected += 1
            led.shed += 1
        self._release(requests)

    def abandoned(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.book.ledger(self.key(r)).abandoned += 1
        self._release(requests)

    def finalize(self, metrics: Any) -> None:
        """Assert the per-tenant vs global conservation invariant.

        The O(served) on-time/goodput recompute only pays off when
        there is a cross-tenant split to get wrong; single-ledger runs
        keep the O(1) counter conservation check.
        """
        self.book.assert_matches(metrics, deep=len(self.book.ledgers) > 1)

    # ------------------------------------------------------------------
    # fair share

    def select(
        self,
        scheduler: Scheduler,
        waiting: Sequence[Request],
        now: float,
        *,
        tracer: Any = None,
    ) -> SchedulingDecision:
        """Scheduling decision with cross-tenant fair sharing.

        With zero or one tenant waiting this is *exactly* the wrapped
        scheduler's decision — same object, same fast path — so
        single-tenant runs pay only a set-build per decision (and runs
        whose whole history has one tenant skip even that: every
        request passes :meth:`arrive` before it can wait, so the
        ledger book's keyset bounds the tenants a decision can see).
        """
        if len(self.book.ledgers) <= 1:
            return scheduler.select(waiting, now)
        tenants = {r.tenant for r in waiting}
        if len(tenants) <= 1:
            return scheduler.select(waiting, now)
        groups: dict[str, list[Request]] = {}
        for r in waiting:
            groups.setdefault(self.key(r), []).append(r)
        weights = {t: self.registry.effective_weight(t) for t in groups}
        rng = ensure_rng(
            np.random.SeedSequence(
                (self.seed, _STREAM_TENANT_FAIRNESS, self._decision)
            )
        )
        self._decision += 1
        decision = fair_select(
            scheduler,
            groups,
            now,
            weights=weights,
            deficits=self._deficits,
            rng=rng,
        )
        if tracer is not None and decision.rows:
            tracer.tenant(
                now,
                "share",
                rows=decision.info["rows_by_tenant"],
                tokens=decision.info["tokens_by_tenant"],
            )
        return decision

    def iteration_share(
        self, waiting: Sequence[Request], budget: int
    ) -> Optional[IterationShare]:
        """Fair-share allowances for a continuous admission pass.

        ``None`` when at most one tenant is waiting — the loop then
        runs its baseline admission untouched.
        """
        if len(self.book.ledgers) <= 1:
            return None
        tenants = {r.tenant for r in waiting}
        if len(tenants) <= 1:
            return None
        groups: dict[str, list[Request]] = {}
        for r in waiting:
            groups.setdefault(self.key(r), []).append(r)
        return IterationShare(self, groups, budget)

    # ------------------------------------------------------------------
    # durability (Snapshot / journal round trip, TCB013)

    def export_state(self) -> dict[str, Any]:
        """Serializable run state (fresh containers, JSON-safe)."""
        return {
            "ledgers": self.book.export_state(),
            "buckets": {
                t: b.export_state() for t, b in self._buckets.items()
            },
            "in_flight": dict(self._in_flight),
            "charged": [
                [rid, t, tokens]
                for rid, (t, tokens) in self._charged.items()
            ],
            "deficits": dict(self._deficits),
            "decision": self._decision,
        }

    def apply_state(self, state: Optional[dict[str, Any]]) -> None:
        """Restore :meth:`export_state` output (warm-restart path)."""
        self.begin_run()
        if state is None:
            return
        self.book.apply_state(state["ledgers"])
        for t, bstate in state["buckets"].items():
            cls = self.registry.tenant_class(t)
            if cls.rate is None:
                continue
            bucket = TokenBucket(cls.rate, cls.bucket_burst)
            bucket.apply_state(bstate)
            self._buckets[t] = bucket
        self._in_flight = {
            t: int(v) for t, v in state["in_flight"].items()
        }
        self._charged = {
            int(rid): (t, int(tokens))
            for rid, t, tokens in state["charged"]
        }
        self._deficits = {
            t: float(v) for t, v in state["deficits"].items()
        }
        self._decision = int(state["decision"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenancyPlane(tenants={len(self.registry.tenants)}, "
            f"ledgers={len(self.book.ledgers)}, "
            f"decisions={self._decision})"
        )
