"""Tenant identity and typed SLO classes.

The registry is the static half of the tenancy plane: a mapping from
tenant id to a :class:`TenantClass` describing its service-level
contract.  Three stock classes ship with the repo — ``premium``,
``standard`` and ``batch`` — differing in utility weight, deadline
slack, and token-bucket quota.  Everything is a frozen dataclass so a
registry can be shared between a workload generator and a simulator
without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.types import Request

__all__ = ["TenantClass", "TenantRegistry", "SLO_CLASSES", "DEFAULT_TENANT"]

# Tenant id used for ledger accounting of untenanted requests
# (``Request.tenant is None``).
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantClass:
    """One typed SLO class.

    Parameters
    ----------
    name:
        Class label (``premium`` / ``standard`` / ``batch`` / custom).
    weight:
        Utility weight multiplier.  The workload generator stamps it
        onto every request of a tenant in this class, so DAS's
        ``v = w/l`` utility (and the fair-share deficit quantum) both
        see it — this is what makes the ``Request.weight`` docstring
        true.
    deadline_slack:
        Multiplier on the deadline slack ``d - a`` the workload
        generator draws.  Premium tenants get tighter deadlines
        (< 1.0), batch tenants looser ones (> 1.0).
    rate:
        Token-bucket refill rate in tokens per simulated second.
        ``None`` disables the bucket (unlimited quota).
    burst:
        Token-bucket capacity in tokens.  Ignored when ``rate`` is
        ``None``; defaults to one second of refill when left ``None``.
    max_in_flight:
        Cap on tokens admitted but not yet terminal (queued or
        running).  ``None`` means unbounded.
    """

    name: str = "standard"
    weight: float = 1.0
    deadline_slack: float = 1.0
    rate: Optional[float] = None
    burst: Optional[float] = None
    max_in_flight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.deadline_slack <= 0:
            raise ValueError(
                f"deadline_slack must be positive, got {self.deadline_slack}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )

    @property
    def bucket_burst(self) -> Optional[float]:
        """Effective bucket capacity (one second of refill by default)."""
        if self.rate is None:
            return None
        return self.burst if self.burst is not None else self.rate


# Stock SLO classes.  Quotas are deliberately None here: rate limits are
# a per-deployment knob, set when a registry is built for an experiment.
SLO_CLASSES: dict[str, TenantClass] = {
    "premium": TenantClass(name="premium", weight=4.0, deadline_slack=1.0),
    "standard": TenantClass(name="standard", weight=1.0, deadline_slack=1.0),
    "batch": TenantClass(name="batch", weight=0.25, deadline_slack=4.0),
}


class TenantRegistry:
    """Mapping of tenant ids to their SLO classes.

    ``tenants`` maps tenant id → :class:`TenantClass` (or a stock class
    name from :data:`SLO_CLASSES`).  Requests with ``tenant=None`` fall
    back to ``default_class`` and are accounted under
    :data:`DEFAULT_TENANT`.
    """

    def __init__(
        self,
        tenants: Optional[Mapping[str, Union[TenantClass, str]]] = None,
        *,
        default_class: Union[TenantClass, str] = "standard",
    ) -> None:
        self._classes: dict[str, TenantClass] = {}
        for tenant, cls in (tenants or {}).items():
            self._classes[tenant] = self._resolve(cls)
        self.default_class = self._resolve(default_class)

    @staticmethod
    def _resolve(cls: Union[TenantClass, str]) -> TenantClass:
        if isinstance(cls, TenantClass):
            return cls
        if cls not in SLO_CLASSES:
            raise KeyError(
                f"unknown SLO class {cls!r}; stock classes: "
                f"{sorted(SLO_CLASSES)}"
            )
        return SLO_CLASSES[cls]

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant ids in insertion order."""
        return tuple(self._classes)

    def tenant_of(self, request: Request) -> str:
        """Ledger key for *request* (``DEFAULT_TENANT`` if untagged)."""
        return request.tenant if request.tenant is not None else DEFAULT_TENANT

    def tenant_class(self, tenant: Optional[str]) -> TenantClass:
        """SLO class for *tenant* (default class for unknown/None)."""
        if tenant is None:
            return self.default_class
        return self._classes.get(tenant, self.default_class)

    def effective_weight(self, tenant: Optional[str]) -> float:
        """Utility weight the tenant's SLO class confers on its requests."""
        return self.tenant_class(tenant).weight
