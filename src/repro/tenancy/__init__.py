"""Multi-tenant QoS plane (extension beyond the paper; docs/tenancy.md).

Tenant identity + typed SLO classes (:mod:`repro.tenancy.registry`),
deterministic token-bucket admission on the sim clock
(:mod:`repro.tenancy.admission`), deficit-weighted fair sharing of the
batch over the existing schedulers (:mod:`repro.tenancy.fairshare`),
and per-tenant SLO ledgers with an exact global conservation invariant
(:mod:`repro.tenancy.ledger`) — all carried by one
:class:`~repro.tenancy.plane.TenancyPlane` threaded behind the serving
loops' ``tenancy=`` kwarg, inert when ``None``.
"""

from repro.tenancy.admission import QuotaExceeded, TokenBucket
from repro.tenancy.fairshare import fair_select
from repro.tenancy.ledger import TenantLedger, TenantLedgerBook
from repro.tenancy.plane import IterationShare, TenancyPlane
from repro.tenancy.registry import (
    DEFAULT_TENANT,
    SLO_CLASSES,
    TenantClass,
    TenantRegistry,
)

__all__ = [
    "DEFAULT_TENANT",
    "IterationShare",
    "QuotaExceeded",
    "SLO_CLASSES",
    "TenancyPlane",
    "TenantClass",
    "TenantLedger",
    "TenantLedgerBook",
    "TenantRegistry",
    "TokenBucket",
    "fair_select",
]
