"""Plumbing shared by every serving loop (simulator, cluster, continuous).

One home for the constants and duck-typing that used to be copy-pasted
per loop, so the loops cannot drift apart on workload handling, the
engine-time floor, or how slotted engines receive their slot size.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.engine.base import MIN_SLOT, InferenceEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.scheduling.base import SchedulingDecision
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["MIN_SLOT", "apply_slot_size", "resolve_workload"]


def resolve_workload(
    workload: Union[WorkloadGenerator, Sequence[Request]],
    horizon: Optional[float],
) -> tuple[list[Request], float]:
    """Lower a workload generator or request list to ``(requests, horizon)``.

    Generators are duck-typed on ``generate()`` so corpus/burst workloads
    plug in; a plain request list is sorted by ``(arrival, request_id)``
    and, absent an explicit horizon, served until one second past the
    last arrival.
    """
    if hasattr(workload, "generate"):
        requests = workload.generate()
        if horizon is None:
            horizon = workload.horizon
    else:
        requests = sorted(workload, key=lambda r: (r.arrival, r.request_id))
        if horizon is None:
            horizon = max((r.arrival for r in requests), default=0.0) + 1.0
    return list(requests), float(horizon)


def apply_slot_size(engine: InferenceEngine, decision: SchedulingDecision) -> None:
    """Forward a slotted scheduler's slot size to the engine, if any.

    Unwraps one fault-injection layer (``FaultyEngine.inner``) so a
    wrapped slotted engine still receives Algorithm 2's slot size.
    """
    if decision.slot_size is None:
        return
    target = engine
    inner = getattr(engine, "inner", None)
    if isinstance(inner, InferenceEngine):
        target = inner
    if isinstance(target, SlottedConcatEngine):
        target.set_slot_size(decision.slot_size)
