"""Multi-engine (multi-GPU) serving simulation.

A natural extension of the paper's single-GPU system: ``G`` inference
engines share one wait queue, and whenever *any* engine goes idle the
scheduler packs a batch for it.  Engines run concurrently, so the
simulation tracks a per-engine busy-until clock and always dispatches to
the earliest-idle engine.

Deadline semantics, queue expiry and metrics are identical to the
single-engine :class:`~repro.serving.simulator.ServingSimulator`, and a
cluster of size 1 must reproduce it exactly (tested — including when
the engine is wrapped in a zero-fault
:class:`~repro.faults.engine.FaultyEngine`).

Failover semantics (``docs/faults.md``): a crashed engine leaves the
idle heap until its recovery time, its in-flight requests go through
the bounded deadline-aware requeue policy, queued work drains to the
surviving engines, and the engine rejoins the heap when its downtime
ends.  Failure detection is optimistic — the loop learns of a failed
batch when it is dispatched, so survivors may retry its requests within
the failed attempt's latency window.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence

from repro.cluster_health.hedge import HedgeResolution
from repro.cluster_health.plane import TailTolerancePlane
from repro.durability.plane import DurabilityPlane
from repro.durability.restore import RestoredState
from repro.durability.snapshot import LiveState
from repro.engine.base import InferenceEngine
from repro.faults.recovery import RetryPolicy, requeue_failed, serve_slot
from repro.obs.recorder import NO_TRACE, Tracer
from repro.overload.controller import OverloadController
from repro.overload.ledger import drop_unservable
from repro.scheduling.base import Scheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.admission import AdmissionController
from repro.serving.common import MIN_SLOT, apply_slot_size, resolve_workload
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import SimulationResult
from repro.tenancy.plane import TenancyPlane
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["ClusterSimulator"]


class ClusterSimulator:
    """Serve one workload with ``G`` engines sharing a queue."""

    def __init__(
        self,
        scheduler: Scheduler,
        engines: Sequence[InferenceEngine],
        *,
        admission: Optional[AdmissionController] = None,
        retry: Optional[RetryPolicy] = None,
        trace: Optional[Tracer] = None,
        overload: Optional[OverloadController] = None,
        durability: Optional[DurabilityPlane] = None,
        health: Optional[TailTolerancePlane] = None,
        tenancy: Optional[TenancyPlane] = None,
    ):
        if not engines:
            raise ValueError("need at least one engine")
        self.scheduler = scheduler
        self.engines = list(engines)
        self.admission = admission
        self.retry = retry or RetryPolicy()
        self.trace = trace
        # Overload plane (off by default); breakers are per engine
        # index, so a sick replica is quarantined while the rest of the
        # cluster keeps draining the shared queue.
        self.overload = overload
        # Durability plane (off by default; see docs/recovery.md).  The
        # idle heap is part of the snapshot, so a restore resumes with
        # every engine's busy-until clock intact.
        self.durability = durability
        # Tail-tolerance plane (off by default; docs/tail_tolerance.md):
        # gray-failure detection, health-scored placement, drains and
        # hedged dispatch.  Composes with — but is distinct from — the
        # overload plane's circuit breaker: the breaker reacts to typed
        # failures, the health plane also to slowness.
        self.health = health
        # Tenancy plane (off by default; docs/tenancy.md): quota
        # admission, fair share across tenants, per-tenant ledgers.
        self.tenancy = tenancy

    def _release(self, requests: Iterable[Request]) -> None:
        if self.admission is not None:
            self.admission.release(list(requests))

    @staticmethod
    def _next_event_after(
        idle: list[tuple[float, int, int]], now: float
    ) -> Optional[float]:
        """Earliest strictly-later time any other engine becomes idle."""
        later = [t for (t, _, _) in idle if t > now]
        return min(later) if later else None

    def _hedge(
        self,
        hp: TailTolerancePlane,
        idle: list,
        primary_idx: int,
        selected: list,
        now: float,
        outcome,
        deadline: float,
        primary_finish: float,
        metrics: ServingMetrics,
        ov: Optional[OverloadController],
        tr,
        dur: Optional[DurabilityPlane],
    ) -> Optional[HedgeResolution]:
        """Race a duplicate of ``selected`` against a straggling slot.

        Called once the primary's busy time is known to blow the hedge
        deadline.  Picks a healthy idle engine able to start at
        ``now + deadline``, write-ahead journals the duplicate dispatch,
        serves it, and resolves first-completion-wins.  Exactly-once
        discipline: the loser — or a failed duplicate — never touches
        the queue or the terminal ledger; only the winner's result flows
        back into the caller's (single) serve path, so conservation and
        terminal dedupe hold exactly.  Returns ``None`` when no eligible
        target exists (the primary simply finishes late).
        """
        hedge_start = now + deadline
        entry = hp.hedge_target(idle, primary_idx, hedge_start)
        if entry is None:
            return None
        idle.remove(entry)
        heapq.heapify(idle)
        target_idx = entry[2]
        target = self.engines[target_idx]
        primary_dispatch = now + outcome.wasted
        metrics.hedges += 1
        if tr.enabled:
            tr.health(
                hedge_start,
                "hedge",
                engine=primary_idx,
                target=target_idx,
                deadline=deadline,
                num_requests=len(selected),
            )
        if dur is not None:
            dur.dispatch(selected, engine=target_idx)
        h_out = serve_slot(target, selected, hedge_start)
        metrics.failed_batches += h_out.failures
        metrics.retries += h_out.split_retries
        metrics.total_engine_time += h_out.wasted
        metrics.hedge_wasted += h_out.wasted
        if ov is not None:
            ov.record_result(
                target_idx,
                hedge_start + h_out.wasted,
                ok=h_out.result is not None,
                kind="crash" if h_out.down_until is not None else "failure",
                tracer=tr,
            )
        if h_out.result is not None:
            hp.observe(
                target_idx,
                hedge_start + h_out.wasted,
                ok=True,
                observed=max(h_out.result.latency, MIN_SLOT),
                predicted=hp.predict(target, h_out.result),
                tracer=tr,
            )
        else:
            hp.observe(
                target_idx, hedge_start + h_out.wasted, ok=False, tracer=tr
            )
        if tr.enabled and h_out.failures:
            tr.batch(
                hedge_start,
                h_out.wasted,
                engine=target_idx,
                kind="failed",
                failures=h_out.failures,
                split_retries=h_out.split_retries,
                num_requests=len(selected),
            )
        if h_out.result is None:
            # The duplicate itself failed or crashed.  Its requests are
            # NOT requeued or abandoned — the primary's in-flight copy
            # still owns them (exactly-once); only engine time and
            # downtime are booked, and the target re-arms like any
            # failed slot.
            if h_out.down_until is not None:
                metrics.downtime += h_out.downtime
                if tr.enabled:
                    tr.batch(
                        hedge_start + h_out.wasted,
                        h_out.downtime,
                        engine=target_idx,
                        kind="crash",
                        downtime=h_out.downtime,
                    )
                heapq.heappush(idle, (h_out.down_until, target_idx, target_idx))
            else:
                heapq.heappush(
                    idle, (hedge_start + h_out.wasted, target_idx, target_idx)
                )
            res = HedgeResolution(
                kind="failed",
                primary=primary_idx,
                target=target_idx,
                deadline=deadline,
                hedge_start=hedge_start,
                winner_engine=primary_idx,
                winner_dispatch=primary_dispatch,
                winner_latency=primary_finish - primary_dispatch,
                winner_finish=primary_finish,
                loser_engine=target_idx,
                loser_busy=h_out.wasted,
            )
        else:
            h_latency = max(h_out.result.latency, MIN_SLOT)
            h_dispatch = hedge_start + h_out.wasted
            h_finish = h_dispatch + h_latency
            if h_finish < primary_finish:
                # Duplicate wins: the straggling primary is cancelled
                # the moment the duplicate's result lands; its partial
                # slot time is booked as hedge waste.  (If the primary
                # was still burning failed-attempt waste at that point,
                # its successful attempt never started — zero partial.)
                cancel_at = max(h_finish, primary_dispatch)
                loser_busy = cancel_at - primary_dispatch
                metrics.total_engine_time += loser_busy
                metrics.hedge_wasted += loser_busy
                metrics.hedge_wins += 1
                hp.note_hedged_latency(h_out.wasted + h_latency)
                if tr.enabled:
                    tr.batch(
                        primary_dispatch,
                        loser_busy,
                        engine=primary_idx,
                        kind="cancelled",
                        num_requests=len(selected),
                        hedge_target=target_idx,
                    )
                    tr.health(
                        h_finish,
                        "hedge-win",
                        engine=primary_idx,
                        target=target_idx,
                        saved=primary_finish - h_finish,
                    )
                heapq.heappush(idle, (h_finish, target_idx, target_idx))
                res = HedgeResolution(
                    kind="win",
                    primary=primary_idx,
                    target=target_idx,
                    deadline=deadline,
                    hedge_start=hedge_start,
                    winner_engine=target_idx,
                    winner_dispatch=h_dispatch,
                    winner_latency=h_latency,
                    winner_finish=h_finish,
                    loser_engine=primary_idx,
                    loser_busy=loser_busy,
                    result=h_out.result,
                )
            else:
                # Primary wins (ties go to the primary — no re-dispatch
                # churn on equal finishes): the duplicate is cancelled
                # at the primary's finish.
                cancel_at = max(primary_finish, h_dispatch)
                loser_busy = cancel_at - h_dispatch
                metrics.total_engine_time += loser_busy
                metrics.hedge_wasted += loser_busy
                if tr.enabled:
                    tr.batch(
                        h_dispatch,
                        loser_busy,
                        engine=target_idx,
                        kind="cancelled",
                        num_requests=len(selected),
                        hedge_primary=primary_idx,
                    )
                    tr.health(
                        primary_finish,
                        "hedge-lose",
                        engine=primary_idx,
                        target=target_idx,
                    )
                heapq.heappush(idle, (cancel_at, target_idx, target_idx))
                res = HedgeResolution(
                    kind="lose",
                    primary=primary_idx,
                    target=target_idx,
                    deadline=deadline,
                    hedge_start=hedge_start,
                    winner_engine=primary_idx,
                    winner_dispatch=primary_dispatch,
                    winner_latency=primary_finish - primary_dispatch,
                    winner_finish=primary_finish,
                    loser_engine=target_idx,
                    loser_busy=loser_busy,
                )
        if dur is not None:
            dur.hedge(
                selected,
                primary=primary_idx,
                target=target_idx,
                deadline=deadline,
                outcome=res.kind,
                winner_finish=res.winner_finish,
            )
        return res

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
        resume: Optional[RestoredState] = None,
    ) -> SimulationResult:
        requests, horizon = resolve_workload(workload, horizon)

        tr = self.trace if self.trace is not None else NO_TRACE
        ov = self.overload
        dur = self.durability
        hp = (
            self.health
            if self.health is not None and self.health.enabled
            else None
        )
        tn = self.tenancy
        if resume is not None:
            if dur is None:
                raise ValueError("resume= requires a durability plane")
            metrics = resume.metrics
            metrics.horizon = horizon
            queue = resume.queue
            now = resume.now
            next_arrival = resume.next_arrival
            rejected_before = resume.rejected_before
            idle = [tuple(e) for e in (resume.idle or [])]
            heapq.heapify(idle)
            resume.apply_shared(
                tracer=tr,
                overload=ov,
                admission=self.admission,
                engines=self.engines,
                health=hp,
                tenancy=tn,
            )
        else:
            metrics = ServingMetrics(horizon=horizon, arrived=len(requests))
            queue = RequestQueue()
            if ov is not None:
                ov.begin_run()
            if hp is not None:
                hp.begin_run()
            if tn is not None:
                tn.begin_run()
            rejected_before = (
                len(self.admission.rejected)
                if self.admission is not None
                else 0
            )
            # (idle_at, tiebreak, engine_index) priority queue.
            idle = [(0.0, i, i) for i in range(len(self.engines))]
            heapq.heapify(idle)
            now = 0.0
            next_arrival = 0
        result = SimulationResult(metrics=metrics)
        n = len(requests)
        # With a quota-free registry admit() can never refuse; skip
        # the per-arrival dispatch entirely.
        tn_admit = (
            tn.admit if tn is not None and not tn.passive_admission else None
        )

        if dur is not None:

            def _live() -> LiveState:
                return LiveState(
                    queue=queue,
                    metrics=metrics,
                    now=now,
                    next_arrival=next_arrival,
                    rejected_before=rejected_before,
                    tracer=tr if tr.enabled else None,
                    overload=ov,
                    admission=self.admission,
                    engines=self.engines,
                    idle=list(idle),
                    health=hp,
                    tenancy=tn,
                )

            dur.begin_run(_live, tr, resume=resume)

        while idle:
            # Step boundary before the pop: the snapshot's idle heap
            # still holds the engine this step is about to claim.
            if dur is not None:
                dur.tick()
            now, tiebreak, engine_idx = heapq.heappop(idle)
            if now >= horizon:
                break
            if hp is not None:
                # Health-scored placement: gather every engine idle at
                # this exact timestamp and let the plane pick the
                # healthiest (deterministic tie-break via its dedicated
                # RNG stream).  Losing candidates stay due at `now`;
                # drained or quarantined engines are re-armed at their
                # re-admission / probe time.
                group = [(now, tiebreak, engine_idx)]
                while idle and idle[0][0] == now:
                    group.append(heapq.heappop(idle))
                chosen, deferred = hp.place(group, now, tracer=tr)
                for entry in deferred:
                    heapq.heappush(idle, entry)
                if chosen is None:
                    continue
                now, tiebreak, engine_idx = chosen
            while next_arrival < n and requests[next_arrival].arrival <= now:
                r = requests[next_arrival]
                if tn is not None:
                    tn.arrive(r)
                if self.admission is None or self.admission.admit(r, r.arrival):
                    if ov is not None and not ov.admit(r, r.arrival):
                        self._release([r])
                        metrics.rejected.append(r)
                        if tn is not None:
                            tn.rejected([r])
                        if tr.enabled:
                            tr.arrive(r, r.arrival)
                            tr.rejected(r, r.arrival)
                        if dur is not None:
                            dur.terminal("rejected", [r], dequeue=False)
                        next_arrival += 1
                        continue
                    quota = (
                        tn_admit(r, r.arrival) if tn_admit is not None else None
                    )
                    if quota is not None:
                        self._release([r])
                        metrics.rejected.append(r)
                        tn.rejected(
                            [r],
                            quota=True,
                            now=r.arrival,
                            tracer=tr if tr.enabled else None,
                        )
                        if tr.enabled:
                            tr.arrive(r, r.arrival)
                            tr.rejected(r, r.arrival)
                        if dur is not None:
                            dur.terminal("rejected", [r], dequeue=False)
                        next_arrival += 1
                        continue
                    queue.add(r)
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.enqueue(r, r.arrival)
                    if dur is not None:
                        dur.enqueue(r)
                else:
                    if tn is not None:
                        tn.rejected([r])
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.rejected(r, r.arrival)
                next_arrival += 1
            dead = queue.expire(now)
            if tr.enabled:
                tr.expired(dead, now)
            self._release(dead)
            if tn is not None:
                tn.expired(dead)
            if dur is not None:
                dur.terminal("expired", dead)
            if ov is not None:
                ov.observe_outcomes(missed=len(dead))
                ov.update(now, queue, tr)
                shed = ov.maybe_shed(queue, metrics, now, tr)
                self._release(shed)
                if tn is not None:
                    tn.shed(shed)
                if dur is not None:
                    dur.shed(shed)
            waiting = queue.waiting(now)
            if not waiting:
                if next_arrival < n:
                    # Fast-forward this engine to the next arrival.
                    heapq.heappush(
                        idle,
                        (requests[next_arrival].arrival, engine_idx, engine_idx),
                    )
                    continue
                # No arrivals left, but other engines may still requeue
                # failed work (or free nothing): re-arm at the next
                # engine event instead of leaving the cluster for good.
                # The tiebreak puts re-armed engines after engines that
                # genuinely schedule at that time, so the re-poll sees
                # the updated queue.
                wake = self._next_event_after(idle, now)
                if wake is not None:
                    heapq.heappush(
                        idle, (wake, len(self.engines) + engine_idx, engine_idx)
                    )
                continue

            if ov is not None and not ov.breaker_allow(engine_idx, now, tr):
                # Breaker open: quarantine this engine until its
                # recovery interval elapses; the rest of the cluster
                # keeps draining the queue in the meantime.
                retry_at = ov.breaker_retry_at(engine_idx)
                if retry_at < horizon:
                    heapq.heappush(idle, (retry_at, engine_idx, engine_idx))
                continue

            if tn is not None:
                decision = tn.select(
                    self.scheduler,
                    waiting,
                    now,
                    tracer=tr if tr.enabled else None,
                )
            else:
                decision = self.scheduler.select(waiting, now)
            decision.validate(self.scheduler.batch)
            metrics.total_scheduler_time += decision.runtime
            engine = self.engines[engine_idx]
            apply_slot_size(engine, decision)
            if tr.enabled:
                tr.decision(
                    now,
                    decision.runtime,
                    {
                        "scheduler": self.scheduler.name,
                        "num_selected": decision.num_selected,
                        "queue_depth": len(waiting),
                        "engine": engine_idx,
                        **decision.info,
                    },
                )

            selected = decision.selected()
            if not selected:
                unservable = [
                    r
                    for r in waiting
                    if r.length > self.scheduler.batch.row_length
                ]
                if unservable:
                    drop_unservable(queue, unservable, now, tr)
                    self._release(unservable)
                    if tn is not None:
                        tn.expired(unservable)
                    if dur is not None:
                        dur.terminal("expired", unservable)
                    heapq.heappush(idle, (now, engine_idx, engine_idx))
                elif next_arrival < n:
                    heapq.heappush(
                        idle,
                        (requests[next_arrival].arrival, engine_idx, engine_idx),
                    )
                else:
                    # Servable requests are waiting but this engine has
                    # nothing to do *now*; another engine's finish can
                    # change the picture, so re-arm at that event rather
                    # than silently dropping the engine (and with it the
                    # waiting requests).
                    wake = self._next_event_after(idle, now)
                    if wake is not None:
                        heapq.heappush(
                            idle,
                            (wake, len(self.engines) + engine_idx, engine_idx),
                        )
                continue

            if ov is not None:
                selected = ov.cap_batch(selected)
            if tr.enabled:
                tr.scheduled(selected, now)
            if dur is not None:
                dur.dispatch(selected, engine=engine_idx)
            # The hedge deadline is priced *before* dispatch, from the
            # pre-dispatch scoreboard and latency window only — the
            # decision at `now + deadline` must be causal, never a
            # function of the batch's own (future) outcome.
            hedge_deadline = (
                hp.hedge_deadline(engine_idx) if hp is not None else None
            )
            outcome = serve_slot(engine, selected, now)
            metrics.failed_batches += outcome.failures
            metrics.retries += outcome.split_retries
            metrics.total_engine_time += outcome.wasted
            if ov is not None:
                ov.record_result(
                    engine_idx,
                    now + outcome.wasted,
                    ok=outcome.result is not None,
                    kind="crash" if outcome.down_until is not None else "failure",
                    tracer=tr,
                )
            if hp is not None:
                if outcome.result is not None:
                    hp.observe(
                        engine_idx,
                        now + outcome.wasted,
                        ok=True,
                        observed=max(outcome.result.latency, MIN_SLOT),
                        predicted=hp.predict(engine, outcome.result),
                        tracer=tr,
                    )
                else:
                    hp.observe(
                        engine_idx, now + outcome.wasted, ok=False, tracer=tr
                    )
            if tr.enabled and outcome.failures:
                tr.batch(
                    now,
                    outcome.wasted,
                    engine=engine_idx,
                    kind="failed",
                    failures=outcome.failures,
                    split_retries=outcome.split_retries,
                    num_requests=len(selected),
                )

            if outcome.down_until is not None:
                # Engine failover: the crashed engine leaves the heap for
                # its downtime and rejoins at recovery; its requests are
                # triaged at `now` because survivors can pick them up
                # immediately.
                metrics.downtime += outcome.downtime
                retained, lost = requeue_failed(
                    queue, self.retry, engine.cost_model, outcome.failed, now
                )
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.batch(
                        now + outcome.wasted,
                        outcome.downtime,
                        engine=engine_idx,
                        kind="crash",
                        downtime=outcome.downtime,
                    )
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                self._release(lost)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, outcome.failed, retained, lost)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                heapq.heappush(
                    idle, (outcome.down_until, engine_idx, engine_idx)
                )
                continue
            if outcome.result is None:
                retained, lost = requeue_failed(
                    queue, self.retry, engine.cost_model, outcome.failed, now
                )
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                self._release(lost)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, outcome.failed, retained, lost)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                heapq.heappush(
                    idle, (now + outcome.wasted, engine_idx, engine_idx)
                )
                continue

            batch_result = outcome.result
            latency = max(batch_result.latency, MIN_SLOT)
            dispatch = now + outcome.wasted
            finish = dispatch + latency
            serve_engine = engine_idx
            if (
                hedge_deadline is not None
                and outcome.wasted + latency > hedge_deadline
            ):
                res = self._hedge(
                    hp,
                    idle,
                    engine_idx,
                    selected,
                    now,
                    outcome,
                    hedge_deadline,
                    finish,
                    metrics,
                    ov,
                    tr,
                    dur,
                )
                if res is not None and res.kind == "win":
                    # First completion wins: the duplicate's result is
                    # the batch's one terminal outcome; the straggling
                    # primary was cancelled inside _hedge.
                    batch_result = res.result
                    latency = res.winner_latency
                    dispatch = res.winner_dispatch
                    finish = res.winner_finish
                    serve_engine = res.winner_engine
            if tr.enabled:
                tr.packed_layouts(batch_result.layouts, dispatch)
                tr.executed(
                    batch_result.served, dispatch, latency, engine=serve_engine
                )
                tr.batch(
                    dispatch,
                    latency,
                    engine=serve_engine,
                    kind="batch",
                    num_requests=batch_result.num_served,
                    useful_tokens=batch_result.stats.useful_tokens,
                    padded_tokens=batch_result.stats.padded_tokens,
                    padding_efficiency=batch_result.stats.utilisation,
                    rows=batch_result.stats.rows,
                    row_width=batch_result.stats.row_width,
                    slot_size=decision.slot_size,
                    failures=outcome.failures,
                    split_retries=outcome.split_retries,
                    wasted=outcome.wasted,
                    **self.engines[serve_engine].trace_annotations(
                        batch_result
                    ),
                )
                served_ids = {r.request_id for r in batch_result.served}
                tr.requeued(
                    [r for r in selected if r.request_id not in served_ids],
                    dispatch,
                )
                tr.served(batch_result.served, finish)
            queue.remove_served(batch_result.served)
            self._release(batch_result.served)
            if tn is not None:
                # Exactly-once by construction: a hedge resolves to one
                # winner whose result is this single serve path.
                tn.served(batch_result.served, finish)
            if dur is not None:
                dur.served(batch_result.served, finish)
            if ov is not None:
                on_time = sum(
                    1 for r in batch_result.served if finish <= r.deadline
                )
                ov.observe_outcomes(
                    served=on_time,
                    missed=len(batch_result.served) - on_time,
                )
            for r in batch_result.served:
                metrics.finish_times[r.request_id] = (r.arrival, finish)
            metrics.served.extend(batch_result.served)
            metrics.total_engine_time += latency
            metrics.num_batches += 1
            metrics.useful_tokens += batch_result.stats.useful_tokens
            metrics.padded_tokens += batch_result.stats.padded_tokens
            # The primary engine re-arms at `finish` (its own finish, or
            # — after a hedge win — the winner's finish, which is its
            # cancellation point).  The max() guards the corner where
            # the primary's failed-attempt waste outlasts the winner;
            # without a hedge it is exactly `finish`.
            heapq.heappush(
                idle, (max(finish, now + outcome.wasted), engine_idx, engine_idx)
            )

        dead = queue.expire(float("inf"))
        if tr.enabled:
            tr.expired(dead, horizon)
            for r in requests[next_arrival:]:
                tr.arrive(r, r.arrival)
            tr.expired(requests[next_arrival:], horizon)
        if tn is not None:
            tn.expired(dead)
            for r in requests[next_arrival:]:
                tn.arrive(r)
            tn.expired(requests[next_arrival:])
        if dur is not None:
            dur.terminal("expired", dead)
            dur.end_run(requests[next_arrival:])
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        metrics.abandoned.extend(queue.abandoned)
        if self.admission is not None:
            metrics.rejected.extend(self.admission.rejected[rejected_before:])
        metrics.assert_conservation()
        if tn is not None:
            tn.finalize(metrics)
        if tr.enabled:
            tr.reconcile(metrics)
        return result
