"""Multi-engine (multi-GPU) serving simulation.

A natural extension of the paper's single-GPU system: ``G`` inference
engines share one wait queue, and whenever *any* engine goes idle the
scheduler packs a batch for it.  Engines run concurrently, so the
simulation tracks a per-engine busy-until clock and always dispatches to
the earliest-idle engine.

Deadline semantics, queue expiry and metrics are identical to the
single-engine :class:`~repro.serving.simulator.ServingSimulator`, and a
cluster of size 1 must reproduce it exactly (tested).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.engine.base import InferenceEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.scheduling.base import Scheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import SimulationResult
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["ClusterSimulator"]

_MIN_SLOT = 1e-6


class ClusterSimulator:
    """Serve one workload with ``G`` engines sharing a queue."""

    def __init__(
        self,
        scheduler: Scheduler,
        engines: Sequence[InferenceEngine],
    ):
        if not engines:
            raise ValueError("need at least one engine")
        self.scheduler = scheduler
        self.engines = list(engines)

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
    ) -> SimulationResult:
        if hasattr(workload, "generate"):  # any workload generator (duck-typed)
            requests = workload.generate()
            horizon = workload.horizon if horizon is None else horizon
        else:
            requests = sorted(workload, key=lambda r: (r.arrival, r.request_id))
            if horizon is None:
                horizon = max((r.arrival for r in requests), default=0.0) + 1.0

        metrics = ServingMetrics(horizon=horizon)
        result = SimulationResult(metrics=metrics)
        queue = RequestQueue()

        # (idle_at, tiebreak, engine_index) priority queue.
        idle: list[tuple[float, int, int]] = [
            (0.0, i, i) for i in range(len(self.engines))
        ]
        heapq.heapify(idle)
        next_arrival = 0
        n = len(requests)

        while idle:
            now, _, engine_idx = heapq.heappop(idle)
            if now >= horizon:
                break
            while next_arrival < n and requests[next_arrival].arrival <= now:
                queue.add(requests[next_arrival])
                next_arrival += 1
            queue.expire(now)
            waiting = queue.waiting(now)
            if not waiting:
                if next_arrival >= n:
                    continue  # this engine is done; let others drain
                # Fast-forward this engine to the next arrival.
                heapq.heappush(
                    idle,
                    (requests[next_arrival].arrival, engine_idx, engine_idx),
                )
                continue

            decision = self.scheduler.select(waiting, now)
            decision.validate(self.scheduler.batch)
            metrics.total_scheduler_time += decision.runtime
            engine = self.engines[engine_idx]
            if decision.slot_size is not None and isinstance(
                engine, SlottedConcatEngine
            ):
                engine.set_slot_size(decision.slot_size)

            selected = decision.selected()
            if not selected:
                unservable = [
                    r
                    for r in waiting
                    if r.length > self.scheduler.batch.row_length
                ]
                if unservable:
                    queue.drop(unservable)
                    heapq.heappush(idle, (now, engine_idx, engine_idx))
                elif next_arrival < n:
                    heapq.heappush(
                        idle,
                        (requests[next_arrival].arrival, engine_idx, engine_idx),
                    )
                continue

            batch_result = engine.serve(selected)
            latency = max(batch_result.latency, _MIN_SLOT)
            finish = now + latency
            queue.remove_served(batch_result.served)
            for r in batch_result.served:
                metrics.finish_times[r.request_id] = (r.arrival, finish)
            metrics.served.extend(batch_result.served)
            metrics.total_engine_time += latency
            metrics.num_batches += 1
            metrics.useful_tokens += batch_result.stats.useful_tokens
            metrics.padded_tokens += batch_result.stats.padded_tokens
            heapq.heappush(idle, (finish, engine_idx, engine_idx))

        queue.expire(float("inf"))
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        return result
