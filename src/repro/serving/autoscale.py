"""Reactive autoscaling for TCB engine clusters.

Cloud deployments do not run a fixed number of engines; they scale on
queue pressure.  :class:`AutoscalingSimulator` extends the shared-queue
cluster loop with a watermark policy evaluated whenever an engine goes
idle:

- **scale up** — if waiting tokens per active engine exceed
  ``high_watermark`` and the fleet is below ``max_engines``, provision a
  new engine; it becomes usable after ``startup_delay`` seconds (cold
  start),
- **scale down** — if waiting tokens per active engine fall below
  ``low_watermark`` and the fleet is above ``min_engines``, retire one
  idle engine.

The policy is deliberately simple (reactive, hysteresis via the two
watermarks); the point is the *mechanism* and its interaction with
deadline-aware scheduling, which the bench quantifies under bursty
arrivals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.engine.base import InferenceEngine
from repro.overload.ledger import drop_unservable
from repro.scheduling.base import Scheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.common import MIN_SLOT, apply_slot_size, resolve_workload
from repro.serving.metrics import ServingMetrics
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["AutoscalingSimulator", "ScalingEvent"]


@dataclass
class ScalingEvent:
    time: float
    action: str  # "up" | "down"
    engines: int  # fleet size after the action


class AutoscalingSimulator:
    """Shared-queue serving with watermark-based engine autoscaling."""

    def __init__(
        self,
        scheduler: Scheduler,
        engine_factory: Callable[[], InferenceEngine],
        *,
        min_engines: int = 1,
        max_engines: int = 8,
        high_watermark: float = 2000.0,
        low_watermark: float = 200.0,
        startup_delay: float = 0.5,
    ):
        if not (1 <= min_engines <= max_engines):
            raise ValueError("need 1 <= min_engines <= max_engines")
        if low_watermark >= high_watermark:
            raise ValueError("low_watermark must be < high_watermark")
        if startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")
        self.scheduler = scheduler
        self.engine_factory = engine_factory
        self.min_engines = min_engines
        self.max_engines = max_engines
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.startup_delay = startup_delay
        self.events: list[ScalingEvent] = []

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
    ) -> ServingMetrics:
        requests, horizon = resolve_workload(workload, horizon)

        metrics = ServingMetrics(horizon=horizon, arrived=len(requests))
        queue = RequestQueue()
        self.events = []

        engines: dict[int, InferenceEngine] = {
            i: self.engine_factory() for i in range(self.min_engines)
        }
        retired: set[int] = set()
        next_engine_id = self.min_engines
        # (idle_at, tiebreak, engine_id)
        idle: list[tuple[float, int, int]] = [
            (0.0, i, i) for i in engines
        ]
        heapq.heapify(idle)
        next_arrival = 0
        n = len(requests)

        def waiting_tokens(now: float) -> int:
            return sum(r.length for r in queue.waiting(now))

        while idle:
            now, _, engine_id = heapq.heappop(idle)
            if engine_id in retired:
                continue
            if now >= horizon:
                break
            while next_arrival < n and requests[next_arrival].arrival <= now:
                queue.add(requests[next_arrival])
                next_arrival += 1
            queue.expire(now)

            # --- scaling decision ------------------------------------- #
            active = len(engines) - len(retired)
            pressure = waiting_tokens(now) / max(active, 1)
            if pressure > self.high_watermark and active < self.max_engines:
                eid = next_engine_id
                next_engine_id += 1
                engines[eid] = self.engine_factory()
                heapq.heappush(idle, (now + self.startup_delay, eid, eid))
                self.events.append(ScalingEvent(now, "up", active + 1))
            elif (
                pressure < self.low_watermark
                and active > self.min_engines
                and engine_id in engines
            ):
                retired.add(engine_id)
                self.events.append(ScalingEvent(now, "down", active - 1))
                continue  # this engine retires instead of serving

            waiting = queue.waiting(now)
            if not waiting:
                if next_arrival >= n:
                    continue
                heapq.heappush(
                    idle, (requests[next_arrival].arrival, engine_id, engine_id)
                )
                continue

            decision = self.scheduler.select(waiting, now)
            decision.validate(self.scheduler.batch)
            metrics.total_scheduler_time += decision.runtime
            engine = engines[engine_id]
            apply_slot_size(engine, decision)
            selected = decision.selected()
            if not selected:
                unservable = [
                    r for r in waiting if r.length > self.scheduler.batch.row_length
                ]
                if unservable:
                    drop_unservable(queue, unservable, now)
                    heapq.heappush(idle, (now, engine_id, engine_id))
                elif next_arrival < n:
                    heapq.heappush(
                        idle,
                        (requests[next_arrival].arrival, engine_id, engine_id),
                    )
                continue

            result = engine.serve(selected)
            latency = max(result.latency, MIN_SLOT)
            finish = now + latency
            queue.remove_served(result.served)
            for r in result.served:
                metrics.finish_times[r.request_id] = (r.arrival, finish)
            metrics.served.extend(result.served)
            metrics.total_engine_time += latency
            metrics.num_batches += 1
            metrics.useful_tokens += result.stats.useful_tokens
            metrics.padded_tokens += result.stats.padded_tokens
            heapq.heappush(idle, (finish, engine_id, engine_id))

        queue.expire(float("inf"))
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        metrics.assert_conservation()
        return metrics

    @property
    def peak_engines(self) -> int:
        peak = self.min_engines
        for ev in self.events:
            peak = max(peak, ev.engines)
        return peak
