"""Continuous (iteration-level) batching — an ORCA-style comparison system.

TCB schedules at *batch* granularity: a batch is packed, runs to
completion, then the next is packed.  Iteration-level scheduling (Yu et
al., OSDI'22 "Orca") instead re-examines the running batch at every
decode step: finished requests leave immediately and waiting requests
join as soon as there is room.  This module implements that discipline
on the same substrates (cost model, queue, metrics) so the two
philosophies can be compared under identical workloads — an extension
the paper's related-work section gestures at but does not evaluate.

Simplifications (documented, deliberate):

- capacity is a token budget (``B × L``) over resident requests — the
  analogue of KV-cache capacity,
- admission runs a *prefill* pass for the new requests' prompts (priced
  by the cost model), then they join the per-step decode loop,
- output lengths are sampled per request (decode-until-EOS stand-in)
  from a geometric-like distribution with a configurable mean, seeded —
  the cost model has no content to condition on,
- admission order is a pluggable key (FCFS or utility), mirroring the
  slot-level schedulers.

Fault tolerance (``docs/faults.md``): an optional
:class:`~repro.faults.plan.FaultPlan` injects per-iteration faults — a
failed iteration consumes its step time without decode progress, a
straggler multiplies the step, a transient OOM evicts the newest half
of the resident batch back to the wait queue, and a crash takes the
engine down for its downtime and evicts everything resident.  Evicted
requests go through the same bounded deadline-aware requeue policy as
the batch-level loops.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.config import BatchConfig
from repro.durability.plane import DurabilityPlane
from repro.durability.restore import RestoredState
from repro.durability.snapshot import LiveState
from repro.engine.cost_model import GPUCostModel
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.recovery import RetryPolicy, requeue_failed
from repro.obs.recorder import NO_TRACE, Tracer
from repro.overload.controller import OverloadController
from repro.rng import ensure_rng
from repro.scheduling.queue import RequestQueue
from repro.serving.common import resolve_workload
from repro.serving.metrics import ServingMetrics
from repro.tenancy.plane import TenancyPlane
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["ContinuousBatchingSimulator"]

_HEALTHY = FaultEvent()


@dataclass
class _Running:
    request: Request
    remaining_steps: int


class ContinuousBatchingSimulator:
    """Iteration-level serving over the analytic cost model."""

    def __init__(
        self,
        batch: BatchConfig,
        *,
        cost_model: Optional[GPUCostModel] = None,
        mean_output_tokens: float = 8.0,
        admission: str = "fcfs",
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        trace: Optional[Tracer] = None,
        overload: Optional[OverloadController] = None,
        durability: Optional[DurabilityPlane] = None,
        tenancy: Optional[TenancyPlane] = None,
    ):
        if mean_output_tokens < 1:
            raise ValueError("mean_output_tokens must be >= 1")
        if admission not in ("fcfs", "utility"):
            raise ValueError(f"unknown admission policy {admission!r}")
        self.batch = batch
        self.cost_model = cost_model or GPUCostModel.calibrated()
        self.mean_output_tokens = mean_output_tokens
        self.admission = admission
        self.seed = seed
        # Injected generator (replayable end-to-end by the caller); when
        # None, each run() derives a fresh stream from the seed so
        # repeated runs stay deterministic and bit-identical.
        self.rng = rng
        self.fault_plan = fault_plan
        self.retry = retry or RetryPolicy()
        self.trace = trace
        # Overload plane (off by default): bounded wait queue + shedding,
        # brownout token-budget shrink, breaker over iteration faults.
        self.overload = overload
        # Durability plane (off by default; see docs/recovery.md).  The
        # resident set and the output-length RNG cursor are part of the
        # snapshot, so a restore re-draws the same decode lengths.
        self.durability = durability
        # Tenancy plane (off by default; docs/tenancy.md): here the
        # fair share partitions the per-iteration token budget rather
        # than batch rows.
        self.tenancy = tenancy

    def _event(self, iteration: int) -> FaultEvent:
        if self.fault_plan is None or self.fault_plan.config.is_zero:
            return _HEALTHY
        return self.fault_plan.event(iteration)

    # ------------------------------------------------------------------ #

    def _admission_key(self) -> Callable[[Request], tuple]:
        if self.admission == "fcfs":
            return lambda r: (r.arrival, r.request_id)
        return lambda r: (-r.utility, r.request_id)

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
        resume: Optional[RestoredState] = None,
    ) -> ServingMetrics:
        requests, horizon = resolve_workload(workload, horizon)

        rng = ensure_rng(self.rng, default_seed=self.seed)
        tr = self.trace if self.trace is not None else NO_TRACE
        ov = self.overload
        dur = self.durability
        if resume is not None:
            if dur is None:
                raise ValueError("resume= requires a durability plane")
            metrics = resume.metrics
            metrics.horizon = horizon
            queue = resume.queue
            now = resume.now
            next_arrival = resume.next_arrival
            iteration = resume.iteration or 0
            running = [
                _Running(req, steps) for req, steps in (resume.running or ())
            ]
            if resume.rng_state is not None:
                rng.bit_generator.state = copy.deepcopy(resume.rng_state)
            resume.apply_shared(tracer=tr, overload=ov, tenancy=self.tenancy)
        else:
            metrics = ServingMetrics(horizon=horizon, arrived=len(requests))
            queue = RequestQueue()
            if ov is not None:
                ov.begin_run()
            if self.tenancy is not None:
                self.tenancy.begin_run()
            running = []
            now = 0.0
            next_arrival = 0
            iteration = 0
        budget = self.batch.capacity_tokens
        key = self._admission_key()
        tn = self.tenancy
        n = len(requests)
        # With a quota-free registry admit() can never refuse; skip
        # the per-arrival dispatch entirely.
        tn_admit = (
            tn.admit if tn is not None and not tn.passive_admission else None
        )

        if dur is not None:

            def _live() -> LiveState:
                return LiveState(
                    queue=queue,
                    metrics=metrics,
                    now=now,
                    next_arrival=next_arrival,
                    tracer=tr if tr.enabled else None,
                    overload=ov,
                    running=[
                        (r.request, r.remaining_steps) for r in running
                    ],
                    iteration=iteration,
                    rng=rng,
                    tenancy=tn,
                )

            dur.begin_run(_live, tr, resume=resume)

        while now < horizon:
            if dur is not None:
                dur.tick()
            if ov is not None and not ov.breaker_allow(0, now, tr):
                # Breaker open: no iterations (decode or prefill) until
                # the recovery interval elapses; jump the clock there.
                now = min(ov.breaker_retry_at(0), horizon)
                continue
            while next_arrival < n and requests[next_arrival].arrival <= now:
                r = requests[next_arrival]
                if tn is not None:
                    tn.arrive(r)
                if ov is not None and not ov.admit(r, r.arrival):
                    metrics.rejected.append(r)
                    if tn is not None:
                        tn.rejected([r])
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.rejected(r, r.arrival)
                    if dur is not None:
                        dur.terminal("rejected", [r], dequeue=False)
                    next_arrival += 1
                    continue
                quota = (
                    tn_admit(r, r.arrival) if tn_admit is not None else None
                )
                if quota is not None:
                    metrics.rejected.append(r)
                    tn.rejected(
                        [r],
                        quota=True,
                        now=r.arrival,
                        tracer=tr if tr.enabled else None,
                    )
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.rejected(r, r.arrival)
                    if dur is not None:
                        dur.terminal("rejected", [r], dequeue=False)
                    next_arrival += 1
                    continue
                queue.add(r)
                if tr.enabled:
                    tr.arrive(r, r.arrival)
                    tr.enqueue(r, r.arrival)
                if dur is not None:
                    dur.enqueue(r)
                next_arrival += 1
            dead = queue.expire(now)
            if tr.enabled:
                tr.expired(dead, now)
            if tn is not None:
                tn.expired(dead)
            if dur is not None:
                dur.terminal("expired", dead)
            if ov is not None:
                ov.observe_outcomes(missed=len(dead))
                ov.update(now, queue, tr)
                shed = ov.maybe_shed(queue, metrics, now, tr)
                if tn is not None:
                    tn.shed(shed)
                if dur is not None:
                    dur.shed(shed)

            # Admit while there is token budget (shrunk under brownout).
            iter_budget = budget if ov is None else ov.scale_budget(budget)
            used = sum(r.request.length for r in running)
            # The admission orders are total (request-id tie-break), so
            # the queue's maintained sorted views are bit-identical to
            # an explicit sort — and skip the per-iteration O(n log n).
            view = queue.waiting(now)
            attr = "by_arrival" if self.admission == "fcfs" else "by_utility"
            waiting = getattr(view, attr, None)
            if waiting is None:
                waiting = sorted(view, key=key)
            # Fair share (tenancy): partition the *free* budget across
            # active tenants by weight×deficit; a tenant that spends its
            # allowance blocks (FCFS) or skips (utility) only itself.
            share = (
                tn.iteration_share(view, max(0, iter_budget - used))
                if tn is not None
                else None
            )
            blocked: set[str] = set()
            admitted: list[Request] = []
            for req in waiting:
                if req.length > self.batch.row_length:
                    continue
                if share is not None:
                    tenant = tn.key(req)
                    if tenant in blocked:
                        continue
                    if not share.fits(req):
                        if self.admission == "fcfs":
                            blocked.add(tenant)  # per-tenant head-of-line
                        continue
                if used + req.length > iter_budget:
                    if self.admission == "fcfs":
                        break  # head-of-line blocking, true to FCFS
                    continue
                used += req.length
                if share is not None:
                    share.charge(req)
                admitted.append(req)
            if share is not None:
                share.settle()
            prefill_tokens = 0
            prefill_entries = 0
            if admitted:
                if dur is not None:
                    dur.dispatch(admitted, resident=True)
                queue.remove_served(admitted)  # leaves the wait queue
                if tr.enabled:
                    tr.scheduled(admitted, now)
                prefill_tokens = sum(r.length for r in admitted)
                prefill_entries = sum(r.length**2 for r in admitted)
                for req in admitted:
                    steps = 1 + int(rng.geometric(1.0 / self.mean_output_tokens))
                    running.append(_Running(req, steps))

            if not running:
                if next_arrival >= n:
                    break
                now = max(now, requests[next_arrival].arrival)
                continue

            event = self._event(iteration)
            iteration += 1
            if event.kind is FaultKind.CRASH:
                # The engine loses its resident batch and sits out the
                # downtime; evicted requests re-enter through the
                # bounded deadline-aware requeue (they must re-prefill).
                metrics.failed_batches += 1
                metrics.downtime += event.downtime
                if tr.enabled:
                    tr.batch(
                        now, event.downtime, kind="crash",
                        downtime=event.downtime, num_requests=len(running),
                    )
                now += event.downtime
                residents = [r.request for r in running]
                running = []
                retained, lost = requeue_failed(
                    queue, self.retry, self.cost_model, residents, now
                )
                queue.requeue(retained)
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, residents, retained, lost, readd=True)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                    ov.record_result(0, now, ok=False, kind="crash", tracer=tr)
                continue
            if event.kind is FaultKind.OOM:
                # Transient alloc failure: evict the newest half of the
                # resident batch (split-batch retry, iteration flavour);
                # only the launch overhead is wasted.
                metrics.failed_batches += 1
                wasted = self.cost_model.fixed_per_batch
                if tr.enabled:
                    tr.batch(
                        now, wasted, kind="failed", fault="oom",
                        num_requests=len(running),
                    )
                now += wasted
                metrics.total_engine_time += wasted
                keep = len(running) // 2
                victims = [r.request for r in running[keep:]]
                running = running[:keep]
                retained, lost = requeue_failed(
                    queue, self.retry, self.cost_model, victims, now
                )
                queue.requeue(retained)
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, victims, retained, lost, readd=True)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                    ov.record_result(0, now, ok=False, kind="oom", tracer=tr)
                continue

            # One fused iteration (Orca's selective batching): a decode
            # step for every running request, with newly admitted prompts
            # prefilled *inside* the same iteration at marginal cost —
            # no extra per-batch launch/floor.
            context = sum(r.request.length for r in running) + len(running)
            step = (
                self.cost_model.decode_step_time(len(running), context)
                + self.cost_model.per_token * prefill_tokens
                + prefill_entries / self.cost_model.attn_rate
            )
            if event.kind is FaultKind.STRAGGLER:
                step *= event.multiplier
            if tr.enabled:
                tr.batch(
                    now,
                    step,
                    kind=(
                        "failed"
                        if event.kind is FaultKind.FAILURE
                        else "iteration"
                    ),
                    num_requests=len(running),
                    context_tokens=context,
                    prefill_tokens=prefill_tokens,
                    straggler=event.kind is FaultKind.STRAGGLER,
                )
            now += step
            metrics.total_engine_time += step
            if event.kind is FaultKind.FAILURE:
                # The iteration ran but its outputs were lost: no decode
                # progress, the step time is wasted, residents stay put.
                metrics.failed_batches += 1
                if ov is not None:
                    ov.record_result(
                        0, now, ok=False, kind="failure", tracer=tr
                    )
                continue
            metrics.num_batches += 1  # one iteration
            if ov is not None:
                ov.record_result(0, now, ok=True, tracer=tr)

            still: list[_Running] = []
            finished: list[Request] = []
            for r in running:
                r.remaining_steps -= 1
                if r.remaining_steps <= 0:
                    finished.append(r.request)
                    metrics.served.append(r.request)
                    metrics.finish_times[r.request.request_id] = (
                        r.request.arrival,
                        now,
                    )
                else:
                    still.append(r)
            running = still
            if tr.enabled and finished:
                tr.served(finished, now)
            if tn is not None and finished:
                tn.served(finished, now)
            if dur is not None:
                dur.served(finished, now, dequeue=False)
            if ov is not None and finished:
                on_time = sum(1 for r in finished if now <= r.deadline)
                ov.observe_outcomes(
                    served=on_time, missed=len(finished) - on_time
                )

        # Unfinished residents at the horizon still produced no response.
        for r in running:
            metrics.expired.append(r.request)
        dead = queue.expire(float("inf"))
        if tr.enabled:
            tr.expired([r.request for r in running], horizon)
            tr.expired(dead, horizon)
            for r in requests[next_arrival:]:
                tr.arrive(r, r.arrival)
            tr.expired(requests[next_arrival:], horizon)
        if tn is not None:
            tn.expired([r.request for r in running])
            tn.expired(dead)
            for r in requests[next_arrival:]:
                tn.arrive(r)
            tn.expired(requests[next_arrival:])
        if dur is not None:
            dur.terminal(
                "expired", [r.request for r in running], dequeue=False
            )
            dur.terminal("expired", dead)
            dur.end_run(requests[next_arrival:])
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        metrics.abandoned.extend(queue.abandoned)
        metrics.assert_conservation()
        if tn is not None:
            tn.finalize(metrics)
        if tr.enabled:
            tr.reconcile(metrics)
        return metrics
