"""TCBServer — the online serving facade (paper Fig. 3, top box).

A synchronous in-process server exercising the *real* NumPy model:
applications ``submit()`` sentences (token-id lists), the server queues
them, and each ``step()`` runs one scheduler+engine slot, returning
finished responses.  This is the component a deployment would put behind
an RPC layer; the discrete-event :class:`ServingSimulator` exists for
paper-scale sweeps where real execution is too slow.

Overload management (``docs/overload.md``): with an
:class:`~repro.serving.admission.AdmissionController` and/or an
:class:`~repro.overload.controller.OverloadController`, ``submit``
raises :class:`~repro.overload.backpressure.BackpressureError` instead
of queueing doomed work — an explicit retry-later signal — and each
``step`` runs the degradation controller and load shedder before
scheduling.  Every outcome lands in the server's
:class:`~repro.serving.metrics.ServingMetrics` ledger, whose
conservation invariant holds once the queue is drained.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.core.layout import BatchLayout
from repro.core.packing import pack_in_order
from repro.durability.plane import DurabilityConfig, DurabilityPlane
from repro.durability.restore import RestoredState
from repro.durability.snapshot import LiveState
from repro.model.seq2seq import Seq2SeqModel
from repro.overload.backpressure import BackpressureError
from repro.overload.controller import OverloadController
from repro.scheduling.base import Scheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import RequestQueue
from repro.serving.admission import AdmissionController
from repro.serving.metrics import ServingMetrics
from repro.tenancy.admission import QuotaExceeded
from repro.tenancy.plane import TenancyPlane
from repro.types import Request

__all__ = ["TCBServer", "Response", "DrainExhausted"]


class DrainExhausted(RuntimeError):
    """``run_until_drained`` hit its step budget with work still queued."""

    def __init__(self, pending: int, max_steps: int):
        super().__init__(
            f"queue not drained after {max_steps} steps "
            f"({pending} requests still pending)"
        )
        self.pending = pending
        self.max_steps = max_steps


@dataclass
class Response:
    request_id: int
    output_tokens: list[int]
    submitted_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class TCBServer:
    """Online ConcatBatching inference server over the NumPy model."""

    def __init__(
        self,
        model_config: Optional[ModelConfig] = None,
        batch: Optional[BatchConfig] = None,
        scheduler: Optional[Scheduler] = None,
        *,
        seed: int = 0,
        max_new_tokens: int = 8,
        default_slack: float = 60.0,
        admission: Optional[AdmissionController] = None,
        overload: Optional[OverloadController] = None,
        durability: Optional[DurabilityPlane] = None,
        checkpoint_every: int = 0,
        tenancy: Optional[TenancyPlane] = None,
    ):
        self.model_config = model_config or ModelConfig.tiny()
        self.batch = batch or BatchConfig(num_rows=4, row_length=32)
        if self.batch.row_length > self.model_config.max_len:
            raise ValueError(
                "batch row length exceeds the model's maximum input length"
            )
        self.scheduler = scheduler or DASScheduler(self.batch, SchedulerConfig())
        self.model = Seq2SeqModel(self.model_config, seed=seed)
        self.max_new_tokens = max_new_tokens
        self.default_slack = default_slack
        self.admission = admission
        self.overload = overload
        # Online ledger: arrived counts every submit() (including
        # refused ones); conservation holds once the queue drains.
        self.metrics = ServingMetrics()
        self._queue = RequestQueue()
        self._next_id = 0
        self._submit_times: dict[int, float] = {}
        self._responses: dict[int, Response] = {}
        # True when the last run_until_drained() hit its step budget.
        self.drain_exhausted = False
        # Durability plane (docs/recovery.md): submits are write-ahead
        # journaled before being acknowledged, so a warm restart can
        # recover every acknowledged-but-unserved request exactly once.
        # Armed lazily on the first submit/step so a server built over
        # an existing journal can warm_restart() from it instead.
        if durability is None and checkpoint_every > 0:
            durability = DurabilityPlane(
                DurabilityConfig(checkpoint_every=checkpoint_every)
            )
        self.durability = durability
        self._dur_armed = False
        # Tenancy plane (docs/tenancy.md): quota rejections surface as
        # typed QuotaExceeded (a BackpressureError subclass) from
        # submit(); per-tenant ledgers mirror the online ledger.
        self.tenancy = tenancy
        if tenancy is not None:
            tenancy.begin_run()
        # TCBServer is the *online* facade: unlike the discrete-event
        # simulators, its clock really is wall-clock.
        self._t0 = time.perf_counter()  # tcblint: disable=TCB003

    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return time.perf_counter() - self._t0  # tcblint: disable=TCB003

    def _live(self) -> LiveState:
        return LiveState(
            queue=self._queue,
            metrics=self.metrics,
            now=self._now(),
            overload=self.overload,
            admission=self.admission,
            tenancy=self.tenancy,
            extra={
                "next_id": self._next_id,
                "submit_times": dict(self._submit_times),
            },
        )

    def _arm_durability(self) -> None:
        if self.durability is not None and not self._dur_armed:
            self._dur_armed = True
            self.durability.begin_run(self._live)

    def warm_restart(self) -> RestoredState:
        """Rebuild this server's state from its durability journal.

        Restores the latest snapshot plus committed journal replay, then
        recovers write-ahead (acknowledged but uncommitted) submits with
        duplicate suppression — exactly-once: never served twice, never
        lost.  Responses already delivered before the crash are not
        reconstructed (their output tokens are not journaled); recovered
        requests are re-served by the next steps and the deterministic
        model regenerates identical outputs.
        """
        dur = self.durability
        if dur is None:
            raise ValueError("warm restart requires a durability plane")
        state = dur.restore(recover_enqueues=True)
        self._queue = state.queue
        self.metrics = state.metrics
        # The online ledger folds expiry immediately (no end-of-run
        # sweep), so the metrics bucket mirrors the queue's ledger.
        self.metrics.expired[:] = list(state.queue.expired)
        state.apply_shared(
            overload=self.overload,
            admission=self.admission,
            tenancy=self.tenancy,
        )
        extra = state.extra
        self._submit_times = dict(extra.get("submit_times", {}))
        self._next_id = extra.get("next_id", 0)
        for req, submit_time in state.recovered:
            if submit_time is not None:
                self._submit_times[req.request_id] = submit_time
            self._next_id = max(self._next_id, req.request_id + 1)
        self._responses = {}
        self._dur_armed = True
        dur.begin_run(self._live, resume=state)
        return state

    def submit(
        self,
        tokens: Sequence[int],
        *,
        deadline_slack: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> int:
        """Enqueue one request; returns its id for :meth:`poll`.

        With a tenancy plane, ``tenant=`` stamps the request's identity:
        its SLO class supplies the utility weight (and, when no explicit
        ``deadline_slack`` is given, scales the default slack), and the
        tenant's token bucket / in-flight cap may refuse the submit with
        a typed :class:`~repro.tenancy.admission.QuotaExceeded`.
        """
        if not tokens:
            raise ValueError("cannot submit an empty request")
        if len(tokens) > self.batch.row_length:
            raise ValueError(
                f"request of {len(tokens)} tokens exceeds row length "
                f"{self.batch.row_length}"
            )
        self._arm_durability()
        tn = self.tenancy
        rid = self._next_id
        self._next_id += 1
        now = self._now()
        slack = self.default_slack if deadline_slack is None else deadline_slack
        weight = 1.0
        if tn is not None:
            cls = tn.registry.tenant_class(tenant)
            weight = cls.weight
            if deadline_slack is None:
                slack = self.default_slack * cls.deadline_slack
        req = Request(
            request_id=rid,
            length=len(tokens),
            arrival=now,
            deadline=now + slack,
            tokens=tuple(int(t) for t in tokens),
            weight=weight,
            tenant=tenant,
        )
        self.metrics.arrived += 1
        if tn is not None:
            tn.arrive(req)
        ov = self.overload
        if ov is not None and not ov.config.limits.unbounded:
            pressure = self._queue.pressure(ov.config.limits)
            limits = ov.config.limits
            if (
                limits.max_requests is not None
                and pressure.queued_requests + 1 > limits.max_requests
            ) or (
                limits.max_tokens is not None
                and pressure.queued_tokens + req.length > limits.max_tokens
            ):
                self.metrics.rejected.append(req)
                if tn is not None:
                    tn.rejected([req])
                self._journal_rejected(req)
                raise BackpressureError("queue-full", pressure)
        if self.admission is not None and not self.admission.admit(req, now):
            reason = self.admission.check(req, now).reason
            self.metrics.rejected.append(req)
            if tn is not None:
                tn.rejected([req])
            self._journal_rejected(req)
            raise BackpressureError(f"admission: {reason}")
        if ov is not None and not ov.admit(req, now):
            if self.admission is not None:
                self.admission.release([req])
            self.metrics.rejected.append(req)
            if tn is not None:
                tn.rejected([req])
            self._journal_rejected(req)
            raise BackpressureError(f"degraded ({ov.level.label})")
        if tn is not None:
            quota = tn.admit(req, now)
            if quota is not None:
                if self.admission is not None:
                    self.admission.release([req])
                self.metrics.rejected.append(req)
                tn.rejected([req], quota=True, now=now)
                self._journal_rejected(req)
                raise QuotaExceeded(tn.key(req), quota)
        self._queue.add(req)
        self._submit_times[rid] = now
        if self.durability is not None:
            # Write-ahead: the submit is durable before it is
            # acknowledged to the caller by returning the id.
            self.durability.enqueue(req, submit_time=now)
        return rid

    def _journal_rejected(self, req: Request) -> None:
        if self.durability is not None:
            self.durability.terminal("rejected", [req], dequeue=False)

    def _release(self, requests: Sequence[Request]) -> None:
        if self.admission is not None:
            self.admission.release(list(requests))

    def step(self) -> list[Response]:
        """Run one engine slot; returns responses finished this step."""
        self._arm_durability()
        dur = self.durability
        if dur is not None:
            dur.tick()
        now = self._now()
        ov = self.overload
        tn = self.tenancy
        dead = self._queue.expire(now)
        self.metrics.expired.extend(dead)
        self._release(dead)
        if tn is not None:
            tn.expired(dead)
        if dur is not None:
            dur.terminal("expired", dead)
        if ov is not None:
            ov.observe_outcomes(missed=len(dead))
            ov.update(now, self._queue)
            shed = ov.maybe_shed(self._queue, self.metrics, now)
            self._release(shed)
            if tn is not None:
                tn.shed(shed)
            if dur is not None:
                dur.shed(shed)
            if not ov.breaker_allow(0, now):
                return []
        waiting = self._queue.waiting(now)
        if not waiting:
            return []
        if tn is not None:
            decision = tn.select(self.scheduler, waiting, now)
        else:
            decision = self.scheduler.select(waiting, now)
        selected = decision.selected()
        if not selected:
            return []
        if ov is not None:
            selected = ov.cap_batch(selected)
        if dur is not None:
            dur.dispatch(selected)
        packing = pack_in_order(
            selected, self.batch.num_rows, self.batch.row_length
        )
        layout = packing.layout
        gen = self.model.greedy_decode(layout, max_new_tokens=self.max_new_tokens)
        self._queue.remove_served(packing.packed)
        self._release(packing.packed)
        finished_at = self._now()
        if ov is not None:
            ov.record_result(0, finished_at, ok=True)
            on_time = sum(
                1 for r in packing.packed if finished_at <= r.deadline
            )
            ov.observe_outcomes(
                served=on_time, missed=len(packing.packed) - on_time
            )
        self.metrics.served.extend(packing.packed)
        for req in packing.packed:
            self.metrics.finish_times[req.request_id] = (
                req.arrival, finished_at,
            )
        self.metrics.num_batches += 1
        if tn is not None:
            tn.served(packing.packed, finished_at)
        if dur is not None:
            dur.served(packing.packed, finished_at)
        out: list[Response] = []
        for req in packing.packed:
            resp = Response(
                request_id=req.request_id,
                output_tokens=gen.outputs[req.request_id],
                submitted_at=self._submit_times[req.request_id],
                finished_at=finished_at,
            )
            self._responses[req.request_id] = resp
            out.append(resp)
        return out

    def poll(self, request_id: int) -> Optional[Response]:
        """Fetch a finished response (None while pending)."""
        return self._responses.get(request_id)

    def run_until_drained(
        self, max_steps: int = 1000, *, on_exhausted: str = "raise"
    ) -> list[Response]:
        """Keep stepping until the queue is empty; returns all responses.

        If the queue is still non-empty after ``max_steps`` the drain is
        *exhausted* — previously that returned a silently-partial result.
        Now it raises :class:`DrainExhausted` (default) or, with
        ``on_exhausted="return"``, returns the partial responses with the
        exhaustion recorded in :attr:`drain_exhausted`.
        """
        if on_exhausted not in ("raise", "return"):
            raise ValueError(f"unknown on_exhausted mode {on_exhausted!r}")
        self.drain_exhausted = False
        all_out: list[Response] = []
        for _ in range(max_steps):
            if not len(self._queue):
                return all_out
            out = self.step()
            all_out.extend(out)
        if len(self._queue):
            self.drain_exhausted = True
            if on_exhausted == "raise":
                raise DrainExhausted(len(self._queue), max_steps)
        return all_out

    @property
    def pending(self) -> int:
        return len(self._queue)
