"""TCBServer — the online serving facade (paper Fig. 3, top box).

A synchronous in-process server exercising the *real* NumPy model:
applications ``submit()`` sentences (token-id lists), the server queues
them, and each ``step()`` runs one scheduler+engine slot, returning
finished responses.  This is the component a deployment would put behind
an RPC layer; the discrete-event :class:`ServingSimulator` exists for
paper-scale sweeps where real execution is too slow.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.core.layout import BatchLayout
from repro.core.packing import pack_in_order
from repro.model.seq2seq import Seq2SeqModel
from repro.scheduling.base import Scheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import RequestQueue
from repro.types import Request

__all__ = ["TCBServer", "Response"]


@dataclass
class Response:
    request_id: int
    output_tokens: list[int]
    submitted_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class TCBServer:
    """Online ConcatBatching inference server over the NumPy model."""

    def __init__(
        self,
        model_config: Optional[ModelConfig] = None,
        batch: Optional[BatchConfig] = None,
        scheduler: Optional[Scheduler] = None,
        *,
        seed: int = 0,
        max_new_tokens: int = 8,
        default_slack: float = 60.0,
    ):
        self.model_config = model_config or ModelConfig.tiny()
        self.batch = batch or BatchConfig(num_rows=4, row_length=32)
        if self.batch.row_length > self.model_config.max_len:
            raise ValueError(
                "batch row length exceeds the model's maximum input length"
            )
        self.scheduler = scheduler or DASScheduler(self.batch, SchedulerConfig())
        self.model = Seq2SeqModel(self.model_config, seed=seed)
        self.max_new_tokens = max_new_tokens
        self.default_slack = default_slack
        self._queue = RequestQueue()
        self._ids = itertools.count()
        self._submit_times: dict[int, float] = {}
        self._responses: dict[int, Response] = {}
        # TCBServer is the *online* facade: unlike the discrete-event
        # simulators, its clock really is wall-clock.
        self._t0 = time.perf_counter()  # tcblint: disable=TCB003

    # ------------------------------------------------------------------ #

    def _now(self) -> float:
        return time.perf_counter() - self._t0  # tcblint: disable=TCB003

    def submit(
        self, tokens: Sequence[int], *, deadline_slack: Optional[float] = None
    ) -> int:
        """Enqueue one request; returns its id for :meth:`poll`."""
        if not tokens:
            raise ValueError("cannot submit an empty request")
        if len(tokens) > self.batch.row_length:
            raise ValueError(
                f"request of {len(tokens)} tokens exceeds row length "
                f"{self.batch.row_length}"
            )
        rid = next(self._ids)
        now = self._now()
        slack = self.default_slack if deadline_slack is None else deadline_slack
        req = Request(
            request_id=rid,
            length=len(tokens),
            arrival=now,
            deadline=now + slack,
            tokens=tuple(int(t) for t in tokens),
        )
        self._queue.add(req)
        self._submit_times[rid] = now
        return rid

    def step(self) -> list[Response]:
        """Run one engine slot; returns responses finished this step."""
        now = self._now()
        self._queue.expire(now)
        waiting = self._queue.waiting(now)
        if not waiting:
            return []
        decision = self.scheduler.select(waiting, now)
        selected = decision.selected()
        if not selected:
            return []
        packing = pack_in_order(
            selected, self.batch.num_rows, self.batch.row_length
        )
        layout = packing.layout
        gen = self.model.greedy_decode(layout, max_new_tokens=self.max_new_tokens)
        self._queue.remove_served(packing.packed)
        finished_at = self._now()
        out: list[Response] = []
        for req in packing.packed:
            resp = Response(
                request_id=req.request_id,
                output_tokens=gen.outputs[req.request_id],
                submitted_at=self._submit_times[req.request_id],
                finished_at=finished_at,
            )
            self._responses[req.request_id] = resp
            out.append(resp)
        return out

    def poll(self, request_id: int) -> Optional[Response]:
        """Fetch a finished response (None while pending)."""
        return self._responses.get(request_id)

    def run_until_drained(self, max_steps: int = 1000) -> list[Response]:
        """Keep stepping until the queue is empty; returns all responses."""
        all_out: list[Response] = []
        for _ in range(max_steps):
            if not len(self._queue):
                break
            out = self.step()
            all_out.extend(out)
            if not out and not len(self._queue):
                break
        return all_out

    @property
    def pending(self) -> int:
        return len(self._queue)
