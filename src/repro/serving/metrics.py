"""Serving metrics: utility, throughput, latency, deadline misses.

Matches the quantities the paper reports: *total utility* (Σ 1/l over
requests served by their deadline — Figs. 9, 15), *serving throughput*
(responses/second — Figs. 10–12) and the DAS overhead ratio (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.types import Request

__all__ = ["ServingMetrics"]


@dataclass
class ServingMetrics:
    horizon: float = 0.0
    served: list[Request] = field(default_factory=list)
    expired: list[Request] = field(default_factory=list)
    # Shed at arrival by the admission controller (never queued).
    rejected: list[Request] = field(default_factory=list)
    # Given up by the fault-recovery retry policy (requeue infeasible).
    abandoned: list[Request] = field(default_factory=list)
    # request_id -> (arrival, finish) for latency accounting.
    finish_times: dict[int, tuple[float, float]] = field(default_factory=dict)
    total_engine_time: float = 0.0
    total_scheduler_time: float = 0.0
    num_batches: int = 0
    useful_tokens: int = 0
    padded_tokens: int = 0
    # ---- fault-tolerance accounting ---------------------------------- #
    # Total requests the workload offered (conservation denominator).
    arrived: int = 0
    # Requests requeued after a failed batch / crash / OOM split.
    retries: int = 0
    # Batches that consumed engine time but produced no responses.
    failed_batches: int = 0
    # Total simulated seconds engines spent in crash recovery.
    downtime: float = 0.0
    # ---- overload accounting ----------------------------------------- #
    # How many of `rejected` were shed *after* queueing (load shedding),
    # as opposed to refused at arrival by the admission controller.
    shed: int = 0
    # ---- tail-tolerance accounting ----------------------------------- #
    # Duplicate batches issued past a hedge deadline.
    hedges: int = 0
    # Hedges whose duplicate finished first (primary cancelled).
    hedge_wins: int = 0
    # Engine seconds consumed by hedge losers / failed duplicates —
    # time spent buying the tail down, never producing served output.
    hedge_wasted: float = 0.0

    # ------------------------------------------------------------------ #

    @property
    def total_utility(self) -> float:
        """Objective of Eq. 9: Σ v_n over requests served in time."""
        return float(sum(r.utility for r in self.served))

    @property
    def num_served(self) -> int:
        return len(self.served)

    @property
    def num_expired(self) -> int:
        return len(self.expired)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)

    @property
    def num_abandoned(self) -> int:
        return len(self.abandoned)

    @property
    def throughput(self) -> float:
        """Responses per second over the simulated horizon."""
        span = max(self.horizon, 1e-12)
        return self.num_served / span

    @property
    def offered_load(self) -> int:
        return self.num_served + self.num_expired + self.num_abandoned

    @property
    def miss_rate(self) -> float:
        total = self.offered_load
        misses = self.num_expired + self.num_abandoned
        return 0.0 if total == 0 else misses / total

    @property
    def conservation_ok(self) -> bool:
        """Every arrived request ends in exactly one terminal bucket."""
        accounted = (
            self.num_served
            + self.num_expired
            + self.num_rejected
            + self.num_abandoned
        )
        return accounted == self.arrived

    def assert_conservation(self) -> None:
        """Raise if ``served + expired + rejected + abandoned != arrived``."""
        if not self.conservation_ok:
            raise AssertionError(
                f"request conservation violated: served={self.num_served} "
                f"+ expired={self.num_expired} + rejected={self.num_rejected} "
                f"+ abandoned={self.num_abandoned} != arrived={self.arrived}"
            )

    @property
    def num_on_time(self) -> int:
        """Served responses that finished by their deadline."""
        count = 0
        for r in self.served:
            window = self.finish_times.get(r.request_id)
            if window is None or window[1] <= r.deadline:
                count += 1
        return count

    @property
    def goodput_utility(self) -> float:
        """Σ v_n over *on-time* responses — the overload-plane objective.

        Under overload a FIFO policy keeps "serving" requests whose
        deadlines already passed; ``total_utility`` hides that collapse,
        this does not.
        """
        total = 0.0
        for r in self.served:
            window = self.finish_times.get(r.request_id)
            if window is None or window[1] <= r.deadline:
                total += r.utility
        return float(total)

    @property
    def mean_latency(self) -> float:
        if not self.finish_times:
            return 0.0
        lat = [f - a for a, f in self.finish_times.values()]
        return float(np.mean(lat))

    def latency_percentile(self, p: float) -> float:
        if not self.finish_times:
            return 0.0
        lat = [f - a for a, f in self.finish_times.values()]
        return float(np.percentile(lat, p))

    @property
    def padding_ratio(self) -> float:
        total = self.useful_tokens + self.padded_tokens
        return 0.0 if total == 0 else self.padded_tokens / total

    @property
    def scheduler_overhead_ratio(self) -> float:
        """Fig. 16's quantity: scheduler time / engine time."""
        if self.total_engine_time <= 0:
            return 0.0
        return self.total_scheduler_time / self.total_engine_time

    @property
    def mean_batch_time(self) -> float:
        return 0.0 if self.num_batches == 0 else self.total_engine_time / self.num_batches

    def summary(self) -> dict[str, float]:
        """Flat dict convenient for bench tables."""
        return {
            "utility": self.total_utility,
            "served": float(self.num_served),
            "expired": float(self.num_expired),
            "rejected": float(self.num_rejected),
            "abandoned": float(self.num_abandoned),
            "shed": float(self.shed),
            "on_time": float(self.num_on_time),
            "goodput": self.goodput_utility,
            "retries": float(self.retries),
            "failed_batches": float(self.failed_batches),
            "downtime": self.downtime,
            "hedges": float(self.hedges),
            "hedge_wins": float(self.hedge_wins),
            "hedge_wasted": self.hedge_wasted,
            "throughput": self.throughput,
            "miss_rate": self.miss_rate,
            "mean_latency": self.mean_latency,
            "padding_ratio": self.padding_ratio,
            "sched_overhead": self.scheduler_overhead_ratio,
        }
