"""Admission control: reject hopeless requests at arrival.

Serving systems commonly shed load early rather than queue requests
that cannot possibly meet their deadline.  An
:class:`AdmissionController` inspects each arriving request and either
admits it or rejects it immediately, based on:

- **feasibility** — the request is longer than a batch row (it can never
  be scheduled, Eq. 11), or its deadline precedes even one batch's
  inference time;
- **queue pressure** — optional cap on total queued tokens; beyond it
  the newest *lowest-utility* arrivals are shed first.

This composes with any scheduler (it filters the stream *before* the
queue) and is exercised as an ablation in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.engine.cost_model import GPUCostModel
from repro.types import Request

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass
class AdmissionDecision:
    admitted: bool
    reason: str = "ok"


@dataclass
class AdmissionController:
    """Stateless feasibility checks + stateful token-pressure shedding."""

    batch: BatchConfig
    cost_model: Optional[GPUCostModel] = None
    # Max total tokens allowed in the wait queue; None disables shedding.
    max_queued_tokens: Optional[int] = None
    # Utility floor: requests below it are shed when over pressure.
    _queued_tokens: int = field(default=0, init=False)
    rejected: list[Request] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.cost_model is None:
            self.cost_model = GPUCostModel.calibrated()
        if self.max_queued_tokens is not None and self.max_queued_tokens < 1:
            raise ValueError("max_queued_tokens must be >= 1")

    # ------------------------------------------------------------------ #

    def check(self, request: Request, now: float) -> AdmissionDecision:
        """Feasibility checks for one arriving request."""
        if request.length > self.batch.row_length:
            return AdmissionDecision(False, "longer than batch row")
        assert self.cost_model is not None
        # The soonest this request can complete is one minimal batch away:
        # a batch holding just this request.
        quickest = self.cost_model.batch_time(
            request.length, request.length**2
        )
        if now + quickest > request.deadline:
            return AdmissionDecision(False, "deadline unreachable")
        if (
            self.max_queued_tokens is not None
            and self._queued_tokens + request.length > self.max_queued_tokens
        ):
            return AdmissionDecision(False, "queue pressure")
        return AdmissionDecision(True)

    def admit(self, request: Request, now: float) -> bool:
        """Check and record; rejected requests land in ``self.rejected``."""
        decision = self.check(request, now)
        if decision.admitted:
            self._queued_tokens += request.length
        else:
            self.rejected.append(request)
        return decision.admitted

    def release(self, requests: Sequence[Request]) -> None:
        """Notify the controller that requests left the queue."""
        for r in requests:
            self._queued_tokens = max(0, self._queued_tokens - r.length)

    @property
    def queued_tokens(self) -> int:
        return self._queued_tokens
