"""Serving observability: structured slot traces and timeline analysis.

Wraps a :class:`~repro.serving.simulator.SimulationResult` recorded with
``record_slots=True`` into analysable/exportable form:

- :func:`slot_records` — one flat dict per engine slot (start time,
  latency, requests served, padding, scheduler runtime),
- :func:`timeline` — queue depth and cumulative served/expired counts
  sampled over the horizon,
- :func:`to_jsonl` — newline-delimited JSON for external tooling.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro.serving.simulator import SimulationResult
from repro.types import Request

__all__ = ["slot_records", "timeline", "to_jsonl"]


def slot_records(result: SimulationResult) -> list[dict]:
    """Flatten the recorded slots (requires ``record_slots=True``).

    A request the engine could not serve (planner rejection or fault
    requeue) stays in the wait queue and is re-selected in a later slot,
    so ``num_selected`` summed over records counts it once per attempt.
    ``num_first_selected`` / ``num_retry_selected`` split each slot's
    selection by request id — summing ``num_first_selected`` counts
    every request exactly once.
    """
    records = []
    seen: set[int] = set()
    for t_start, decision, batch in result.slots:
        useful = batch.stats.useful_tokens
        padded = batch.stats.padded_tokens
        selected = decision.selected()
        first = [r for r in selected if r.request_id not in seen]
        seen.update(r.request_id for r in selected)
        records.append(
            {
                "t_start": t_start,
                "latency": batch.latency,
                "num_selected": decision.num_selected,
                "num_first_selected": len(first),
                "num_retry_selected": decision.num_selected - len(first),
                "num_served": batch.num_served,
                "num_rejected": len(batch.rejected),
                "slot_size": decision.slot_size,
                "scheduler_runtime": decision.runtime,
                "useful_tokens": useful,
                "padded_tokens": padded,
                "utilisation": (
                    useful / (useful + padded) if useful + padded else 0.0
                ),
            }
        )
    return records


def timeline(
    result: SimulationResult,
    workload: Sequence[Request],
    *,
    num_points: int = 50,
) -> dict[str, list[float]]:
    """Queue depth + cumulative served/expired over the horizon.

    ``workload`` must be the same request trace the simulation ran.
    Queue depth at time t = arrived(t) − served-by(t) − failed-by(t),
    with served times taken from the metrics' finish times, expiries at
    their deadlines, and fault-abandoned requests at their deadlines as
    well (the closest recorded proxy for when they left the queue).

    Terminal ledgers are deduplicated on request id: optimistic failure
    detection in the cluster loop can record the same request's demise
    more than once (it may be in flight on a survivor while a crashed
    engine's casualties are triaged), and a duplicate here would inflate
    the failure counts and drive the queue depth negative.
    """
    if num_points < 2:
        raise ValueError("num_points must be >= 2")
    m = result.metrics
    horizon = m.horizon
    ts = np.linspace(0.0, horizon, num_points)

    def _dedupe(requests: Sequence[Request]) -> list[Request]:
        unique: dict[int, Request] = {}
        for r in requests:
            unique.setdefault(r.request_id, r)
        return list(unique.values())

    arrivals = np.sort([r.arrival for r in workload])
    finish = np.sort([f for _, f in m.finish_times.values()])
    expiries = np.sort(
        [min(r.deadline, horizon) for r in _dedupe(m.expired)]
    )
    abandons = np.sort(
        [min(r.deadline, horizon) for r in _dedupe(m.abandoned)]
    )

    queue, served_c, expired_c = [], [], []
    for t in ts:
        a = int(np.searchsorted(arrivals, t, side="right"))
        s = int(np.searchsorted(finish, t, side="right"))
        e = int(np.searchsorted(expiries, t, side="right"))
        ab = int(np.searchsorted(abandons, t, side="right"))
        served_c.append(float(s))
        expired_c.append(float(e))
        queue.append(float(max(0, a - s - e - ab)))
    return {
        "t": [float(t) for t in ts],
        "queue_depth": queue,
        "served_cum": served_c,
        "expired_cum": expired_c,
    }


def to_jsonl(result: SimulationResult) -> str:
    """Slot records as newline-delimited JSON."""
    return "\n".join(json.dumps(rec) for rec in slot_records(result))
