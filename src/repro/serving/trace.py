"""Serving observability: structured slot traces and timeline analysis.

Wraps a :class:`~repro.serving.simulator.SimulationResult` recorded with
``record_slots=True`` into analysable/exportable form:

- :func:`slot_records` — one flat dict per engine slot (start time,
  latency, requests served, padding, scheduler runtime),
- :func:`timeline` — queue depth and cumulative served/expired counts
  sampled over the horizon,
- :func:`to_jsonl` — newline-delimited JSON for external tooling.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro.serving.simulator import SimulationResult
from repro.types import Request

__all__ = ["slot_records", "timeline", "to_jsonl"]


def slot_records(result: SimulationResult) -> list[dict]:
    """Flatten the recorded slots (requires ``record_slots=True``)."""
    records = []
    for t_start, decision, batch in result.slots:
        useful = batch.stats.useful_tokens
        padded = batch.stats.padded_tokens
        records.append(
            {
                "t_start": t_start,
                "latency": batch.latency,
                "num_selected": decision.num_selected,
                "num_served": batch.num_served,
                "num_rejected": len(batch.rejected),
                "slot_size": decision.slot_size,
                "scheduler_runtime": decision.runtime,
                "useful_tokens": useful,
                "padded_tokens": padded,
                "utilisation": (
                    useful / (useful + padded) if useful + padded else 0.0
                ),
            }
        )
    return records


def timeline(
    result: SimulationResult,
    workload: Sequence[Request],
    *,
    num_points: int = 50,
) -> dict[str, list[float]]:
    """Queue depth + cumulative served/expired over the horizon.

    ``workload`` must be the same request trace the simulation ran.
    Queue depth at time t = arrived(t) − served-by(t) − expired-by(t),
    with served times taken from the metrics' finish times and expiries
    at their deadlines.
    """
    if num_points < 2:
        raise ValueError("num_points must be >= 2")
    m = result.metrics
    horizon = m.horizon
    ts = np.linspace(0.0, horizon, num_points)

    arrivals = np.sort([r.arrival for r in workload])
    finish = np.sort([f for _, f in m.finish_times.values()])
    expiries = np.sort(
        [min(r.deadline, horizon) for r in m.expired]
    )

    queue, served_c, expired_c = [], [], []
    for t in ts:
        a = int(np.searchsorted(arrivals, t, side="right"))
        s = int(np.searchsorted(finish, t, side="right"))
        e = int(np.searchsorted(expiries, t, side="right"))
        served_c.append(float(s))
        expired_c.append(float(e))
        queue.append(float(max(0, a - s - e)))
    return {
        "t": [float(t) for t in ts],
        "queue_depth": queue,
        "served_cum": served_c,
        "expired_cum": expired_c,
    }


def to_jsonl(result: SimulationResult) -> str:
    """Slot records as newline-delimited JSON."""
    return "\n".join(json.dumps(rec) for rec in slot_records(result))
