"""Discrete-event serving simulator (the loop of paper Fig. 3).

The clock advances in *engine slots*: whenever the (simulated) GPU is
idle, arrivals up to ``now`` are admitted, expired requests are dropped,
the scheduler packs a batch from ``N_t`` and the engine executes it; the
clock then jumps by the batch's inference latency.  When the queue is
empty, the clock fast-forwards to the next arrival.

The same loop serves every (scheduler × engine) combination in the
paper's evaluation; see the ``benchmarks/`` directory for the sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.base import BatchResult, InferenceEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.scheduling.queue import RequestQueue
from repro.serving.metrics import ServingMetrics
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["ServingSimulator", "SimulationResult"]

# Engine time floor: a zero-latency engine would spin the loop forever.
_MIN_SLOT = 1e-6


@dataclass
class SimulationResult:
    metrics: ServingMetrics
    # Per-slot records for debugging/analysis: (t_start, decision, result).
    slots: list[tuple[float, SchedulingDecision, BatchResult]] = field(
        default_factory=list
    )


class ServingSimulator:
    """Wire a workload, scheduler and engine into one serving run."""

    def __init__(
        self,
        scheduler: Scheduler,
        engine: InferenceEngine,
        *,
        record_slots: bool = False,
    ):
        self.scheduler = scheduler
        self.engine = engine
        self.record_slots = record_slots

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate serving the workload; returns metrics (+slot log)."""
        if hasattr(workload, "generate"):  # any workload generator (duck-typed)
            requests = workload.generate()
            horizon = workload.horizon if horizon is None else horizon
        else:
            requests = sorted(workload, key=lambda r: (r.arrival, r.request_id))
            if horizon is None:
                horizon = max((r.arrival for r in requests), default=0.0) + 1.0

        metrics = ServingMetrics(horizon=horizon)
        result = SimulationResult(metrics=metrics)
        queue = RequestQueue()

        now = 0.0
        next_arrival = 0
        n = len(requests)

        while now < horizon:
            # Admit arrivals up to the current time.
            while next_arrival < n and requests[next_arrival].arrival <= now:
                queue.add(requests[next_arrival])
                next_arrival += 1
            queue.expire(now)

            waiting = queue.waiting(now)
            if not waiting:
                if next_arrival >= n:
                    break  # Nothing left to serve.
                now = requests[next_arrival].arrival
                continue

            decision = self.scheduler.select(waiting, now)
            decision.validate(self.scheduler.batch)
            metrics.total_scheduler_time += decision.runtime

            if decision.slot_size is not None and isinstance(
                self.engine, SlottedConcatEngine
            ):
                self.engine.set_slot_size(decision.slot_size)

            selected = decision.selected()
            if not selected:
                # Scheduler picked nothing (e.g. everything exceeds L):
                # drop the unschedulable requests to avoid livelock.
                unservable = [
                    r
                    for r in waiting
                    if r.length > self.scheduler.batch.row_length
                ]
                if unservable:
                    queue.drop(unservable)
                    continue
                if next_arrival >= n:
                    break
                now = requests[next_arrival].arrival
                continue

            batch_result = self.engine.serve(selected)
            latency = max(batch_result.latency, _MIN_SLOT)
            finish = now + latency

            queue.remove_served(batch_result.served)
            for r in batch_result.served:
                metrics.finish_times[r.request_id] = (r.arrival, finish)
            metrics.served.extend(batch_result.served)
            metrics.total_engine_time += latency
            metrics.num_batches += 1
            metrics.useful_tokens += batch_result.stats.useful_tokens
            metrics.padded_tokens += batch_result.stats.padded_tokens

            if self.record_slots:
                result.slots.append((now, decision, batch_result))

            now = finish

        # Anything still waiting at the horizon (or arriving after the
        # last slot) counts as failed.
        queue.expire(float("inf"))
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        return result
