"""Discrete-event serving simulator (the loop of paper Fig. 3).

The clock advances in *engine slots*: whenever the (simulated) GPU is
idle, arrivals up to ``now`` are admitted, expired requests are dropped,
the scheduler packs a batch from ``N_t`` and the engine executes it; the
clock then jumps by the batch's inference latency.  When the queue is
empty, the clock fast-forwards to the next arrival.

The same loop serves every (scheduler × engine) combination in the
paper's evaluation; see the ``benchmarks/`` directory for the sweeps.

Beyond the paper, the loop is fault-tolerant: engines wrapped in
:class:`~repro.faults.engine.FaultyEngine` surface batch failures,
transient OOM and crashes as typed outcomes, which the loop answers
with split-batch retry, bounded deadline-aware requeue, and clock
advancement through crash downtime (see ``docs/faults.md``).  An
optional :class:`~repro.serving.admission.AdmissionController` sheds
hopeless requests at arrival; its rejections are folded into the
metrics so the conservation invariant
``served + expired + rejected + abandoned == arrived`` holds on every
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.durability.plane import DurabilityPlane
from repro.durability.restore import RestoredState
from repro.durability.snapshot import LiveState
from repro.engine.base import BatchResult, InferenceEngine
from repro.faults.recovery import RetryPolicy, requeue_failed, serve_slot
from repro.obs.recorder import NO_TRACE, Tracer
from repro.overload.controller import OverloadController
from repro.overload.ledger import drop_unservable
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.scheduling.queue import RequestQueue
from repro.serving.admission import AdmissionController
from repro.serving.common import MIN_SLOT, apply_slot_size, resolve_workload
from repro.serving.metrics import ServingMetrics
from repro.tenancy.plane import TenancyPlane
from repro.types import Request
from repro.workload.generator import WorkloadGenerator

__all__ = ["ServingSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    metrics: ServingMetrics
    # Per-slot records for debugging/analysis: (t_start, decision, result).
    slots: list[tuple[float, SchedulingDecision, BatchResult]] = field(
        default_factory=list
    )


class ServingSimulator:
    """Wire a workload, scheduler and engine into one serving run."""

    def __init__(
        self,
        scheduler: Scheduler,
        engine: InferenceEngine,
        *,
        record_slots: bool = False,
        admission: Optional[AdmissionController] = None,
        retry: Optional[RetryPolicy] = None,
        trace: Optional[Tracer] = None,
        overload: Optional[OverloadController] = None,
        durability: Optional[DurabilityPlane] = None,
        tenancy: Optional[TenancyPlane] = None,
    ):
        self.scheduler = scheduler
        self.engine = engine
        self.record_slots = record_slots
        self.admission = admission
        self.retry = retry or RetryPolicy()
        # Span tracing (repro.obs) is off by default: the loop falls
        # back to the no-op recorder, so every emission site costs one
        # `enabled` attribute lookup when disabled.
        self.trace = trace
        # Overload management (bounded queue + shedding, degradation,
        # circuit breaker) is off by default: without a controller the
        # loop takes exactly its pre-overload paths.
        self.overload = overload
        # Durability plane (snapshot/journal, see docs/recovery.md) is
        # off by default: without a plane the loop takes exactly its
        # pre-durability paths, bit-identical to today.
        self.durability = durability
        # Tenancy plane (quota admission, fair share, per-tenant
        # ledgers; see docs/tenancy.md) is off by default: with
        # tenancy=None the loop takes exactly its tenant-blind paths.
        self.tenancy = tenancy

    def _release(self, requests: Iterable[Request]) -> None:
        """Tell the admission controller requests left the queue."""
        if self.admission is not None:
            self.admission.release(list(requests))

    def run(
        self,
        workload: WorkloadGenerator | Sequence[Request],
        *,
        horizon: Optional[float] = None,
        resume: Optional[RestoredState] = None,
    ) -> SimulationResult:
        """Simulate serving the workload; returns metrics (+slot log).

        ``resume=`` restarts the loop from a
        :class:`~repro.durability.restore.RestoredState` (the output of
        ``durability.restore()`` after a crash); the workload must be
        the same materialised request sequence the crashed run was
        given.
        """
        requests, horizon = resolve_workload(workload, horizon)

        tr = self.trace if self.trace is not None else NO_TRACE
        ov = self.overload
        dur = self.durability
        tn = self.tenancy
        if resume is not None:
            if dur is None:
                raise ValueError("resume= requires a durability plane")
            metrics = resume.metrics
            metrics.horizon = horizon
            queue = resume.queue
            now = resume.now
            next_arrival = resume.next_arrival
            rejected_before = resume.rejected_before
            resume.apply_shared(
                tracer=tr,
                overload=ov,
                admission=self.admission,
                engines=(self.engine,),
                tenancy=tn,
            )
        else:
            metrics = ServingMetrics(horizon=horizon, arrived=len(requests))
            queue = RequestQueue()
            if ov is not None:
                ov.begin_run()
            if tn is not None:
                tn.begin_run()
            # A controller may be shared across runs; only this run's
            # rejections belong in this run's metrics.
            rejected_before = (
                len(self.admission.rejected)
                if self.admission is not None
                else 0
            )
            now = 0.0
            next_arrival = 0
        result = SimulationResult(metrics=metrics)
        n = len(requests)
        # With a quota-free registry admit() can never refuse; skip the
        # per-arrival dispatch entirely.
        tn_admit = (
            tn.admit if tn is not None and not tn.passive_admission else None
        )

        if dur is not None:

            def _live() -> LiveState:
                return LiveState(
                    queue=queue,
                    metrics=metrics,
                    now=now,
                    next_arrival=next_arrival,
                    rejected_before=rejected_before,
                    tracer=tr if tr.enabled else None,
                    overload=ov,
                    admission=self.admission,
                    engines=(self.engine,),
                    tenancy=tn,
                )

            dur.begin_run(_live, tr, resume=resume)

        while now < horizon:
            if dur is not None:
                dur.tick()
            # Admit arrivals up to the current time.
            while next_arrival < n and requests[next_arrival].arrival <= now:
                r = requests[next_arrival]
                if tn is not None:
                    tn.arrive(r)
                if self.admission is None or self.admission.admit(r, r.arrival):
                    if ov is not None and not ov.admit(r, r.arrival):
                        # Degradation-tightened admission: an explicit
                        # rejected-class terminal, and any tokens the
                        # admission controller reserved are given back.
                        self._release([r])
                        metrics.rejected.append(r)
                        if tn is not None:
                            tn.rejected([r])
                        if tr.enabled:
                            tr.arrive(r, r.arrival)
                            tr.rejected(r, r.arrival)
                        if dur is not None:
                            dur.terminal("rejected", [r], dequeue=False)
                        next_arrival += 1
                        continue
                    quota = (
                        tn_admit(r, r.arrival) if tn_admit is not None else None
                    )
                    if quota is not None:
                        # Tenant quota (token bucket / in-flight cap):
                        # a rejected-class terminal, attributed to the
                        # tenant's own ledger as quota-rejected.
                        self._release([r])
                        metrics.rejected.append(r)
                        tn.rejected(
                            [r],
                            quota=True,
                            now=r.arrival,
                            tracer=tr if tr.enabled else None,
                        )
                        if tr.enabled:
                            tr.arrive(r, r.arrival)
                            tr.rejected(r, r.arrival)
                        if dur is not None:
                            dur.terminal("rejected", [r], dequeue=False)
                        next_arrival += 1
                        continue
                    queue.add(r)
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.enqueue(r, r.arrival)
                    if dur is not None:
                        dur.enqueue(r)
                else:
                    if tn is not None:
                        tn.rejected([r])
                    if tr.enabled:
                        tr.arrive(r, r.arrival)
                        tr.rejected(r, r.arrival)
                next_arrival += 1
            dead = queue.expire(now)
            if tr.enabled:
                tr.expired(dead, now)
            self._release(dead)
            if tn is not None:
                tn.expired(dead)
            if dur is not None:
                dur.terminal("expired", dead)

            if ov is not None:
                ov.observe_outcomes(missed=len(dead))
                ov.update(now, queue, tr)
                shed = ov.maybe_shed(queue, metrics, now, tr)
                self._release(shed)
                if tn is not None:
                    tn.shed(shed)
                if dur is not None:
                    dur.shed(shed)

            waiting = queue.waiting(now)
            if not waiting:
                if next_arrival >= n:
                    break  # Nothing left to serve.
                now = requests[next_arrival].arrival
                continue

            if ov is not None and not ov.breaker_allow(0, now, tr):
                # Breaker open: with a single engine nothing can run
                # before the recovery interval elapses; jump there.
                now = min(ov.breaker_retry_at(0), horizon)
                continue

            if tn is not None:
                decision = tn.select(
                    self.scheduler,
                    waiting,
                    now,
                    tracer=tr if tr.enabled else None,
                )
            else:
                decision = self.scheduler.select(waiting, now)
            decision.validate(self.scheduler.batch)
            metrics.total_scheduler_time += decision.runtime
            apply_slot_size(self.engine, decision)
            if tr.enabled:
                tr.decision(
                    now,
                    decision.runtime,
                    {
                        "scheduler": self.scheduler.name,
                        "num_selected": decision.num_selected,
                        "queue_depth": len(waiting),
                        **decision.info,
                    },
                )

            selected = decision.selected()
            if not selected:
                # Scheduler picked nothing (e.g. everything exceeds L):
                # drop the unschedulable requests to avoid livelock.
                unservable = [
                    r
                    for r in waiting
                    if r.length > self.scheduler.batch.row_length
                ]
                if unservable:
                    drop_unservable(queue, unservable, now, tr)
                    self._release(unservable)
                    if tn is not None:
                        tn.expired(unservable)
                    if dur is not None:
                        dur.terminal("expired", unservable)
                    continue
                if next_arrival >= n:
                    break
                now = requests[next_arrival].arrival
                continue

            if ov is not None:
                selected = ov.cap_batch(selected)
            if tr.enabled:
                tr.scheduled(selected, now)
            if dur is not None:
                dur.dispatch(selected)
            outcome = serve_slot(self.engine, selected, now)
            metrics.failed_batches += outcome.failures
            metrics.retries += outcome.split_retries
            metrics.total_engine_time += outcome.wasted
            if tr.enabled and outcome.failures:
                tr.batch(
                    now,
                    outcome.wasted,
                    kind="failed",
                    failures=outcome.failures,
                    split_retries=outcome.split_retries,
                    num_requests=len(selected),
                )
            now += outcome.wasted
            if ov is not None:
                ov.record_result(
                    0,
                    now,
                    ok=outcome.result is not None,
                    kind="crash" if outcome.down_until is not None else "failure",
                    tracer=tr,
                )

            if outcome.down_until is not None:
                # Engine crashed: with a single engine nothing can be
                # served before it recovers, so requeue feasibility is
                # judged at the rejoin time.
                metrics.downtime += outcome.downtime
                retained, lost = requeue_failed(
                    queue,
                    self.retry,
                    self.engine.cost_model,
                    outcome.failed,
                    outcome.down_until,
                )
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.batch(
                        now, outcome.downtime, kind="crash",
                        downtime=outcome.downtime,
                    )
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                self._release(lost)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, outcome.failed, retained, lost)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                now = max(now, outcome.down_until)
                continue
            if outcome.result is None:
                # Terminal batch failure: the wasted time has already
                # advanced the clock; triage the casualties.
                retained, lost = requeue_failed(
                    queue,
                    self.retry,
                    self.engine.cost_model,
                    outcome.failed,
                    now,
                )
                metrics.retries += len(retained)
                if tr.enabled:
                    tr.requeued(retained, now)
                    tr.abandoned(lost, now)
                self._release(lost)
                if tn is not None:
                    tn.abandoned(lost)
                if dur is not None:
                    dur.requeued(queue, outcome.failed, retained, lost)
                if ov is not None:
                    ov.observe_outcomes(missed=len(lost))
                continue

            batch_result = outcome.result
            latency = max(batch_result.latency, MIN_SLOT)
            finish = now + latency

            if tr.enabled:
                tr.packed_layouts(batch_result.layouts, now)
                tr.executed(batch_result.served, now, latency)
                tr.batch(
                    now,
                    latency,
                    kind="batch",
                    num_requests=batch_result.num_served,
                    useful_tokens=batch_result.stats.useful_tokens,
                    padded_tokens=batch_result.stats.padded_tokens,
                    padding_efficiency=batch_result.stats.utilisation,
                    rows=batch_result.stats.rows,
                    row_width=batch_result.stats.row_width,
                    slot_size=decision.slot_size,
                    failures=outcome.failures,
                    split_retries=outcome.split_retries,
                    wasted=outcome.wasted,
                    **self.engine.trace_annotations(batch_result),
                )
                served_ids = {r.request_id for r in batch_result.served}
                leftover = [
                    r for r in selected if r.request_id not in served_ids
                ]
                tr.requeued(leftover, now)
                tr.served(batch_result.served, finish)

            queue.remove_served(batch_result.served)
            self._release(batch_result.served)
            if tn is not None:
                tn.served(batch_result.served, finish)
            if dur is not None:
                dur.served(batch_result.served, finish)
            if ov is not None:
                on_time = sum(
                    1 for r in batch_result.served if finish <= r.deadline
                )
                ov.observe_outcomes(
                    served=on_time,
                    missed=len(batch_result.served) - on_time,
                )
            for r in batch_result.served:
                metrics.finish_times[r.request_id] = (r.arrival, finish)
            metrics.served.extend(batch_result.served)
            metrics.total_engine_time += latency
            metrics.num_batches += 1
            metrics.useful_tokens += batch_result.stats.useful_tokens
            metrics.padded_tokens += batch_result.stats.padded_tokens

            if self.record_slots:
                result.slots.append((now, decision, batch_result))

            now = finish

        # Anything still waiting at the horizon (or arriving after the
        # last slot) counts as failed.
        dead = queue.expire(float("inf"))
        if tr.enabled:
            tr.expired(dead, horizon)
            for r in requests[next_arrival:]:
                tr.arrive(r, r.arrival)
            tr.expired(requests[next_arrival:], horizon)
        if tn is not None:
            tn.expired(dead)
            for r in requests[next_arrival:]:
                tn.arrive(r)
            tn.expired(requests[next_arrival:])
        if dur is not None:
            dur.terminal("expired", dead)
            dur.end_run(requests[next_arrival:])
        metrics.expired.extend(queue.expired)
        metrics.expired.extend(requests[next_arrival:])
        metrics.abandoned.extend(queue.abandoned)
        if self.admission is not None:
            metrics.rejected.extend(self.admission.rejected[rejected_before:])
        metrics.assert_conservation()
        if tn is not None:
            tn.finalize(metrics)
        if tr.enabled:
            tr.reconcile(metrics)
        return result
