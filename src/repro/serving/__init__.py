"""The serving system: discrete-event simulator, metrics, online server.

:class:`~repro.serving.simulator.ServingSimulator` wires a workload, a
scheduler and an engine into the loop of Fig. 3: when the (simulated)
GPU goes idle, the scheduler packs a batch from the wait queue and the
engine runs it; requests missing their deadlines expire with zero
utility.  All of the paper's serving figures (9–12, 15, 16) are sweeps
over this loop.

:class:`~repro.serving.server.TCBServer` is the online facade a real
deployment would use (submit / poll), running the real NumPy model.
"""

from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator, SimulationResult
from repro.serving.server import TCBServer
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.autoscale import AutoscalingSimulator, ScalingEvent
from repro.serving.admission import AdmissionController

__all__ = [
    "ServingMetrics",
    "ServingSimulator",
    "SimulationResult",
    "TCBServer",
    "ClusterSimulator",
    "ContinuousBatchingSimulator",
    "AutoscalingSimulator",
    "ScalingEvent",
    "AdmissionController",
]
