"""Clairvoyant oracle scheduler (offline upper baseline).

DAS is online — it never sees future arrivals.  For *analysis*, it is
useful to compare against a clairvoyant scheduler that knows the entire
trace and plans with the LP relaxation of Eqs. 9–13: at simulation
time, :class:`OracleScheduler` solves the LP over a fixed slot grid
once, rounds the fractional plan greedily per slot, and replays it.

This is not part of the paper (which proves a bound against OPT rather
than running it); it exists to *measure* how close DAS lands to a
clairvoyant plan on real traces — reported in the ablation bench.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.types import Request

__all__ = ["OracleScheduler", "plan_with_lp"]


def plan_with_lp(
    requests: Sequence[Request],
    slot_times: Sequence[float],
    batch: BatchConfig,
) -> dict[int, int]:
    """Assign requests to slots via LP relaxation + greedy rounding.

    Returns ``request_id -> slot_index`` for assigned requests.  The LP
    (aggregate token budget per slot) is solved once; fractional values
    are rounded by, per request (highest utility first), picking its
    best-valued feasible slot with remaining token budget.
    """
    from scipy.optimize import linprog

    reqs = [r for r in requests if r.length <= batch.row_length]
    T = len(slot_times)
    if not reqs or T == 0:
        return {}
    n = len(reqs)
    cap = float(batch.capacity_tokens)

    def avail(r: Request, t: int) -> bool:
        return r.arrival <= slot_times[t] <= r.deadline

    c = np.zeros(n * T)
    bounds = []
    for i, r in enumerate(reqs):
        for t in range(T):
            ok = avail(r, t)
            c[i * T + t] = -r.utility if ok else 0.0
            bounds.append((0.0, 1.0 if ok else 0.0))

    a_ub, b_ub = [], []
    for i in range(n):
        row = np.zeros(n * T)
        row[i * T : (i + 1) * T] = 1.0
        a_ub.append(row)
        b_ub.append(1.0)
    for t in range(T):
        row = np.zeros(n * T)
        for i, r in enumerate(reqs):
            row[i * T + t] = r.length
        a_ub.append(row)
        b_ub.append(cap)

    res = linprog(
        c, A_ub=np.array(a_ub), b_ub=np.array(b_ub), bounds=bounds, method="highs"
    )
    if not res.success:
        raise RuntimeError(f"oracle LP failed: {res.message}")
    x = res.x.reshape(n, T)

    remaining = [cap] * T
    plan: dict[int, int] = {}
    order = sorted(range(n), key=lambda i: (-reqs[i].utility, reqs[i].request_id))
    for i in order:
        r = reqs[i]
        slots = sorted(
            (t for t in range(T) if avail(r, t) and remaining[t] >= r.length),
            key=lambda t: -x[i, t],
        )
        if slots and x[i, slots[0]] > 1e-9:
            t = slots[0]
            plan[r.request_id] = t
            remaining[t] -= r.length
    return plan


class OracleScheduler(Scheduler):
    """Replays a precomputed clairvoyant plan slot by slot."""

    name = "oracle"

    def __init__(
        self,
        batch: BatchConfig,
        requests: Sequence[Request],
        slot_times: Sequence[float],
    ):
        super().__init__(batch)
        self.slot_times = list(slot_times)
        self.plan = plan_with_lp(requests, slot_times, batch)
        self._next_slot = 0

    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        start = time.perf_counter()
        # Map `now` to the nearest planned slot not yet replayed.
        t_idx: Optional[int] = None
        for i in range(self._next_slot, len(self.slot_times)):
            if self.slot_times[i] <= now + 1e-9:
                t_idx = i
        if t_idx is None:
            t_idx = min(self._next_slot, len(self.slot_times) - 1)
        self._next_slot = t_idx + 1

        chosen_ids = {
            rid for rid, t in self.plan.items() if t == t_idx
        }
        chosen = [r for r in waiting if r.request_id in chosen_ids]
        # Pack greedily into rows (the LP ignores row structure; packing
        # is feasible for the vast majority of plans — overflow returns
        # to the queue for the next slot).
        rows: list[list[Request]] = [[] for _ in range(self.batch.num_rows)]
        free = [self.batch.row_length] * self.batch.num_rows
        for r in sorted(chosen, key=lambda r: -r.length):
            for k in range(self.batch.num_rows):
                if r.length <= free[k]:
                    rows[k].append(r)
                    free[k] -= r.length
                    break
        decision = SchedulingDecision(rows=[row for row in rows if row])
        decision.runtime = time.perf_counter() - start
        return decision
