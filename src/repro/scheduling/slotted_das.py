"""Slotted DAS — Algorithm 2.

Runs Algorithm 1 to obtain per-row candidate sets ``{H_tk}``, derives the
slot size from the longest request in the union of utility-dominant sets
``H^U`` (so no utility-dominant request is discarded by the slot limit),
then re-packs each row slot-wise.  Requests from the deadline-aware /
back-fill parts that exceed the slot size are discarded — the
flexibility/redundancy trade-off §5.3 discusses.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.config import BatchConfig, SchedulerConfig
from repro.core.slotting import (
    divide_row_into_slots,
    slot_size_from_utility_dominant,
)
from repro.core.layout import RowLayout
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.scheduling.das import DASScheduler
from repro.types import Request

__all__ = ["SlottedDASScheduler"]


class SlottedDASScheduler(Scheduler):
    name = "slotted_das"

    def __init__(
        self,
        batch: BatchConfig,
        config: Optional[SchedulerConfig] = None,
        *,
        reference: bool = False,
    ):
        super().__init__(batch)
        self.config = config or SchedulerConfig()
        self._das = DASScheduler(
            batch, self.config, record_parts=True, reference=reference
        )

    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        start = time.perf_counter()
        # Line 2: invoke DAS.
        base = self._das.select(waiting, now)
        # Line 3: utility-dominant union H^U.
        h_u = [r for n_u, _ in self._das.last_parts for r in n_u]
        # Line 4: slot size = longest task in H^U.
        z = slot_size_from_utility_dominant(h_u, self.batch.row_length)

        # Lines 5–8: re-pack each row's tasks into slots greedily.
        rows: list[list[Request]] = []
        discarded: list[Request] = []
        for row_requests in base.rows:
            row = RowLayout(capacity=self.batch.row_length)
            row.slots = divide_row_into_slots(row, z)
            packed: list[Request] = []
            # Longest-first keeps Algorithm 2's guarantee: a request no
            # longer than the slot size is never lost to fragmentation
            # caused by shorter requests placed before it.
            row_requests = sorted(
                row_requests, key=lambda r: (-r.length, r.request_id)
            )
            for req in row_requests:
                target = next(
                    (s for s in row.slots if s.can_fit(req.length)), None
                )
                if target is None:
                    discarded.append(req)
                else:
                    target.add(req)
                    packed.append(req)
            rows.append(packed)

        decision = SchedulingDecision(
            rows=rows,
            slot_size=z,
            discarded=discarded,
            info={
                **base.info,
                "scheduler": self.name,
                "slot_size": z,
                "num_discarded": len(discarded),
            },
        )
        decision.runtime = time.perf_counter() - start
        return decision
