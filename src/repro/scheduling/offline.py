"""Offline optima for the scheduling problem (Eqs. 9–13).

Used to check Theorem 5.1 (the ``ηq/(ηq+1)`` competitive ratio)
empirically:

- :func:`exact_opt` — exact optimum by branch-and-bound over time slots
  with bin-packing feasibility per slot.  Exponential; intended for tiny
  instances (≤ ~14 requests, ≤ ~4 slots) in tests.
- :func:`lp_upper_bound` — LP relaxation via :func:`scipy.optimize.linprog`
  (HiGHS).  The row structure is relaxed to an aggregate ``B·L`` token
  budget per slot and integrality is dropped, so
  ``LP ≥ OPT ≥ ALG ≥ α·OPT`` — the LP gives a cheap upper bound for
  larger instances.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.types import Request

__all__ = ["exact_opt", "lp_upper_bound", "fits_in_rows"]


def fits_in_rows(lengths: Sequence[int], num_rows: int, row_length: int) -> bool:
    """Exact bin-packing feasibility: do ``lengths`` fit in B rows of L?

    Branch-and-bound with longest-first ordering and symmetric-row
    pruning.  Exponential in the worst case; fine for the instance sizes
    the tests use.
    """
    items = sorted((l for l in lengths), reverse=True)
    if not items:
        return True
    if items[0] > row_length:
        return False
    if sum(items) > num_rows * row_length:
        return False
    rows = [row_length] * num_rows

    def place(i: int) -> bool:
        if i == len(items):
            return True
        seen: set[int] = set()
        for k in range(num_rows):
            if rows[k] >= items[i] and rows[k] not in seen:
                seen.add(rows[k])
                rows[k] -= items[i]
                if place(i + 1):
                    rows[k] += items[i]
                    return True
                rows[k] += items[i]
        return False

    return place(0)


def _available_slots(req: Request, slot_times: Sequence[float]) -> list[int]:
    return [
        t_idx
        for t_idx, t in enumerate(slot_times)
        if req.arrival <= t <= req.deadline
    ]


def exact_opt(
    requests: Sequence[Request],
    slot_times: Sequence[float],
    num_rows: int,
    row_length: int,
) -> float:
    """Exact offline optimum of Eqs. 9–13 by exhaustive assignment.

    Each request is assigned to one of its available slots or dropped;
    per-slot feasibility is checked with exact bin packing.  The search
    is pruned on a running utility upper bound.
    """
    reqs = [r for r in requests if r.length <= row_length]
    options = [(-r.utility, r, _available_slots(r, slot_times)) for r in reqs]
    # High-utility requests first so pruning bites early.
    options.sort(key=lambda x: x[0])
    suffix_utility = [0.0] * (len(options) + 1)
    for i in range(len(options) - 1, -1, -1):
        suffix_utility[i] = suffix_utility[i + 1] + options[i][1].utility

    best = 0.0
    slot_loads: list[list[int]] = [[] for _ in slot_times]

    def recurse(i: int, value: float) -> None:
        nonlocal best
        if value + suffix_utility[i] <= best:
            return
        if i == len(options):
            best = max(best, value)
            return
        _, req, slots = options[i]
        for t_idx in slots:
            slot_loads[t_idx].append(req.length)
            if sum(slot_loads[t_idx]) <= num_rows * row_length and fits_in_rows(
                slot_loads[t_idx], num_rows, row_length
            ):
                recurse(i + 1, value + req.utility)
            slot_loads[t_idx].pop()
        # Drop the request.
        recurse(i + 1, value)

    recurse(0, 0.0)
    return best


def lp_upper_bound(
    requests: Sequence[Request],
    slot_times: Sequence[float],
    num_rows: int,
    row_length: int,
) -> float:
    """LP-relaxation upper bound on the offline optimum.

    Variables ``x[n, t] ∈ [0, 1]`` with Σ_t x ≤ 1 per request and
    Σ_n l_n x ≤ B·L per slot, maximising Σ v_n x.  Row structure and
    integrality are relaxed, so the value dominates OPT.
    """
    reqs = [r for r in requests if r.length <= row_length]
    n, T = len(reqs), len(slot_times)
    if n == 0 or T == 0:
        return 0.0
    # Variable index (i, t) -> i * T + t.
    c = np.zeros(n * T)
    for i, r in enumerate(reqs):
        avail = set(_available_slots(r, slot_times))
        for t in range(T):
            c[i * T + t] = -r.utility if t in avail else 0.0

    a_ub = []
    b_ub = []
    # Per-request: sum over slots <= 1.
    for i in range(n):
        row = np.zeros(n * T)
        row[i * T : (i + 1) * T] = 1.0
        a_ub.append(row)
        b_ub.append(1.0)
    # Per-slot capacity.
    for t in range(T):
        row = np.zeros(n * T)
        for i, r in enumerate(reqs):
            row[i * T + t] = r.length
        a_ub.append(row)
        b_ub.append(float(num_rows * row_length))

    bounds = []
    for i, r in enumerate(reqs):
        avail = set(_available_slots(r, slot_times))
        for t in range(T):
            bounds.append((0.0, 1.0 if t in avail else 0.0))

    res = linprog(
        c, A_ub=np.array(a_ub), b_ub=np.array(b_ub), bounds=bounds, method="highs"
    )
    if not res.success:
        raise RuntimeError(f"LP failed: {res.message}")
    return float(-res.fun)
