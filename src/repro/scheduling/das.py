"""DAS — the Online Deadline-Aware Scheduling algorithm (Algorithm 1).

For each batch row the algorithm:

1. If everything still waiting fits in the row, takes it all (line 4–5).
2. Otherwise sorts the candidates by utility ``v_n = 1/l_n``
   non-increasingly into ``Ñ_t`` (line 7), finds the saturating prefix
   size ``s_tk`` (line 8), and takes the first ``p_tk = η·s_tk`` as the
   *utility-dominant set* ``N^U_t`` (lines 9–10).
3. Builds the *deadline-aware set* ``N^D_t`` — remaining candidates with
   utility ≥ ``q · v̄(N^U_t)`` — and adds them earliest-deadline-first
   while they fit (lines 11–12).
4. Back-fills any remaining capacity greedily from the rest (lines
   13–15).

Theorem 5.1: the algorithm is ``ηq/(ηq+1)``-competitive; with the paper's
``η = q = ½`` that is ⅕.  ``tests/test_theory.py`` checks the bound
against exact offline optima on random instances.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.types import Request

__all__ = ["DASScheduler", "das_row_parts"]


def das_row_parts(
    candidates: Sequence[Request],
    row_length: int,
    eta: float,
    q: float,
) -> tuple[list[Request], list[Request], list[Request]]:
    """Split sorted-by-utility candidates into (N^U, N^D, rest) for one row.

    ``candidates`` must already be sorted by utility non-increasingly.
    Exposed separately because Algorithm 2 needs the utility-dominant set
    to derive its slot size, and because the theory tests exercise it
    directly.
    """
    # Line 8: s_tk = saturating prefix size.
    s = 0
    acc = 0
    for r in candidates:
        if acc + r.length > row_length:
            break
        acc += r.length
        s += 1
    if s == 0:
        # Even the highest-utility request alone does not fit (it is
        # longer than L) — skip utility-dominant selection entirely.
        return [], [], list(candidates)

    # Line 9: p_tk = η · s_tk (at least one task so v̄ is defined).
    p = max(1, math.floor(eta * s))
    utility_dominant = list(candidates[:p])

    v_bar = sum(r.utility for r in utility_dominant) / len(utility_dominant)
    threshold = q * v_bar

    deadline_aware: list[Request] = []
    rest: list[Request] = []
    for r in candidates[p:]:
        (deadline_aware if r.utility >= threshold else rest).append(r)
    # Line 12: deadline-aware set is consumed earliest-deadline-first.
    deadline_aware.sort(key=lambda r: (r.deadline, r.request_id))
    return utility_dominant, deadline_aware, rest


class DASScheduler(Scheduler):
    """Algorithm 1.  ``record_parts=True`` keeps per-row (N^U, N^D) for
    Algorithm 2 and for the theory tests."""

    name = "das"

    def __init__(
        self,
        batch: BatchConfig,
        config: Optional[SchedulerConfig] = None,
        *,
        record_parts: bool = False,
    ):
        super().__init__(batch)
        self.config = config or SchedulerConfig()
        self.record_parts = record_parts
        self.last_parts: list[tuple[list[Request], list[Request]]] = []

    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        start = time.perf_counter()
        eta, q = self.config.eta, self.config.q
        L = self.batch.row_length
        remaining = [r for r in waiting if r.length <= L]
        rows: list[list[Request]] = []
        parts: list[tuple[list[Request], list[Request]]] = []

        for _k in range(self.batch.num_rows):
            if not remaining:
                break
            total = sum(r.length for r in remaining)
            if total <= L:
                # Lines 4–5: everything fits in this row.
                rows.append(list(remaining))
                parts.append((list(remaining), []))
                remaining = []
                break

            # Line 7: sort by utility non-increasingly (stable tie-break
            # on id for determinism).
            remaining.sort(key=lambda r: (-r.utility, r.request_id))
            n_u, n_d, rest = das_row_parts(remaining, L, eta, q)

            row: list[Request] = []
            used = 0
            chosen: set[int] = set()
            for r in n_u:
                # The utility-dominant prefix fits by construction of s_tk
                # (p ≤ s), but guard anyway.
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)
            # Lines 11–12: earliest-deadline-first from N^D.
            for r in n_d:
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)
            # Lines 13–15: back-fill from the rest (utility order).
            for r in rest:
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)

            rows.append(row)
            parts.append(
                (
                    [r for r in n_u if r.request_id in chosen],
                    [r for r in n_d if r.request_id in chosen],
                )
            )
            remaining = [r for r in remaining if r.request_id not in chosen]

        if self.record_parts:
            self.last_parts = parts
        decision = SchedulingDecision(
            rows=rows,
            # Per-decision DAS observability (repro.obs): how the
            # selection split between Algorithm 1's two mechanisms.
            info={
                "scheduler": self.name,
                "eta": eta,
                "q": q,
                "num_utility_dominant": sum(len(u) for u, _ in parts),
                "num_deadline_aware": sum(len(d) for _, d in parts),
            },
        )
        decision.runtime = time.perf_counter() - start
        return decision
