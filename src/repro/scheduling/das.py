"""DAS — the Online Deadline-Aware Scheduling algorithm (Algorithm 1).

For each batch row the algorithm:

1. If everything still waiting fits in the row, takes it all (line 4–5).
2. Otherwise sorts the candidates by utility ``v_n = 1/l_n``
   non-increasingly into ``Ñ_t`` (line 7), finds the saturating prefix
   size ``s_tk`` (line 8), and takes the first ``p_tk = η·s_tk`` as the
   *utility-dominant set* ``N^U_t`` (lines 9–10).
3. Builds the *deadline-aware set* ``N^D_t`` — remaining candidates with
   utility ≥ ``q · v̄(N^U_t)`` — and adds them earliest-deadline-first
   while they fit (lines 11–12).
4. Back-fills any remaining capacity greedily from the rest (lines
   13–15).

Theorem 5.1: the algorithm is ``ηq/(ηq+1)``-competitive; with the paper's
``η = q = ½`` that is ⅕.  ``tests/test_theory.py`` checks the bound
against exact offline optima on random instances.

Fast path (ISSUE 8, ``docs/performance.md``): the line-7 sort is a
*total* order (utility with a request-id tie-break), and removing a
row's chosen requests preserves that order — so re-sorting ``remaining``
on every row, as the original implementation did, is provably the
identity after the first row.  :meth:`DASScheduler.select` therefore
sorts **once** per decision (or reuses the queue's maintained
``by_utility`` view, skipping even that), keeps a running token total
instead of re-summing the queue per row, and finds ``N^D_t`` by binary
search (the candidates are utility-sorted, so the threshold cut is a
prefix).  The original implementations are kept verbatim as
``_reference_das_row_parts`` / ``DASScheduler._reference_select`` — the
oracles that ``tests/test_das_fastpath.py`` and the differential
equivalence harness compare against, bit for bit.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from itertools import accumulate
from operator import itemgetter
from typing import Optional, Sequence

from repro.config import BatchConfig, SchedulerConfig
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.types import Request

__all__ = ["DASScheduler", "das_row_parts"]


def _reference_das_row_parts(
    candidates: Sequence[Request],
    row_length: int,
    eta: float,
    q: float,
) -> tuple[list[Request], list[Request], list[Request]]:
    """The original O(n)-loop row split, kept as a differential oracle.

    :func:`das_row_parts` must return bit-identical output on every
    contract-satisfying input (candidates sorted by utility
    non-increasingly); ``tests/test_das_fastpath.py`` enforces it on
    adversarial and randomized inputs.
    """
    # Line 8: s_tk = saturating prefix size.
    s = 0
    acc = 0
    for r in candidates:
        if acc + r.length > row_length:
            break
        acc += r.length
        s += 1
    if s == 0:
        # Even the highest-utility request alone does not fit (it is
        # longer than L) — skip utility-dominant selection entirely.
        return [], [], list(candidates)

    # Line 9: p_tk = η · s_tk (at least one task so v̄ is defined).
    p = max(1, math.floor(eta * s))
    utility_dominant = list(candidates[:p])

    v_bar = sum(r.utility for r in utility_dominant) / len(utility_dominant)
    threshold = q * v_bar

    deadline_aware: list[Request] = []
    rest: list[Request] = []
    for r in candidates[p:]:
        (deadline_aware if r.utility >= threshold else rest).append(r)
    # Line 12: deadline-aware set is consumed earliest-deadline-first.
    deadline_aware.sort(key=lambda r: (r.deadline, r.request_id))
    return utility_dominant, deadline_aware, rest


def das_row_parts(
    candidates: Sequence[Request],
    row_length: int,
    eta: float,
    q: float,
) -> tuple[list[Request], list[Request], list[Request]]:
    """Split sorted-by-utility candidates into (N^U, N^D, rest) for one row.

    ``candidates`` must already be sorted by utility non-increasingly.
    Exposed separately because Algorithm 2 needs the utility-dominant set
    to derive its slot size, and because the theory tests exercise it
    directly.

    Fast path: the saturating prefix ``s_tk`` (line 8) comes from a
    binary search over the length prefix sums (they are strictly
    increasing, lengths being ≥ 1), and the ``N^D`` threshold split is
    a second binary search — the candidates are utility-sorted, so
    ``utility ≥ q·v̄`` holds for exactly a prefix of ``candidates[p:]``.
    Bit-identical to :func:`_reference_das_row_parts` (tested).
    """
    # Line 8: s_tk = saturating prefix size, by binary search on the
    # strictly-increasing prefix sums.
    prefix = list(accumulate(r.length for r in candidates))
    s = bisect_right(prefix, row_length)
    if s == 0:
        # Even the highest-utility request alone does not fit (it is
        # longer than L) — skip utility-dominant selection entirely.
        return [], [], list(candidates)

    # Line 9: p_tk = η · s_tk (at least one task so v̄ is defined).
    p = max(1, math.floor(eta * s))
    utility_dominant = list(candidates[:p])

    v_bar = sum(r.utility for r in utility_dominant) / len(utility_dominant)
    threshold = q * v_bar

    # u ≥ threshold  ⇔  -u ≤ -threshold, and the negated utilities are
    # non-decreasing under the sort contract — so N^D is the slice up
    # to the bisect cut (ties included, exactly like the >= loop).
    neg_utilities = [-r.utility for r in candidates]
    cut = bisect_right(neg_utilities, -threshold, p)
    # Line 12: deadline-aware set is consumed earliest-deadline-first.
    deadline_aware = sorted(
        candidates[p:cut], key=lambda r: (r.deadline, r.request_id)
    )
    rest = list(candidates[cut:])
    return utility_dominant, deadline_aware, rest


# Tuple layout of the fast path's candidate entries: sorting compares
# (-utility, request_id) — a total order, the id tie-break means later
# elements are never reached — while the row loops index lengths,
# deadlines and the request itself without attribute lookups.
_NEG_UTILITY, _RID, _LENGTH, _DEADLINE, _REQ = range(5)
_key_neg_utility = itemgetter(_NEG_UTILITY)
_key_edf = itemgetter(_DEADLINE, _RID)


class DASScheduler(Scheduler):
    """Algorithm 1.  ``record_parts=True`` keeps per-row (N^U, N^D) for
    Algorithm 2 and for the theory tests.  ``reference=True`` runs the
    original per-row-re-sort implementation (the equivalence oracle —
    slower, bit-identical output)."""

    name = "das"

    def __init__(
        self,
        batch: BatchConfig,
        config: Optional[SchedulerConfig] = None,
        *,
        record_parts: bool = False,
        reference: bool = False,
    ):
        super().__init__(batch)
        self.config = config or SchedulerConfig()
        self.record_parts = record_parts
        self.reference = reference
        self.last_parts: list[tuple[list[Request], list[Request]]] = []

    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        if self.reference:
            return self._reference_select(waiting, now)
        start = time.perf_counter()
        eta, q = self.config.eta, self.config.q
        L = self.batch.row_length
        rows: list[list[Request]] = []
        parts: list[tuple[list[Request], list[Request]]] = []

        # Row 0 sees the waiting set in arrival order (like the
        # reference, which only sorts on the first oversubscribed row).
        arrival_order = [r for r in waiting if r.length <= L]
        total = sum(r.length for r in arrival_order)
        # Utility-sorted candidates as packed tuples; built lazily at
        # the first oversubscribed row, then *reused* — removal keeps
        # the order, so the reference's later re-sorts are identities.
        # Chosen requests become tombstones in a ``dead`` set (rebuilding
        # the list per row was the dominant cost at 10k+ queued); the
        # list is compacted once tombstones outnumber the living.
        cand: Optional[list[tuple]] = None
        dead: set[int] = set()
        live = 0
        min_len = 1

        for _k in range(self.batch.num_rows):
            if cand is None:
                if not arrival_order:
                    break
                if total <= L:
                    # Lines 4–5: everything fits in this row.
                    rows.append(list(arrival_order))
                    parts.append((list(arrival_order), []))
                    arrival_order = []
                    break
                # Line 7: sort by utility non-increasingly (stable
                # tie-break on id for determinism) — once per decision.
                # A WaitingView's maintained index skips even that.
                by_util = getattr(waiting, "by_utility", None)
                if by_util is not None:
                    cand = [
                        (-r.utility, r.request_id, r.length, r.deadline, r)
                        for r in by_util
                        if r.length <= L
                    ]
                else:
                    cand = sorted(
                        (-r.utility, r.request_id, r.length, r.deadline, r)
                        for r in arrival_order
                    )
                arrival_order = []
                live = len(cand)
                min_len = min(t[_LENGTH] for t in cand)
            else:
                if live == 0:
                    break
                if total <= L:
                    # Lines 4–5 on a later row: the survivors are in
                    # utility order, exactly as the reference leaves
                    # them after its row-(k-1) sort.
                    survivors = [
                        t[_REQ] for t in cand if t[_RID] not in dead
                    ]
                    rows.append(survivors)
                    parts.append((list(survivors), []))
                    live = 0
                    break

            # Line 8: saturating prefix s_tk (early-exit scan over the
            # live entries; the prefix is at most one row's worth).
            s = 0
            acc = 0
            for t in cand:
                if t[_RID] in dead:
                    continue
                if acc + t[_LENGTH] > L:
                    break
                acc += t[_LENGTH]
                s += 1

            row: list[Request] = []
            used = 0
            chosen: set[int] = set()
            n_d: list[tuple] = []
            if s == 0:
                # Unreachable after the length<=L filter (kept for
                # parity with das_row_parts' degenerate contract): no
                # utility-dominant set, back-fill from everything.
                n_u: list[tuple] = []
                rest_start = 0
            else:
                # Line 9: p_tk = η·s_tk, at least one so v̄ is defined.
                p = max(1, math.floor(eta * s))
                n_u = []
                i_p = 0
                for i_p, t in enumerate(cand):
                    if t[_RID] in dead:
                        continue
                    n_u.append(t)
                    if len(n_u) == p:
                        break
                i_p += 1
                # Negation commutes with IEEE rounding, so summing the
                # stored -u values and negating is bit-identical to the
                # reference's sum of utilities.
                v_bar = sum(-t[_NEG_UTILITY] for t in n_u) / p
                threshold = q * v_bar
                # N^D (line 11) is a prefix of the utility-sorted tail:
                # u ≥ q·v̄ ⇔ -u ≤ -q·v̄ and -u is non-decreasing (the
                # bisect keys on values, so tombstones don't perturb it).
                cut = bisect_right(
                    cand, -threshold, i_p, len(cand), key=_key_neg_utility
                )
                # Line 12: earliest-deadline-first within N^D.
                n_d = sorted(
                    (t for t in cand[i_p:cut] if t[_RID] not in dead),
                    key=_key_edf,
                )
                rest_start = cut

                for t in n_u:
                    # The utility-dominant prefix fits by construction
                    # of s_tk (p ≤ s), but guard anyway.
                    if used + t[_LENGTH] <= L:
                        row.append(t[_REQ])
                        used += t[_LENGTH]
                        chosen.add(t[_RID])
            # Lines 11–12 consume N^D, lines 13–15 back-fill from the
            # rest; once the spare capacity is below the shortest
            # candidate nothing further can fit, so stop scanning (the
            # reference walks on, selecting nothing — same outcome).
            for t in n_d:
                if L - used < min_len:
                    break
                if used + t[_LENGTH] <= L:
                    row.append(t[_REQ])
                    used += t[_LENGTH]
                    chosen.add(t[_RID])
            if L - used >= min_len:
                for j in range(rest_start, len(cand)):
                    t = cand[j]
                    if t[_RID] in dead:
                        continue
                    if L - used < min_len:
                        break
                    if used + t[_LENGTH] <= L:
                        row.append(t[_REQ])
                        used += t[_LENGTH]
                        chosen.add(t[_RID])

            rows.append(row)
            parts.append(
                (
                    [t[_REQ] for t in n_u if t[_RID] in chosen],
                    [t[_REQ] for t in n_d if t[_RID] in chosen],
                )
            )
            dead |= chosen
            live -= len(chosen)
            total -= used
            if len(dead) * 2 > len(cand):
                cand = [t for t in cand if t[_RID] not in dead]
                dead.clear()

        if self.record_parts:
            self.last_parts = parts
        decision = SchedulingDecision(
            rows=rows,
            # Per-decision DAS observability (repro.obs): how the
            # selection split between Algorithm 1's two mechanisms.
            info={
                "scheduler": self.name,
                "eta": eta,
                "q": q,
                "num_utility_dominant": sum(len(u) for u, _ in parts),
                "num_deadline_aware": sum(len(d) for _, d in parts),
            },
        )
        decision.runtime = time.perf_counter() - start
        return decision

    def _reference_select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        """The original select — full re-sort and re-sum per row.

        Kept verbatim as the differential oracle; the fast path must
        reproduce its output (rows, parts, info) bit for bit.
        """
        start = time.perf_counter()
        eta, q = self.config.eta, self.config.q
        L = self.batch.row_length
        remaining = [r for r in waiting if r.length <= L]
        rows: list[list[Request]] = []
        parts: list[tuple[list[Request], list[Request]]] = []

        for _k in range(self.batch.num_rows):
            if not remaining:
                break
            total = sum(r.length for r in remaining)
            if total <= L:
                # Lines 4–5: everything fits in this row.
                rows.append(list(remaining))
                parts.append((list(remaining), []))
                remaining = []
                break

            # Line 7: sort by utility non-increasingly (stable tie-break
            # on id for determinism).
            remaining.sort(key=lambda r: (-r.utility, r.request_id))
            n_u, n_d, rest = _reference_das_row_parts(remaining, L, eta, q)

            row: list[Request] = []
            used = 0
            chosen: set[int] = set()
            for r in n_u:
                # The utility-dominant prefix fits by construction of s_tk
                # (p ≤ s), but guard anyway.
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)
            # Lines 11–12: earliest-deadline-first from N^D.
            for r in n_d:
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)
            # Lines 13–15: back-fill from the rest (utility order).
            for r in rest:
                if used + r.length <= L:
                    row.append(r)
                    used += r.length
                    chosen.add(r.request_id)

            rows.append(row)
            parts.append(
                (
                    [r for r in n_u if r.request_id in chosen],
                    [r for r in n_d if r.request_id in chosen],
                )
            )
            remaining = [r for r in remaining if r.request_id not in chosen]

        if self.record_parts:
            self.last_parts = parts
        decision = SchedulingDecision(
            rows=rows,
            info={
                "scheduler": self.name,
                "eta": eta,
                "q": q,
                "num_utility_dominant": sum(len(u) for u, _ in parts),
                "num_deadline_aware": sum(len(d) for _, d in parts),
            },
        )
        decision.runtime = time.perf_counter() - start
        return decision
