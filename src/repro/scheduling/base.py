"""Scheduler protocol shared by DAS and the baselines.

A scheduler is invoked at the beginning of each engine slot with the set
``N_t`` of waiting (non-expired) requests and returns a
:class:`SchedulingDecision`: an *ordered, per-row* selection of requests.
Row order matters — it is the concatenation order the engine executes —
and the decision optionally carries the slot size (Algorithm 2).

Schedulers are pure policies: they never mutate the queue.  The serving
loop removes the selected requests afterwards, which keeps schedulers
trivially testable in isolation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.types import Request

__all__ = ["SchedulingDecision", "Scheduler"]


@dataclass
class SchedulingDecision:
    """Output of one scheduler invocation.

    ``rows[k]`` is the ordered request list for batch row ``k`` (may be
    empty).  ``slot_size`` is set by slotted schedulers.  ``runtime`` is
    the wall-clock seconds the scheduler itself took — the quantity
    Fig. 16 reports relative to batch inference time.
    """

    rows: list[list[Request]] = field(default_factory=list)
    slot_size: Optional[int] = None
    runtime: float = 0.0
    # Requests selected by Algorithm 1 but discarded by Algorithm 2's
    # slot-size limit (longer than the chosen slot).
    discarded: list[Request] = field(default_factory=list)
    # Scheduler self-description for observability (repro.obs): DAS
    # reports its utility-dominant / deadline-aware set sizes and η/q
    # here; traced serving loops attach it to the decision event.
    info: dict = field(default_factory=dict)

    def selected(self) -> list[Request]:
        """All selected requests in row-major (= concatenation) order."""
        return [r for row in self.rows for r in row]

    @property
    def num_selected(self) -> int:
        return sum(len(row) for row in self.rows)

    def validate(self, batch: BatchConfig) -> None:
        """Check Eq. 10 (no duplicates) and Eq. 11 (row budgets)."""
        if len(self.rows) > batch.num_rows:
            raise ValueError(
                f"{len(self.rows)} rows selected for a {batch.num_rows}-row batch"
            )
        seen: set[int] = set()
        for row in self.rows:
            total = sum(r.length for r in row)
            if total > batch.row_length:
                raise ValueError(
                    f"row holds {total} tokens > L={batch.row_length}"
                )
            for r in row:
                if r.request_id in seen:
                    raise ValueError(f"request {r.request_id} selected twice")
                seen.add(r.request_id)


class Scheduler(abc.ABC):
    """Base class for scheduling policies."""

    name: str = "base"

    def __init__(self, batch: BatchConfig):
        self.batch = batch

    @abc.abstractmethod
    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        """Pick requests for the engine slot starting at ``now``.

        ``waiting`` contains only requests available at ``now``
        (arrived, not expired, not yet served) — the serving loop
        guarantees this precondition.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(B={self.batch.num_rows}, "
            f"L={self.batch.row_length})"
        )
