"""The serving system's wait queue with deadline expiry.

Holds requests that have arrived but not been scheduled.  ``waiting(t)``
returns ``N_t`` exactly as §5.2 defines it: arrived, unexpired,
unscheduled.  Expired requests are recorded (they count as utility-zero
failures in the metrics).

Fault recovery adds two more terminal ledgers beyond ``expired``:
``abandoned`` (given up by the retry policy after a failed batch) and
per-request ``attempts`` counts that bound how often a request may be
requeued.  Every request ends in exactly one ledger — served, expired,
or abandoned — which is what the serving loops' conservation invariant
checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overload.backpressure import QueueLimits, QueuePressure

__all__ = ["RequestQueue"]


class RequestQueue:
    """FIFO-arrival queue with deadline-based expiry."""

    def __init__(self) -> None:
        self._waiting: dict[int, Request] = {}
        self.expired: list[Request] = []
        self.abandoned: list[Request] = []
        self.served_ids: set[int] = set()
        # request_id -> number of failed serve attempts (retry budget).
        self.attempts: dict[int, int] = {}
        # Incremental sum of waiting request lengths; kept in lockstep
        # with _waiting so pressure() is O(1) per scheduling step.
        self._queued_tokens = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def __contains__(self, request_id: int) -> bool:
        """Whether *request_id* is currently waiting (O(1))."""
        return request_id in self._waiting

    def waiting_ids(self) -> list[int]:
        """All queued request ids in insertion (arrival) order.

        Unlike :meth:`waiting` this does not filter by time — it is the
        raw queue content, used by the durability plane to fingerprint
        and rebuild queue state without reaching into ``_waiting``.
        """
        return list(self._waiting)

    @property
    def queued_tokens(self) -> int:
        """Total prompt tokens currently waiting."""
        return self._queued_tokens

    def add(self, request: Request) -> None:
        if request.request_id in self._waiting or request.request_id in self.served_ids:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._waiting[request.request_id] = request
        self._queued_tokens += request.length

    def extend(self, requests: Iterable[Request]) -> None:
        for r in requests:
            self.add(r)

    def expire(self, now: float) -> list[Request]:
        """Drop requests whose deadline has passed; returns the casualties.

        A request whose deadline is exactly ``now`` is still schedulable
        (Eq. 12's interval is closed).
        """
        dead = [r for r in self._waiting.values() if r.deadline < now]
        for r in dead:
            del self._waiting[r.request_id]
            self._queued_tokens -= r.length
        self.expired.extend(dead)
        return dead

    def waiting(self, now: float) -> list[Request]:
        """``N_t``: available requests at time ``now`` (arrival order)."""
        return [
            r
            for r in self._waiting.values()
            if r.arrival <= now <= r.deadline
        ]

    def drop(self, requests: Sequence[Request]) -> None:
        """Remove requests as *failures* (recorded in ``expired``)."""
        for r in requests:
            if r.request_id in self._waiting:
                del self._waiting[r.request_id]
                self._queued_tokens -= r.length
                self.expired.append(r)

    def take(self, requests: Sequence[Request]) -> list[Request]:
        """Remove requests from the wait queue *without* a ledger entry.

        The caller owns terminal accounting — which is exactly why bare
        call sites are banned (tcblint TCB008): only the overload
        ledger's :func:`~repro.overload.ledger.shed_requests` may call
        this, and it immediately records every taken request as a
        ``rejected``-class terminal.  Requests no longer waiting are
        skipped; returns the requests actually removed.
        """
        taken: list[Request] = []
        for r in requests:
            if r.request_id in self._waiting:
                del self._waiting[r.request_id]
                self._queued_tokens -= r.length
                taken.append(r)
        return taken

    def remove_served(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if r.request_id not in self._waiting:
                raise KeyError(f"request {r.request_id} not in queue")
            del self._waiting[r.request_id]
            self._queued_tokens -= r.length
            self.served_ids.add(r.request_id)

    # ------------------------------------------------------------------ #
    # Fault-recovery bookkeeping
    # ------------------------------------------------------------------ #

    def note_attempt(self, requests: Sequence[Request]) -> None:
        """Record one failed serve attempt per request (retry budget)."""
        for r in requests:
            self.attempts[r.request_id] = self.attempts.get(r.request_id, 0) + 1

    def abandon(self, requests: Sequence[Request]) -> None:
        """Give up on requests (retry budget / slack exhausted).

        Unlike :meth:`drop`, abandoned requests are kept in their own
        ledger so metrics can distinguish fault casualties from plain
        deadline expiry.
        """
        for r in requests:
            if self._waiting.pop(r.request_id, None) is not None:
                self._queued_tokens -= r.length
            self.abandoned.append(r)

    def requeue(self, requests: Sequence[Request]) -> None:
        """Return previously dispatched requests to the wait queue.

        Used by iteration-level serving when a crash or OOM evicts
        resident requests that had already been removed via
        :meth:`remove_served`; batch-level loops never need this because
        failed requests only leave the queue on success.
        """
        for r in requests:
            self.served_ids.discard(r.request_id)
            if r.request_id not in self._waiting:
                self._waiting[r.request_id] = r
                self._queued_tokens += r.length

    # ------------------------------------------------------------------ #
    # Overload signals
    # ------------------------------------------------------------------ #

    def pressure(self, limits: "QueueLimits") -> "QueuePressure":
        """Current occupancy lowered against *limits* (typed backpressure)."""
        from repro.overload.backpressure import QueuePressure

        return QueuePressure(
            queued_requests=len(self._waiting),
            queued_tokens=self._queued_tokens,
            limits=limits,
        )

    def queue_delay(self, now: float) -> float:
        """Age of the oldest waiting request (0.0 when empty).

        The degradation controller's primary signal: under sustained
        overload head-of-line age grows without bound long before
        utilisation metrics look alarming.
        """
        if not self._waiting:
            return 0.0
        oldest = min(r.arrival for r in self._waiting.values())
        return max(0.0, now - oldest)
