"""The serving system's wait queue with deadline expiry.

Holds requests that have arrived but not been scheduled.  ``waiting(t)``
returns ``N_t`` exactly as §5.2 defines it: arrived, unexpired,
unscheduled.  Expired requests are recorded (they count as utility-zero
failures in the metrics).

Fault recovery adds two more terminal ledgers beyond ``expired``:
``abandoned`` (given up by the retry policy after a failed batch) and
per-request ``attempts`` counts that bound how often a request may be
requeued.  Every request ends in exactly one ledger — served, expired,
or abandoned — which is what the serving loops' conservation invariant
checks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.types import Request

__all__ = ["RequestQueue"]


class RequestQueue:
    """FIFO-arrival queue with deadline-based expiry."""

    def __init__(self) -> None:
        self._waiting: dict[int, Request] = {}
        self.expired: list[Request] = []
        self.abandoned: list[Request] = []
        self.served_ids: set[int] = set()
        # request_id -> number of failed serve attempts (retry budget).
        self.attempts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._waiting)

    def add(self, request: Request) -> None:
        if request.request_id in self._waiting or request.request_id in self.served_ids:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._waiting[request.request_id] = request

    def extend(self, requests: Iterable[Request]) -> None:
        for r in requests:
            self.add(r)

    def expire(self, now: float) -> list[Request]:
        """Drop requests whose deadline has passed; returns the casualties.

        A request whose deadline is exactly ``now`` is still schedulable
        (Eq. 12's interval is closed).
        """
        dead = [r for r in self._waiting.values() if r.deadline < now]
        for r in dead:
            del self._waiting[r.request_id]
        self.expired.extend(dead)
        return dead

    def waiting(self, now: float) -> list[Request]:
        """``N_t``: available requests at time ``now`` (arrival order)."""
        return [
            r
            for r in self._waiting.values()
            if r.arrival <= now <= r.deadline
        ]

    def drop(self, requests: Sequence[Request]) -> None:
        """Remove requests as *failures* (recorded in ``expired``)."""
        for r in requests:
            if r.request_id in self._waiting:
                del self._waiting[r.request_id]
                self.expired.append(r)

    def remove_served(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if r.request_id not in self._waiting:
                raise KeyError(f"request {r.request_id} not in queue")
            del self._waiting[r.request_id]
            self.served_ids.add(r.request_id)

    # ------------------------------------------------------------------ #
    # Fault-recovery bookkeeping
    # ------------------------------------------------------------------ #

    def note_attempt(self, requests: Sequence[Request]) -> None:
        """Record one failed serve attempt per request (retry budget)."""
        for r in requests:
            self.attempts[r.request_id] = self.attempts.get(r.request_id, 0) + 1

    def abandon(self, requests: Sequence[Request]) -> None:
        """Give up on requests (retry budget / slack exhausted).

        Unlike :meth:`drop`, abandoned requests are kept in their own
        ledger so metrics can distinguish fault casualties from plain
        deadline expiry.
        """
        for r in requests:
            self._waiting.pop(r.request_id, None)
            self.abandoned.append(r)

    def requeue(self, requests: Sequence[Request]) -> None:
        """Return previously dispatched requests to the wait queue.

        Used by iteration-level serving when a crash or OOM evicts
        resident requests that had already been removed via
        :meth:`remove_served`; batch-level loops never need this because
        failed requests only leave the queue on success.
        """
        for r in requests:
            self.served_ids.discard(r.request_id)
            if r.request_id not in self._waiting:
                self._waiting[r.request_id] = r
