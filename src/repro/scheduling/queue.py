"""The serving system's wait queue with deadline expiry.

Holds requests that have arrived but not been scheduled.  ``waiting(t)``
returns ``N_t`` exactly as §5.2 defines it: arrived, unexpired,
unscheduled.  Expired requests are recorded (they count as utility-zero
failures in the metrics).

Fault recovery adds two more terminal ledgers beyond ``expired``:
``abandoned`` (given up by the retry policy after a failed batch) and
per-request ``attempts`` counts that bound how often a request may be
requeued.  Every request ends in exactly one ledger — served, expired,
or abandoned — which is what the serving loops' conservation invariant
checks.

Fast path (ISSUE 8, ``docs/performance.md``): the queue is *indexed*.
A deadline min-heap with lazy deletion makes :meth:`expire` ``O(k log
n)`` for ``k`` casualties instead of a full ``O(n)`` scan per step; an
arrival min-heap makes :meth:`queue_delay` ``O(1)`` amortised; and
maintained sorted views (by utility for DAS, by arrival for
iteration-level admission) let schedulers stop re-sorting the waiting
set from scratch on every decision.  All of it sits *behind* the
pre-existing public API, and every observable output — contents,
ordering, ledgers, token counts — is bit-identical to the reference
implementation kept below as :class:`_ReferenceRequestQueue` (the
differential oracle of ``tests/test_fastpath_equivalence.py`` and the
property fuzz suite in ``tests/test_queue_fuzz.py``).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.types import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overload.backpressure import QueueLimits, QueuePressure

__all__ = ["RequestQueue", "WaitingView"]


class WaitingView(list):
    """``N_t`` as a list (arrival/insertion order) plus sorted views.

    Plain ``list`` everywhere a list is expected; additionally exposes
    ``by_utility`` (sorted by ``(-utility, request_id)``, DAS's line-7
    order) and ``by_arrival`` (sorted by ``(arrival, request_id)``,
    iteration-level FCFS admission order) without re-sorting when the
    queue's maintained indexes are fresh.

    The sorted views are only valid until the queue next mutates; the
    view detects staleness via the queue's mutation counter and falls
    back to an explicit sort, so a held-too-long view degrades to the
    reference behaviour instead of returning stale order.
    """

    __slots__ = ("_queue", "_now", "_stamp")

    def __init__(self, items, queue: Optional["RequestQueue"], now: float):
        super().__init__(items)
        self._queue = queue
        self._now = now
        self._stamp = queue._mutations if queue is not None else -1

    @property
    def by_utility(self) -> list[Request]:
        """Contents sorted by ``(-utility, request_id)`` (unique order)."""
        q = self._queue
        if q is not None and q._mutations == self._stamp:
            return q._utility_sorted(self._now)
        return sorted(self, key=lambda r: (-r.utility, r.request_id))

    @property
    def by_arrival(self) -> list[Request]:
        """Contents sorted by ``(arrival, request_id)`` (unique order)."""
        q = self._queue
        if q is not None and q._mutations == self._stamp:
            return q._arrival_sorted(self._now)
        return sorted(self, key=lambda r: (r.arrival, r.request_id))


class _SortedIndex:
    """A maintained sorted list of ``(key, request_id, seq)`` entries.

    Removal is *lazy*: an entry is live iff the queue's incarnation map
    still carries its ``(request_id, seq)`` pair, so deletes cost
    nothing here and stale entries are skipped (and periodically
    compacted) at read time.  Activation is lazy too — until the first
    query the index is not maintained at all, so runs that never sort
    by this key pay nothing per operation.
    """

    __slots__ = ("entries", "active")

    def __init__(self) -> None:
        self.entries: list[tuple] = []
        self.active = False

    def insert(self, key: tuple, rid: int, seq: int) -> None:
        if self.active:
            insort(self.entries, (key, rid, seq))

    def activate(self, items: Iterable[tuple[tuple, int, int]]) -> None:
        self.entries = sorted((key, rid, seq) for key, rid, seq in items)
        self.active = True

    def live(self, order: dict[int, int]) -> Iterable[tuple]:
        return (e for e in self.entries if order.get(e[1]) == e[2])

    def compact(self, order: dict[int, int]) -> None:
        if len(self.entries) > 2 * len(order) + 64:
            self.entries = [e for e in self.entries if order.get(e[1]) == e[2]]


class RequestQueue:
    """FIFO-arrival queue with deadline-based expiry (indexed fast path)."""

    def __init__(self) -> None:
        self._waiting: dict[int, Request] = {}
        self.expired: list[Request] = []
        self.abandoned: list[Request] = []
        self.served_ids: set[int] = set()
        # request_id -> number of failed serve attempts (retry budget).
        self.attempts: dict[int, int] = {}
        # Incremental sum of waiting request lengths; kept in lockstep
        # with _waiting so pressure() is O(1) per scheduling step.
        self._queued_tokens = 0
        # ---- fast-path indexes (never observable through the API) ----
        # Monotone insertion counter; _order maps each *currently
        # waiting* request id to the seq of its live incarnation, which
        # is what makes lazy deletion sound: an index entry is live iff
        # its (rid, seq) pair is still in _order, so a request that was
        # removed and later requeued can never resurrect stale entries.
        self._seq = 0
        self._order: dict[int, int] = {}
        # (deadline, request_id) min-heap with lazy deletion → expire()
        # pops casualties in O(log n) each instead of scanning the dict.
        self._deadline_heap: list[tuple[float, int]] = []
        # (arrival, request_id) min-heap with lazy deletion → O(1)
        # amortised head-of-line age for the overload controller.
        self._arrival_heap: list[tuple[float, int]] = []
        # Maintained sorted views (lazily activated on first use).
        self._by_utility = _SortedIndex()
        self._by_arrival = _SortedIndex()
        # Bumped on every mutation; WaitingView uses it to detect
        # staleness of its cached sorted views.
        self._mutations = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def __contains__(self, request_id: int) -> bool:
        """Whether *request_id* is currently waiting (O(1))."""
        return request_id in self._waiting

    def waiting_ids(self) -> list[int]:
        """All queued request ids in insertion (arrival) order.

        Unlike :meth:`waiting` this does not filter by time — it is the
        raw queue content, used by the durability plane to fingerprint
        and rebuild queue state without reaching into ``_waiting``.
        """
        return list(self._waiting)

    @property
    def queued_tokens(self) -> int:
        """Total prompt tokens currently waiting."""
        return self._queued_tokens

    # ------------------------------------------------------------------ #
    # Internal index bookkeeping
    # ------------------------------------------------------------------ #

    def _index(self, request: Request) -> None:
        """Register one inserted request with every index."""
        seq = self._seq
        self._seq = seq + 1
        rid = request.request_id
        self._order[rid] = seq
        heapq.heappush(self._deadline_heap, (request.deadline, rid))
        heapq.heappush(self._arrival_heap, (request.arrival, rid))
        self._by_utility.insert((-request.utility, rid), rid, seq)
        self._by_arrival.insert((request.arrival, rid), rid, seq)
        self._mutations += 1

    def _forget(self, request: Request) -> None:
        """Remove one request from ``_waiting`` and the incarnation map.

        Heap/index entries are *not* touched — they die lazily when a
        read encounters them with a missing or mismatched seq.
        """
        del self._waiting[request.request_id]
        self._order.pop(request.request_id, None)
        self._queued_tokens -= request.length
        self._mutations += 1

    def _utility_sorted(self, now: float) -> list[Request]:
        """Available requests by ``(-utility, request_id)`` (maintained)."""
        idx = self._by_utility
        if not idx.active:
            idx.activate(
                ((-r.utility, rid), rid, self._order[rid])
                for rid, r in self._waiting.items()
            )
        idx.compact(self._order)
        waiting = self._waiting
        return [
            r
            for (_key, rid, _seq) in idx.live(self._order)
            if (r := waiting[rid]).arrival <= now <= r.deadline
        ]

    def _arrival_sorted(self, now: float) -> list[Request]:
        """Available requests by ``(arrival, request_id)`` (maintained)."""
        idx = self._by_arrival
        if not idx.active:
            idx.activate(
                ((r.arrival, rid), rid, self._order[rid])
                for rid, r in self._waiting.items()
            )
        idx.compact(self._order)
        waiting = self._waiting
        return [
            r
            for (_key, rid, _seq) in idx.live(self._order)
            if (r := waiting[rid]).arrival <= now <= r.deadline
        ]

    def _maybe_compact_heaps(self) -> None:
        """Bound lazy-deletion debris under heavy requeue churn."""
        live = len(self._waiting)
        if len(self._deadline_heap) > 4 * live + 64:
            self._deadline_heap = [
                (r.deadline, rid) for rid, r in self._waiting.items()
            ]
            heapq.heapify(self._deadline_heap)
        if len(self._arrival_heap) > 4 * live + 64:
            self._arrival_heap = [
                (r.arrival, rid) for rid, r in self._waiting.items()
            ]
            heapq.heapify(self._arrival_heap)

    # ------------------------------------------------------------------ #
    # Public API (identical observable behaviour to the reference)
    # ------------------------------------------------------------------ #

    def add(self, request: Request) -> None:
        if request.request_id in self._waiting or request.request_id in self.served_ids:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._waiting[request.request_id] = request
        self._queued_tokens += request.length
        self._index(request)

    def extend(self, requests: Iterable[Request]) -> None:
        for r in requests:
            self.add(r)

    def expire(self, now: float) -> list[Request]:
        """Drop requests whose deadline has passed; returns the casualties.

        A request whose deadline is exactly ``now`` is still schedulable
        (Eq. 12's interval is closed).  Casualties come off the deadline
        min-heap — O(log n) each plus any lazily-deleted debris — and
        are returned in insertion order, exactly as the reference
        full-scan produced them.
        """
        heap = self._deadline_heap
        waiting = self._waiting
        dead: list[tuple[int, Request]] = []
        while heap and heap[0][0] < now:
            deadline, rid = heapq.heappop(heap)
            r = waiting.get(rid)
            if r is None or r.deadline != deadline:
                continue  # lazily-deleted debris from an earlier removal
            dead.append((self._order[rid], r))
            self._forget(r)
        # The dict iterates in insertion order, so the reference scan
        # reported casualties in insertion order; sort by seq to match.
        dead.sort()
        casualties = [r for _seq, r in dead]
        self.expired.extend(casualties)
        self._maybe_compact_heaps()
        return casualties

    def waiting(self, now: float) -> "WaitingView":
        """``N_t``: available requests at time ``now`` (arrival order).

        The result is a plain list (insertion order, as before) that
        additionally carries maintained ``by_utility`` / ``by_arrival``
        sorted views for schedulers (see :class:`WaitingView`).
        """
        return WaitingView(
            (
                r
                for r in self._waiting.values()
                if r.arrival <= now <= r.deadline
            ),
            self,
            now,
        )

    def drop(self, requests: Sequence[Request]) -> None:
        """Remove requests as *failures* (recorded in ``expired``)."""
        for r in requests:
            if r.request_id in self._waiting:
                self._forget(r)
                self.expired.append(r)

    def take(self, requests: Sequence[Request]) -> list[Request]:
        """Remove requests from the wait queue *without* a ledger entry.

        The caller owns terminal accounting — which is exactly why bare
        call sites are banned (tcblint TCB008): only the overload
        ledger's :func:`~repro.overload.ledger.shed_requests` may call
        this, and it immediately records every taken request as a
        ``rejected``-class terminal.  Requests no longer waiting are
        skipped; returns the requests actually removed.
        """
        taken: list[Request] = []
        for r in requests:
            if r.request_id in self._waiting:
                self._forget(r)
                taken.append(r)
        return taken

    def remove_served(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if r.request_id not in self._waiting:
                raise KeyError(f"request {r.request_id} not in queue")
            self._forget(r)
            self.served_ids.add(r.request_id)

    # ------------------------------------------------------------------ #
    # Fault-recovery bookkeeping
    # ------------------------------------------------------------------ #

    def note_attempt(self, requests: Sequence[Request]) -> None:
        """Record one failed serve attempt per request (retry budget)."""
        for r in requests:
            self.attempts[r.request_id] = self.attempts.get(r.request_id, 0) + 1

    def abandon(self, requests: Sequence[Request]) -> None:
        """Give up on requests (retry budget / slack exhausted).

        Unlike :meth:`drop`, abandoned requests are kept in their own
        ledger so metrics can distinguish fault casualties from plain
        deadline expiry.
        """
        for r in requests:
            if r.request_id in self._waiting:
                self._forget(r)
            self.abandoned.append(r)

    def requeue(self, requests: Sequence[Request]) -> None:
        """Return previously dispatched requests to the wait queue.

        Used by iteration-level serving when a crash or OOM evicts
        resident requests that had already been removed via
        :meth:`remove_served`; batch-level loops never need this because
        failed requests only leave the queue on success.
        """
        for r in requests:
            self.served_ids.discard(r.request_id)
            if r.request_id not in self._waiting:
                self._waiting[r.request_id] = r
                self._queued_tokens += r.length
                self._index(r)

    # ------------------------------------------------------------------ #
    # Overload signals
    # ------------------------------------------------------------------ #

    def pressure(self, limits: "QueueLimits") -> "QueuePressure":
        """Current occupancy lowered against *limits* (typed backpressure)."""
        from repro.overload.backpressure import QueuePressure

        return QueuePressure(
            queued_requests=len(self._waiting),
            queued_tokens=self._queued_tokens,
            limits=limits,
        )

    def queue_delay(self, now: float) -> float:
        """Age of the oldest waiting request (0.0 when empty).

        The degradation controller's primary signal: under sustained
        overload head-of-line age grows without bound long before
        utilisation metrics look alarming.  Served by the arrival
        min-heap: lazily-deleted entries are discarded until the top is
        a live request, so a request that left the queue can never
        resurrect head-of-line age (staleness-tested in
        ``tests/test_queue_fuzz.py``).
        """
        heap = self._arrival_heap
        waiting = self._waiting
        while heap:
            arrival, rid = heap[0]
            r = waiting.get(rid)
            if r is None or r.arrival != arrival:
                heapq.heappop(heap)  # debris from a lazy deletion
                continue
            return max(0.0, now - arrival)
        return 0.0


class _ReferenceRequestQueue(RequestQueue):
    """The pre-ISSUE-8 O(n)-scan queue, kept verbatim as a test oracle.

    Overrides every index-accelerated method with the original
    full-scan implementation (the indexes stay inert).  The fast path
    must be bit-identical to this class on every observable output —
    the differential equivalence harness and the property fuzz suite
    enforce it.  Not part of the public API; never use it in serving
    code.
    """

    def add(self, request: Request) -> None:
        if request.request_id in self._waiting or request.request_id in self.served_ids:
            raise ValueError(f"duplicate request id {request.request_id}")
        self._waiting[request.request_id] = request
        self._queued_tokens += request.length

    def expire(self, now: float) -> list[Request]:
        dead = [r for r in self._waiting.values() if r.deadline < now]
        for r in dead:
            del self._waiting[r.request_id]
            self._queued_tokens -= r.length
        self.expired.extend(dead)
        return dead

    def waiting(self, now: float) -> list[Request]:  # type: ignore[override]
        return [
            r
            for r in self._waiting.values()
            if r.arrival <= now <= r.deadline
        ]

    def drop(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if r.request_id in self._waiting:
                del self._waiting[r.request_id]
                self._queued_tokens -= r.length
                self.expired.append(r)

    def take(self, requests: Sequence[Request]) -> list[Request]:
        taken: list[Request] = []
        for r in requests:
            if r.request_id in self._waiting:
                del self._waiting[r.request_id]
                self._queued_tokens -= r.length
                taken.append(r)
        return taken

    def remove_served(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if r.request_id not in self._waiting:
                raise KeyError(f"request {r.request_id} not in queue")
            del self._waiting[r.request_id]
            self._queued_tokens -= r.length
            self.served_ids.add(r.request_id)

    def abandon(self, requests: Sequence[Request]) -> None:
        for r in requests:
            if self._waiting.pop(r.request_id, None) is not None:
                self._queued_tokens -= r.length
            self.abandoned.append(r)

    def requeue(self, requests: Sequence[Request]) -> None:
        for r in requests:
            self.served_ids.discard(r.request_id)
            if r.request_id not in self._waiting:
                self._waiting[r.request_id] = r
                self._queued_tokens += r.length

    def queue_delay(self, now: float) -> float:
        if not self._waiting:
            return 0.0
        oldest = min(r.arrival for r in self._waiting.values())
        return max(0.0, now - oldest)
