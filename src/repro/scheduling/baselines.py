"""Baseline scheduling policies: FCFS, SJF and DEF (paper §6.2.4).

Each baseline orders the waiting set by its criterion; what it then
selects depends on ``concat_aware``:

- ``concat_aware=True`` — fill the full ``B × L`` batch greedily in that
  order (first row with space).  This gives the baseline the same
  *capacity* semantics as DAS and is what Figs. 11–12 use, where FCFS is
  merely a neutral ordering for comparing inference engines.
- ``concat_aware=False`` (classic semantics) — pick the first ``B``
  requests, one per row.  Off-the-shelf schedulers predate request
  concatenation and think in whole batch rows; being "aware of
  ConcatBatching" is exactly DAS's contribution (§1, §5), and Fig. 15's
  DAS-vs-baseline comparison uses this mode.

``GreedyOrderScheduler`` is the shared implementation; the three named
classes just plug in their sort keys.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.config import BatchConfig
from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.types import Request

__all__ = [
    "GreedyOrderScheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "DEFScheduler",
]


class GreedyOrderScheduler(Scheduler):
    """Order by ``key``, then first-fit into ``B`` rows of ``L`` tokens."""

    name = "greedy"

    def __init__(
        self,
        batch: BatchConfig,
        key: Callable[[Request], tuple],
        *,
        concat_aware: bool = True,
    ):
        super().__init__(batch)
        self._key = key
        self.concat_aware = concat_aware

    def select(
        self, waiting: Sequence[Request], now: float = 0.0
    ) -> SchedulingDecision:
        start = time.perf_counter()
        L = self.batch.row_length
        ordered = sorted(
            (r for r in waiting if r.length <= L), key=self._key
        )
        if self.concat_aware:
            rows: list[list[Request]] = [[] for _ in range(self.batch.num_rows)]
            free = [L] * self.batch.num_rows
            for req in ordered:
                for k in range(self.batch.num_rows):
                    if req.length <= free[k]:
                        rows[k].append(req)
                        free[k] -= req.length
                        break
        else:
            # Classic one-request-per-row batching.
            rows = [[r] for r in ordered[: self.batch.num_rows]]
        decision = SchedulingDecision(rows=[row for row in rows if row])
        decision.runtime = time.perf_counter() - start
        return decision


class FCFSScheduler(GreedyOrderScheduler):
    """First-come-first-served: earliest arrival first."""

    name = "fcfs"

    def __init__(self, batch: BatchConfig, *, concat_aware: bool = True):
        super().__init__(
            batch,
            key=lambda r: (r.arrival, r.request_id),
            concat_aware=concat_aware,
        )


class SJFScheduler(GreedyOrderScheduler):
    """Shortest-job-first: shortest sentence first."""

    name = "sjf"

    def __init__(self, batch: BatchConfig, *, concat_aware: bool = True):
        super().__init__(
            batch,
            key=lambda r: (r.length, r.request_id),
            concat_aware=concat_aware,
        )


class DEFScheduler(GreedyOrderScheduler):
    """Deadline-early-first: earliest deadline first."""

    name = "def"

    def __init__(self, batch: BatchConfig, *, concat_aware: bool = True):
        super().__init__(
            batch,
            key=lambda r: (r.deadline, r.request_id),
            concat_aware=concat_aware,
        )
