"""Online request scheduling (paper §5).

- :mod:`repro.scheduling.das` — Algorithm 1, the Deadline-Aware
  Scheduling algorithm with the ``ηq/(ηq+1)`` competitive ratio,
- :mod:`repro.scheduling.slotted_das` — Algorithm 2 for slotted
  ConcatBatching,
- :mod:`repro.scheduling.baselines` — FCFS, SJF and DEF (§6.2.4),
- :mod:`repro.scheduling.queue` — the deadline-expiring wait queue,
- :mod:`repro.scheduling.offline` — exact and LP offline optima used to
  check Theorem 5.1 empirically.
"""

from repro.scheduling.base import Scheduler, SchedulingDecision
from repro.scheduling.queue import RequestQueue
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.scheduling.baselines import (
    DEFScheduler,
    FCFSScheduler,
    GreedyOrderScheduler,
    SJFScheduler,
)
from repro.scheduling.offline import exact_opt, lp_upper_bound

__all__ = [
    "Scheduler",
    "SchedulingDecision",
    "RequestQueue",
    "DASScheduler",
    "SlottedDASScheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "DEFScheduler",
    "GreedyOrderScheduler",
    "exact_opt",
    "lp_upper_bound",
]
