"""Package-wide call graph for the interprocedural tcblint rules.

Built once per lint run from every parsed module, it resolves
``repro.*`` calls through import aliases, ``self.``-method dispatch,
annotated receivers (``engine: InferenceEngine``) and constructor-typed
locals (``q = RequestQueue()``).  When a receiver's type is unknown, a
method call falls back to *name-based virtual dispatch*: edges to every
known class method of that name.  Resolved base classes also dispatch to
subclass overrides (``engine.serve`` on an ``InferenceEngine`` receiver
reaches ``FaultyEngine.serve``).  Both fallbacks deliberately
over-approximate — for the rules built on top (TCB012's "some caller
must handle this fault"), extra edges can only *suppress* findings,
never invent them, which is the safe direction.

The graph also records, per function, every typed ``raise`` and every
``except`` handler (with whether the bound exception is actually used),
plus the class hierarchy needed to match a handler's caught type against
a raised subtype.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.statics.rules import ModuleContext

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "HandlerInfo",
    "RaiseSite",
    "build_call_graph",
    "module_name",
]

# Builtin exception names usable as catch-all supertypes in handler
# matching; anything raised in-package is a subclass of one of these.
_BUILTIN_EXC = frozenset({"Exception", "BaseException", "RuntimeError"})


def module_name(path: str) -> str:
    """``repro/faults/plan.py`` → ``repro.faults.plan``."""
    p = path[:-3] if path.endswith(".py") else path
    parts = [x for x in p.replace("\\", "/").split("/") if x]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    qualname: str  # repro.faults.recovery.serve_slot, repro...FaultyEngine.serve
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname for methods

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  # resolved where possible
    methods: dict[str, str] = field(default_factory=dict)  # name -> func qualname
    attr_types: dict[str, str] = field(default_factory=dict)  # self.x -> class


@dataclass
class HandlerInfo:
    func: str  # enclosing function qualname
    path: str
    lineno: int
    col: int
    types: tuple[str, ...]  # resolved caught-exception names
    bound: Optional[str]  # `as name`, if any
    uses_bound: bool  # the bound name is read in the handler body
    reraises: bool  # the handler body contains a `raise`


@dataclass
class RaiseSite:
    func: str
    path: str
    lineno: int
    col: int
    exc: str  # resolved exception qualname (or bare name)


def _own_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(n))


def _dotted(node: ast.AST) -> Optional[tuple[str, list[str]]]:
    """Split a Name/Attribute chain into (root, [attrs]); None otherwise."""
    attrs: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        attrs.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    return cur.id, list(reversed(attrs))


class CallGraph:
    """The package-wide call/raise/handle graph."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self.raises: list[RaiseSite] = []
        self.handlers: dict[str, list[HandlerInfo]] = {}
        # method name -> every function qualname implementing it.
        self.methods_by_name: dict[str, set[str]] = {}
        # class qualname -> direct subclasses.
        self.subclasses: dict[str, set[str]] = {}

    # -- construction --------------------------------------------------- #

    def add_call(self, caller: str, callee: str) -> None:
        self.calls.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)

    # -- hierarchy ------------------------------------------------------ #

    def mro_methods(self, cls: str, name: str) -> list[str]:
        """Implementations of *name* on *cls* or its resolved ancestors."""
        out: list[str] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen or c not in self.classes:
                continue
            seen.add(c)
            info = self.classes[c]
            if name in info.methods:
                out.append(info.methods[name])
            stack.extend(info.bases)
        return out

    def overrides(self, cls: str, name: str) -> list[str]:
        """Implementations of *name* in transitive subclasses of *cls*."""
        out: list[str] = []
        seen: set[str] = set()
        stack = list(self.subclasses.get(cls, ()))
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            info = self.classes.get(c)
            if info and name in info.methods:
                out.append(info.methods[name])
            stack.extend(self.subclasses.get(c, ()))
        return out

    def is_subtype(self, sub: str, base: str) -> bool:
        """Does *sub* name the same class as *base* or a subclass of it?

        Matching is by resolved qualname, with bare builtin supertypes
        (``Exception``/``BaseException``/``RuntimeError``) accepted as
        universal bases.
        """
        if sub == base:
            return True
        if base.rsplit(".", 1)[-1] in _BUILTIN_EXC:
            return True
        seen: set[str] = set()
        stack = [sub]
        while stack:
            c = stack.pop()
            if c == base:
                return True
            if c in seen:
                continue
            seen.add(c)
            stack.extend(self.classes[c].bases if c in self.classes else ())
        return False

    # -- queries -------------------------------------------------------- #

    def transitive_callers(self, qualname: str) -> set[str]:
        """Every function that can (transitively) reach *qualname*."""
        out: set[str] = set()
        stack = [qualname]
        while stack:
            cur = stack.pop()
            for caller in self.callers.get(cur, ()):
                if caller not in out:
                    out.add(caller)
                    stack.append(caller)
        return out


# ---------------------------------------------------------------------- #
# Builder
# ---------------------------------------------------------------------- #


class _ModuleScan:
    """Per-module raw facts gathered in pass 1 (names not yet resolved)."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.module = module_name(ctx.path)
        self.imports = self._import_map(ctx.tree, self.module)
        # local top-level name -> qualname (own defs shadow imports).
        self.local: dict[str, str] = {}

    @staticmethod
    def _import_map(tree: ast.AST, module: str) -> dict[str, str]:
        imp: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        imp[a.asname] = a.name
                    else:
                        root = a.name.split(".", 1)[0]
                        imp[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parent = module.split(".")
                    parent = parent[: max(0, len(parent) - node.level)]
                    base = ".".join(parent + ([node.module] if node.module else []))
                for a in node.names:
                    if a.name == "*":
                        continue
                    imp[a.asname or a.name] = (
                        f"{base}.{a.name}" if base else a.name
                    )
        return imp

    def resolve(self, name: str) -> Optional[str]:
        if name in self.local:
            return self.local[name]
        return self.imports.get(name)

    def resolve_chain(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a qualified dotted name."""
        parts = _dotted(node)
        if parts is None:
            return None
        root, attrs = parts
        base = self.resolve(root)
        if base is None:
            return None
        return ".".join([base, *attrs]) if attrs else base


def _collect_defs(graph: CallGraph, scan: _ModuleScan) -> None:
    """Pass 1: register every function and class (bases unresolved)."""

    def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                graph.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=scan.module,
                    path=scan.ctx.path,
                    node=child,
                    cls=cls,
                )
                if cls is not None:
                    graph.classes[cls].methods[child.name] = qual
                    graph.methods_by_name.setdefault(child.name, set()).add(qual)
                elif prefix == f"{scan.module}.":
                    scan.local[child.name] = qual
                visit(child, f"{qual}.", None)
            elif isinstance(child, ast.ClassDef):
                cqual = f"{prefix}{child.name}"
                graph.classes[cqual] = ClassInfo(
                    qualname=cqual,
                    module=scan.module,
                    path=scan.ctx.path,
                    node=child,
                )
                if prefix == f"{scan.module}.":
                    scan.local[child.name] = cqual
                visit(child, f"{cqual}.", cqual)
            else:
                visit(child, prefix, cls)

    visit(scan.ctx.tree, f"{scan.module}.", None)


def _resolve_classes(graph: CallGraph, scan: _ModuleScan) -> None:
    """Pass 2: resolve base classes and ``self.x = Class()`` attr types."""
    for cls in list(graph.classes.values()):
        if cls.module != scan.module:
            continue
        for b in cls.node.bases:
            resolved = scan.resolve_chain(b)
            if resolved is None and isinstance(b, ast.Name):
                resolved = b.id  # bare builtin (Exception, ...)
            if resolved:
                cls.bases.append(resolved)
                graph.subclasses.setdefault(resolved, set()).add(cls.qualname)
        # Attribute types from __init__-style assignments/annotations.
        for n in ast.walk(cls.node):
            target: Optional[str] = None
            ann_or_value: Optional[ast.AST] = None
            if isinstance(n, ast.AnnAssign) and isinstance(n.target, ast.Attribute):
                d = _dotted(n.target)
                if d and d[0] == "self" and len(d[1]) == 1:
                    target, ann_or_value = d[1][0], n.annotation
            elif isinstance(n, ast.Assign) and len(n.targets) == 1 and isinstance(
                n.targets[0], ast.Attribute
            ):
                d = _dotted(n.targets[0])
                if (
                    d
                    and d[0] == "self"
                    and len(d[1]) == 1
                    and isinstance(n.value, ast.Call)
                ):
                    target, ann_or_value = d[1][0], n.value.func
            if target is None or ann_or_value is None:
                continue
            t = scan.resolve_chain(ann_or_value)
            if t in graph.classes:
                cls.attr_types[target] = t


def _local_types(
    func: ast.AST, scan: _ModuleScan, graph: CallGraph
) -> dict[str, str]:
    """Known class types of parameters and constructor-assigned locals."""
    types: dict[str, str] = {}
    args = getattr(func, "args", None)
    if args is not None:
        every = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        for a in every:
            if a.annotation is None:
                continue
            ann = a.annotation
            # Unwrap Optional["X"] / string annotations conservatively.
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                t = scan.resolve(ann.value.split(".", 1)[0])
            else:
                t = scan.resolve_chain(ann)
            if t in graph.classes:
                types[a.arg] = t
    for n in _own_walk(func):
        if (
            isinstance(n, ast.Assign)
            and len(n.targets) == 1
            and isinstance(n.targets[0], ast.Name)
            and isinstance(n.value, ast.Call)
        ):
            t = scan.resolve_chain(n.value.func)
            if t in graph.classes:
                types[n.targets[0].id] = t
    return types


def _resolve_call(
    call: ast.Call,
    info: FunctionInfo,
    scan: _ModuleScan,
    graph: CallGraph,
    local_types: dict[str, str],
) -> list[str]:
    """Resolve one call expression to zero or more callee qualnames."""
    func = call.func
    d = _dotted(func)
    if d is None:
        return []
    root, attrs = d

    # Plain name: local function, imported function, or class constructor.
    if not attrs:
        q = scan.resolve(root)
        if q is None:
            return []
        if q in graph.functions:
            return [q]
        if q in graph.classes:
            init = graph.mro_methods(q, "__init__")
            return [q, *init]
        return []

    # self.m(...) / cls.m(...) inside a class.
    if root in ("self", "cls") and info.cls is not None:
        if len(attrs) == 1:
            targets = graph.mro_methods(info.cls, attrs[0])
            targets += graph.overrides(info.cls, attrs[0])
            return targets
        if len(attrs) == 2:
            recv_t = graph.classes[info.cls].attr_types.get(attrs[0])
            if recv_t is not None:
                targets = graph.mro_methods(recv_t, attrs[1])
                targets += graph.overrides(recv_t, attrs[1])
                if targets:
                    return targets
        return list(graph.methods_by_name.get(attrs[-1], ()))

    # Typed receiver: parameter annotation or constructor-typed local.
    if root in local_types and len(attrs) == 1:
        recv_t = local_types[root]
        targets = graph.mro_methods(recv_t, attrs[0])
        targets += graph.overrides(recv_t, attrs[0])
        if targets:
            return targets

    # Fully-qualified chain through the import map (module.func, Class.m).
    q = scan.resolve_chain(func)
    if q is not None:
        if q in graph.functions:
            return [q]
        if q in graph.classes:
            return [q, *graph.mro_methods(q, "__init__")]
        # Resolved to something outside the analyzed set (numpy.*, ...):
        # known-foreign, so no virtual-dispatch fallback.
        if scan.resolve(root) is not None and root not in local_types:
            return []

    # Unknown receiver: name-based virtual dispatch over known methods.
    return list(graph.methods_by_name.get(attrs[-1], ()))


def _scan_function(
    graph: CallGraph, scan: _ModuleScan, info: FunctionInfo
) -> None:
    local_types = _local_types(info.node, scan, graph)
    for n in _own_walk(info.node):
        if isinstance(n, ast.Call):
            for callee in _resolve_call(n, info, scan, graph, local_types):
                graph.add_call(info.qualname, callee)
        elif isinstance(n, ast.Raise) and n.exc is not None:
            exc_expr = n.exc.func if isinstance(n.exc, ast.Call) else n.exc
            q = scan.resolve_chain(exc_expr)
            if q is None and isinstance(exc_expr, ast.Name):
                q = exc_expr.id
            if q is not None:
                graph.raises.append(
                    RaiseSite(
                        func=info.qualname,
                        path=info.path,
                        lineno=n.lineno,
                        col=n.col_offset,
                        exc=q,
                    )
                )
        elif isinstance(n, ast.ExceptHandler):
            graph.handlers.setdefault(info.qualname, []).append(
                _handler_info(n, scan, info)
            )


def _handler_info(
    h: ast.ExceptHandler, scan: _ModuleScan, info: FunctionInfo
) -> HandlerInfo:
    raw = (
        h.type.elts
        if isinstance(h.type, ast.Tuple)
        else [h.type]
        if h.type is not None
        else []
    )
    types: list[str] = []
    for t in raw:
        q = scan.resolve_chain(t)
        if q is None and isinstance(t, ast.Name):
            q = t.id
        if q is not None:
            types.append(q)
    uses = False
    reraises = False
    for n in ast.walk(h):
        if isinstance(n, ast.Raise):
            reraises = True
        if (
            h.name is not None
            and isinstance(n, ast.Name)
            and n.id == h.name
            and isinstance(n.ctx, ast.Load)
        ):
            uses = True
    return HandlerInfo(
        func=info.qualname,
        path=info.path,
        lineno=h.lineno,
        col=h.col_offset,
        types=tuple(types),
        bound=h.name,
        uses_bound=uses,
        reraises=reraises,
    )


def build_call_graph(contexts: Sequence[ModuleContext]) -> CallGraph:
    """Build the call graph over every given module."""
    graph = CallGraph()
    scans = [_ModuleScan(ctx) for ctx in contexts]
    for scan in scans:
        _collect_defs(graph, scan)
    for scan in scans:
        _resolve_classes(graph, scan)
    for scan in scans:
        for info in list(graph.functions.values()):
            if info.module == scan.module and info.path == scan.ctx.path:
                _scan_function(graph, scan, info)
    return graph
